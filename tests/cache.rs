//! Contract tests for the whole-solve cache and the deadline-aware
//! heuristic engines: cache identity under register relabeling (and
//! non-identity under device changes), the cache-served report contract
//! (sub-millisecond, flagged, layouts translated), and stochastic-engine
//! deadline interruption.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use qxmap::arch::devices;
use qxmap::circuit::{Circuit, CircuitSkeleton};
use qxmap::map::{map_one, Engine, HeuristicEngine, MapRequest, Portfolio, SolveCache};

#[test]
fn second_identical_request_is_a_flagged_submillisecond_hit() {
    // A circuit no other test uses, so the first call is the solve.
    let mut circuit = Circuit::new(4);
    circuit.cx(0, 2);
    circuit.cx(2, 1);
    circuit.h(1);
    circuit.cx(1, 3);
    circuit.cx(3, 0);
    let cm = devices::ibm_qx4();
    let request = MapRequest::new(circuit.clone(), cm.clone());

    let first = map_one(&request).expect("mappable");
    assert!(!first.served_from_cache);

    let waited = Instant::now();
    let second = map_one(&request).expect("mappable");
    let waited = waited.elapsed();

    // The acceptance contract: a cache hit, flagged as cache-served,
    // with the lookup time (not the original solve's wall-clock) in
    // `elapsed`. Uncontended, the lookup is single-digit microseconds
    // (the <1 ms acceptance criterion with three orders of margin); the
    // in-suite bounds are looser only because sibling tests saturate
    // every core of a CI runner and a preemption inside the timed window
    // must not flake the suite.
    assert!(second.served_from_cache);
    assert!(second.winner.starts_with("cache/"), "{}", second.winner);
    assert!(
        second.elapsed < Duration::from_millis(10),
        "cache lookup took {:?}",
        second.elapsed
    );
    assert!(second.elapsed <= waited);
    assert!(waited < Duration::from_millis(100), "round trip {waited:?}");
    assert_eq!(second.cost, first.cost);
    assert_eq!(second.proved_optimal, first.proved_optimal);
    assert_eq!(second.mapped, first.mapped);
    assert_eq!(second.runtime, first.runtime, "original solve time kept");
    second.verify(&circuit, &cm).expect("served reports verify");
}

#[test]
fn relabeled_register_equivalent_hits_the_same_entry() {
    // Same interaction structure, renamed registers — the ISSUE's "two
    // QASM files with renamed registers" scenario, through the public
    // portfolio path.
    let mut circuit = Circuit::new(4);
    circuit.cx(1, 0);
    circuit.t(0);
    circuit.cx(0, 3);
    circuit.cx(3, 2);
    circuit.cx(1, 2);
    let cm = devices::ibm_qx4();
    let first = map_one(&MapRequest::new(circuit.clone(), cm.clone())).expect("mappable");

    let sigma = [3usize, 1, 0, 2];
    let renamed = circuit.map_qubits(circuit.num_qubits(), |q| sigma[q]);
    assert_eq!(
        CircuitSkeleton::of(&circuit),
        CircuitSkeleton::of(&renamed),
        "precondition: canonical skeletons agree"
    );
    let hit = map_one(&MapRequest::new(renamed.clone(), cm.clone())).expect("mappable");
    assert!(hit.served_from_cache, "relabeled request must hit");
    assert_eq!(hit.cost, first.cost);
    // The physical circuit is label-free and reused verbatim; the layouts
    // were translated, and the whole report verifies for the *renamed*
    // circuit.
    assert_eq!(hit.mapped, first.mapped);
    hit.verify(&renamed, &cm)
        .expect("translated layouts are sound");
    for (q, &s) in sigma.iter().enumerate() {
        assert_eq!(
            hit.initial_layout.phys_of(s),
            first.initial_layout.phys_of(q),
            "layout of renamed qubit {s} must follow the correspondence"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache identity, property-tested: a relabeled-register circuit hits
    /// the same entry (with sound translated layouts); a different
    /// coupling graph misses.
    #[test]
    fn cache_identity_under_relabeling_and_device_change(
        gates in prop::collection::vec((0usize..4, 1usize..4, 0u8..2), 1..10),
        perm_seed in 0u64..24,
    ) {
        let n = 4usize;
        let mut circuit = Circuit::new(n);
        for &(a, d, kind) in &gates {
            if kind == 1 {
                circuit.h(a);
            } else {
                circuit.cx(a, (a + d) % n);
            }
        }
        // The perm_seed indexes the 4! permutations via factorial digits.
        let mut pool: Vec<usize> = (0..n).collect();
        let mut sigma = Vec::with_capacity(n);
        let mut k = perm_seed as usize;
        for radix in (1..=n).rev() {
            sigma.push(pool.remove(k % radix));
            k /= radix;
        }
        let renamed = circuit.map_qubits(n, |q| sigma[q]);

        // A private cache instance keeps the property hermetic.
        let cache = SolveCache::with_capacity(16);
        let engine = HeuristicEngine::naive();
        let cm = devices::ibm_qx4();
        let request = MapRequest::new(circuit.clone(), cm.clone());
        let report = engine.run(&request).expect("mappable");
        cache.insert(&engine.cache_signature(), &request, &report);

        // Relabeled equivalent: hit, and the served report is sound for
        // the renamed circuit.
        let renamed_request = MapRequest::new(renamed.clone(), cm.clone());
        let hit = cache.lookup(&engine.cache_signature(), &renamed_request);
        let hit = hit.expect("relabeled-register circuit hits the same entry");
        prop_assert!(hit.served_from_cache);
        prop_assert_eq!(hit.cost, report.cost);
        hit.verify(&renamed, &cm).expect("translated layouts verify");

        // Different coupling graph: miss.
        let other_device = MapRequest::new(circuit.clone(), devices::linear(5));
        prop_assert!(
            cache.lookup(&engine.cache_signature(), &other_device).is_none(),
            "a different coupling graph must miss"
        );
    }
}

#[test]
fn stochastic_engine_honors_the_deadline_within_one_trial() {
    // Heavy enough that 400 seeded trials take many hundreds of ms, so a
    // 25 ms deadline is a real interruption, not a no-op.
    let mut circuit = Circuit::new(16);
    for q in 0..15 {
        circuit.cx(q, q + 1);
    }
    for q in 0..8 {
        circuit.cx(q, q + 8);
    }
    circuit.cx(0, 15);
    circuit.cx(3, 12);
    let cm = devices::ibm_tokyo();
    let engine = HeuristicEngine::stochastic(400);

    let full_timer = Instant::now();
    let full = engine
        .run(&MapRequest::new(circuit.clone(), cm.clone()))
        .expect("tokyo routes this");
    let full_elapsed = full_timer.elapsed();

    let bounded_timer = Instant::now();
    let bounded = engine
        .run(&MapRequest::new(circuit.clone(), cm.clone()).with_deadline(Duration::from_millis(25)))
        .expect("a deadline degrades quality, never validity");
    let bounded_elapsed = bounded_timer.elapsed();

    // The bounded run interrupts: far below the full run's wall-clock
    // (within one trial's latency of the 25 ms budget), yet still a
    // complete, verified result.
    assert!(
        bounded_elapsed < full_elapsed / 2 + Duration::from_millis(100),
        "deadline not honored: bounded {bounded_elapsed:?} vs full {full_elapsed:?}"
    );
    bounded.verify(&circuit, &cm).expect("valid under deadline");
    full.verify(&circuit, &cm).expect("valid without deadline");
    // No relation between the two costs is asserted: a deadline-degraded
    // trial takes first-plan layers the full run never explored, so it
    // can legitimately land on either side of the full run's best.
}

#[test]
fn deadline_and_unbudgeted_requests_do_not_share_cache_entries() {
    // Same circuit/device/engine, different budget class: the unproved
    // deadline-class result must not be served to the patient caller.
    let mut circuit = Circuit::new(9);
    for q in 0..8 {
        circuit.cx(q, q + 1);
    }
    circuit.cx(0, 8);
    let cm = devices::ibm_tokyo(); // out of exact regime: nothing proved
    let budgeted =
        MapRequest::new(circuit.clone(), cm.clone()).with_deadline(Duration::from_millis(200));
    let first = Portfolio::new().run_cached(&budgeted).expect("mappable");
    assert!(!first.proved_optimal, "tokyo is beyond the exact regime");

    let unbudgeted = MapRequest::new(circuit.clone(), cm.clone());
    let second = Portfolio::new().run_cached(&unbudgeted).expect("mappable");
    assert!(
        !second.served_from_cache,
        "an unproved deadline-class result leaked into the unbudgeted class"
    );
    // Re-asking within the same class hits.
    let third = Portfolio::new().run_cached(&budgeted).expect("mappable");
    assert!(third.served_from_cache);
}
