//! Property-based end-to-end validation: random small circuits through
//! the exact mapper stay hardware-legal, cost-consistent, and
//! functionally equivalent.

use proptest::prelude::*;
use qxmap::arch::devices;
use qxmap::circuit::Circuit;
use qxmap::core::Strategy as MapStrategy;
use qxmap::map::{Engine, ExactEngine, MapRequest};
use qxmap::sim::mapped_equivalent;

/// Random circuits with 2–4 qubits and up to 8 gates.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2usize..=4).prop_flat_map(|n| {
        let gate = prop_oneof![
            // CNOT with distinct qubits (built arithmetically, no filter).
            (0..n, 1..n).prop_map(move |(c, d)| (0u8, c, (c + d) % n)),
            // H / T on one qubit.
            (0..n).prop_map(|q| (1u8, q, 0usize)),
            (0..n).prop_map(|q| (2u8, q, 0usize)),
        ];
        prop::collection::vec(gate, 1..8).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            for (kind, a, b) in gates {
                match kind {
                    0 => {
                        c.cx(a, b);
                    }
                    1 => {
                        c.h(a);
                    }
                    _ => {
                        c.t(a);
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_mapping_is_sound(circuit in circuit_strategy()) {
        let cm = devices::ibm_qx4();
        let request = MapRequest::new(circuit.clone(), cm.clone());
        let report = ExactEngine::new()
            .run(&request)
            .expect("QX4 maps every small circuit");

        // Structural soundness + cost accounting.
        report.verify(&circuit, &cm).expect("sound");
        prop_assert_eq!(
            report.cost.added_gates,
            7 * u64::from(report.cost.swaps) + 4 * u64::from(report.cost.reversals)
        );
        prop_assert_eq!(report.cost.objective, report.cost.added_gates);
        prop_assert!(report.proved_optimal);

        // Functional equivalence.
        prop_assert!(mapped_equivalent(
            &circuit,
            &report.mapped,
            &report.initial_layout,
            &report.final_layout,
            1e-9,
        ).expect("unitary"));
    }

    #[test]
    fn strategies_never_beat_the_minimum(circuit in circuit_strategy()) {
        let cm = devices::ibm_qx4();
        let request = MapRequest::new(circuit.clone(), cm.clone());
        let minimal = ExactEngine::new()
            .run(&request)
            .expect("mappable")
            .cost
            .objective;
        for strategy in [MapStrategy::DisjointQubits, MapStrategy::OddGates, MapStrategy::QubitTriangle] {
            let r = ExactEngine::new()
                .run(&request.clone().with_strategy(strategy.clone()))
                .expect("mappable");
            prop_assert!(
                r.cost.objective >= minimal,
                "{:?} {} < {}", strategy, r.cost.objective, minimal
            );
        }
    }
}
