//! Property-based end-to-end validation: random small circuits through
//! the exact mapper stay hardware-legal, cost-consistent, and
//! functionally equivalent.

use proptest::prelude::*;
use qxmap::arch::devices;
use qxmap::circuit::Circuit;
use qxmap::core::{verify, ExactMapper, MapperConfig, Strategy as MapStrategy};
use qxmap::sim::mapped_equivalent;

/// Random circuits with 2–4 qubits and up to 8 gates.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2usize..=4).prop_flat_map(|n| {
        let gate = prop_oneof![
            // CNOT with distinct qubits (built arithmetically, no filter).
            (0..n, 1..n).prop_map(move |(c, d)| (0u8, c, (c + d) % n)),
            // H / T on one qubit.
            (0..n).prop_map(|q| (1u8, q, 0usize)),
            (0..n).prop_map(|q| (2u8, q, 0usize)),
        ];
        prop::collection::vec(gate, 1..8).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            for (kind, a, b) in gates {
                match kind {
                    0 => {
                        c.cx(a, b);
                    }
                    1 => {
                        c.h(a);
                    }
                    _ => {
                        c.t(a);
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_mapping_is_sound(circuit in circuit_strategy()) {
        let cm = devices::ibm_qx4();
        let result = ExactMapper::with_config(
            cm.clone(),
            MapperConfig::minimal().with_subsets(true),
        )
        .map(&circuit)
        .expect("QX4 maps every small circuit");

        // Structural soundness + cost accounting.
        verify::check_result(&circuit, &result, &cm).expect("sound");
        prop_assert_eq!(
            result.added_gates,
            7 * u64::from(result.swaps) + 4 * u64::from(result.reversals)
        );
        prop_assert_eq!(result.cost, result.added_gates);
        prop_assert!(result.proved_optimal);

        // Functional equivalence.
        prop_assert!(mapped_equivalent(
            &circuit,
            &result.mapped,
            &result.initial_layout,
            &result.final_layout,
            1e-9,
        ).expect("unitary"));
    }

    #[test]
    fn strategies_never_beat_the_minimum(circuit in circuit_strategy()) {
        let cm = devices::ibm_qx4();
        let minimal = ExactMapper::with_config(
            cm.clone(),
            MapperConfig::minimal().with_subsets(true),
        )
        .map(&circuit)
        .expect("mappable")
        .cost;
        for strategy in [MapStrategy::DisjointQubits, MapStrategy::OddGates, MapStrategy::QubitTriangle] {
            let cfg = MapperConfig::minimal()
                .with_strategy(strategy.clone())
                .with_subsets(true);
            let r = ExactMapper::with_config(cm.clone(), cfg).map(&circuit).expect("mappable");
            prop_assert!(r.cost >= minimal, "{:?} {} < {}", strategy, r.cost, minimal);
        }
    }
}
