//! End-to-end validation of the `DeviceModel` layer: the paper's 7/4
//! accounting as a verified gate-count identity, calibration overrides
//! steering the exact optimum, fingerprint-keyed caching, and the
//! cost-model-aware portfolio scheduler.

use proptest::prelude::*;
use qxmap::arch::{devices, CouplingMap, DeviceModel};
use qxmap::circuit::Circuit;
use qxmap::map::{Engine, ExactEngine, HeuristicEngine, MapRequest, Portfolio, SolveCache};

/// Random circuits with 2–4 qubits and up to 10 gates.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2usize..=4).prop_flat_map(|n| {
        let gate = prop_oneof![
            (0..n, 1..n).prop_map(move |(c, d)| (0u8, c, (c + d) % n)),
            (0..n).prop_map(|q| (1u8, q, 0usize)),
            (0..n).prop_map(|q| (2u8, q, 0usize)),
        ];
        prop::collection::vec(gate, 1..10).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            for (kind, a, b) in gates {
                match kind {
                    0 => {
                        c.cx(a, b);
                    }
                    1 => {
                        c.h(a);
                    }
                    _ => {
                        c.t(a);
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The paper's directed-cost identity, end to end: on a fully
    /// unidirectional device the *verified* mapped circuit recounts to
    /// exactly `original + 7·swaps + 4·reversals` — for the exact engine
    /// and a heuristic alike, with the objective agreeing.
    #[test]
    fn directed_cost_identity_holds_on_qx4(circuit in circuit_strategy()) {
        let cm = devices::ibm_qx4();
        let request = MapRequest::new(circuit.clone(), cm.clone());
        for report in [
            ExactEngine::new().run(&request).expect("QX4 maps small circuits"),
            HeuristicEngine::sabre().run(&request).expect("mappable"),
        ] {
            report.verify(&circuit, &cm).expect("sound");
            let original = circuit.decompose_swaps().original_cost() as u64;
            let identity =
                7 * u64::from(report.cost.swaps) + 4 * u64::from(report.cost.reversals);
            prop_assert_eq!(report.mapped.original_cost() as u64, original + identity);
            prop_assert_eq!(report.cost.objective, identity);
        }
    }

    /// The same identity on a directed line (every edge unidirectional),
    /// via the naive floor.
    #[test]
    fn directed_cost_identity_holds_on_lines(circuit in circuit_strategy()) {
        let cm = devices::linear(4);
        let request = MapRequest::new(circuit.clone(), cm.clone());
        let report = HeuristicEngine::naive().run(&request).expect("connected line");
        report.verify(&circuit, &cm).expect("sound");
        let original = circuit.decompose_swaps().original_cost() as u64;
        let identity = 7 * u64::from(report.cost.swaps) + 4 * u64::from(report.cost.reversals);
        prop_assert_eq!(report.mapped.original_cost() as u64, original + identity);
    }
}

/// A bidirectional 3-qubit path p0—p1—p2.
fn bidirectional_path() -> CouplingMap {
    CouplingMap::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        .unwrap()
        .named("bi-path-3")
}

/// A triangle of interactions on a 3-qubit path needs exactly one SWAP;
/// the two candidate SWAP edges are symmetric under uniform costs, so a
/// calibration override provably moves the optimum to the cheap side.
#[test]
fn calibration_overrides_change_the_chosen_solution() {
    let mut circuit = Circuit::new(3);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    circuit.cx(0, 2);

    let solve = |model: DeviceModel| {
        let request = MapRequest::for_model(circuit.clone(), model);
        let report = ExactEngine::new().run(&request).expect("mappable");
        assert!(report.proved_optimal);
        report.verify(&circuit, request.device()).expect("sound");
        report
    };

    // Uniform hardware model: one SWAP at cost 3, wherever it lands.
    let uniform = solve(DeviceModel::new(bidirectional_path()));
    assert_eq!(uniform.cost.objective, 3);
    assert_eq!(uniform.cost.swaps, 1);

    // Make the {p0,p1} edge dear: the optimum must swap on {p1,p2}.
    let skew_left = solve(DeviceModel::new(bidirectional_path()).with_swap_cost(0, 1, 50));
    assert_eq!(skew_left.cost.objective, 3, "the cheap edge still costs 3");
    // And vice versa.
    let skew_right = solve(DeviceModel::new(bidirectional_path()).with_swap_cost(1, 2, 50));
    assert_eq!(skew_right.cost.objective, 3);

    // The two calibrations provably chose different realizations: the
    // inserted SWAP touches different physical pairs, so the mapped
    // circuits (and/or layouts) differ.
    assert_ne!(
        (skew_left.mapped.clone(), skew_left.initial_layout.clone()),
        (skew_right.mapped.clone(), skew_right.initial_layout.clone()),
        "calibration did not steer the chosen layout"
    );
    let swap_edges = |report: &qxmap::map::MapReport| -> Vec<(usize, usize)> {
        // 3 logical CNOTs map to 3 skeleton CNOTs; the SWAP contributes
        // 3 more on one edge. Collect the over-represented pairs.
        let mut pairs: Vec<(usize, usize)> = report
            .mapped
            .cnot_skeleton()
            .into_iter()
            .map(|(c, t)| (c.min(t), c.max(t)))
            .collect();
        pairs.sort_unstable();
        pairs
    };
    assert_ne!(
        swap_edges(&skew_left),
        swap_edges(&skew_right),
        "the SWAP landed on the same edge under opposite calibrations"
    );
}

/// Reversal-cost calibration steers which edge hosts an opposed CNOT
/// pair on a directed device.
#[test]
fn reversal_calibration_changes_the_chosen_layout() {
    // Directed line p0→p1→p2: an opposed pair must reverse (or SWAP).
    let cm = devices::linear(3);
    let mut circuit = Circuit::new(2);
    circuit.cx(0, 1);
    circuit.cx(1, 0);

    let solve = |model: DeviceModel| {
        let request = MapRequest::for_model(circuit.clone(), model);
        let report = ExactEngine::new().run(&request).expect("mappable");
        assert!(report.proved_optimal);
        report.verify(&circuit, request.device()).expect("sound");
        report
    };

    // Uniform: either edge hosts the pair, one reversal, cost 4.
    let uniform = solve(DeviceModel::new(cm.clone()));
    assert_eq!(uniform.cost.objective, 4);

    // Make reversing against p0→p1 dear: the pair must sit on p1/p2.
    let skewed = solve(DeviceModel::new(cm.clone()).with_reversal_cost(1, 0, 100));
    assert_eq!(
        skewed.cost.objective, 4,
        "the other edge still reverses for 4"
    );
    let occupied: Vec<usize> = (0..2)
        .map(|q| skewed.initial_layout.phys_of(q).expect("complete"))
        .collect();
    assert!(
        occupied.contains(&1) && occupied.contains(&2),
        "calibration should push the pair onto p1/p2, got {occupied:?}"
    );
}

/// CNOT-cost calibration prices gate *placement* identically for the
/// exact engine and the heuristics — the surcharge above the baseline 1
/// lands in both objectives, while the physical gate counts stay put.
#[test]
fn cnot_calibration_prices_exact_and_heuristics_identically() {
    let mut circuit = Circuit::new(2);
    circuit.cx(0, 1);
    // One edge only: a calibrated CNOT cost of 5 means every answer pays
    // the 4-point surcharge without adding a single gate.
    let model = DeviceModel::new(devices::linear(2)).with_cnot_cost(0, 1, 5);
    let request = MapRequest::for_model(circuit.clone(), model);
    let exact = ExactEngine::new().run(&request).expect("mappable");
    let naive = HeuristicEngine::naive().run(&request).expect("mappable");
    for report in [&exact, &naive] {
        report.verify(&circuit, request.device()).expect("sound");
        assert_eq!(report.cost.objective, 4, "{}", report.engine);
        assert_eq!(report.cost.added_gates, 0, "{}", report.engine);
    }
}

/// The device fingerprint keys the solve cache: same topology + same
/// costs hit, any calibration difference misses.
#[test]
fn fingerprint_identity_governs_cache_hits() {
    let cache = SolveCache::with_capacity(8);
    let circuit = {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        c.cx(2, 1);
        c
    };
    let engine = HeuristicEngine::naive();
    let base = MapRequest::new(circuit.clone(), devices::ibm_qx4());
    let report = engine.run(&base).expect("mappable");
    cache.insert(&engine.cache_signature(), &base, &report);

    // An explicitly built uniform paper model is the same fingerprint.
    let same = MapRequest::for_model(circuit.clone(), DeviceModel::paper(devices::ibm_qx4()));
    assert_eq!(
        same.device_model().fingerprint(),
        base.device_model().fingerprint()
    );
    assert!(cache.lookup(&engine.cache_signature(), &same).is_some());

    // One calibrated edge is a different device identity.
    let skewed = MapRequest::for_model(
        circuit,
        DeviceModel::paper(devices::ibm_qx4()).with_swap_cost(3, 4, 70),
    );
    assert!(cache.lookup(&engine.cache_signature(), &skewed).is_none());
}

/// The acceptance scenario for the scheduler: on an all-to-all device
/// dominated baselines are skipped, and the race still returns a
/// verified result.
#[test]
fn portfolio_skips_dominated_baselines_and_still_verifies() {
    let skipped = Portfolio::new()
        .with_stochastic_trials(2)
        .skipped_baselines(&MapRequest::new(
            Circuit::new(3),
            devices::fully_connected(8),
        ));
    let engines: Vec<&str> = skipped.iter().map(|(e, _)| *e).collect();
    assert!(engines.contains(&"sabre"), "{engines:?}");
    assert!(engines.contains(&"stochastic"), "{engines:?}");

    let mut circuit = Circuit::new(6);
    for q in 0..6 {
        circuit.cx(q, (q + 3) % 6);
    }
    let cm = devices::fully_connected(8);
    let request = MapRequest::new(circuit.clone(), cm.clone());
    let report = Portfolio::new()
        .with_stochastic_trials(2)
        .run(&request)
        .expect("all-to-all maps everything");
    report.verify(&circuit, &cm).expect("verified");
    assert_eq!(report.cost.objective, 0);
    assert!(report.proved_optimal);
}

/// Generated topologies flow through the whole stack: heavy-hex by name,
/// portfolio mapping, verification.
#[test]
fn heavy_hex_maps_through_the_portfolio() {
    let cm = devices::by_name("heavy-hex-1").expect("topology library name");
    assert_eq!(cm.num_qubits(), 7);
    let mut circuit = Circuit::new(4);
    circuit.cx(0, 1);
    circuit.cx(2, 3);
    circuit.cx(0, 3);
    circuit.cx(1, 2);
    // The hardware-derived model prices this bidirectional lattice at 3
    // per SWAP (the default `MapRequest::new` would keep the seed's
    // uniform 7/4 accounting instead).
    let request = MapRequest::for_model(circuit.clone(), DeviceModel::new(cm.clone()));
    let report = Portfolio::new().run(&request).expect("connected device");
    report.verify(&circuit, &cm).expect("verified");
    // Bidirectional device: insertions are SWAPs only, each 3 gates.
    assert_eq!(report.cost.reversals, 0);
    assert_eq!(report.cost.objective, 3 * u64::from(report.cost.swaps));
    assert_eq!(report.cost.added_gates, report.cost.objective);
}
