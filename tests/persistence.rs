//! Property and contract tests for solve-cache snapshot persistence:
//! export → import round-trips (entries, byte accounting, the
//! proved-optimal tier), plus rejection of version-bumped and truncated
//! files — the serving tier's warm-start guarantees, tested at the
//! library layer.

use std::time::Duration;

use proptest::prelude::*;
use qxmap::arch::devices;
use qxmap::circuit::Circuit;
use qxmap::map::{
    Engine, ExactEngine, HeuristicEngine, MapRequest, SnapshotError, SolveCache, SNAPSHOT_VERSION,
};

/// Builds a small circuit from a proptest-generated gate list.
fn circuit_from(gates: &[(usize, usize, u8)], n: usize) -> Circuit {
    let mut circuit = Circuit::new(n);
    for &(a, d, kind) in gates {
        match kind {
            0 => {
                circuit.cx(a % n, (a + 1 + d) % n);
            }
            1 => {
                circuit.h(a % n);
            }
            _ => {
                circuit.t(a % n);
            }
        }
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Export → import round-trips every entry: each cached request is
    /// still a hit after the round trip, with identical cost, circuit
    /// and byte accounting, in a fresh cache instance (which is exactly
    /// a daemon restart).
    #[test]
    fn snapshot_round_trip_preserves_entries_and_accounting(
        gate_lists in prop::collection::vec(
            prop::collection::vec((0usize..4, 0usize..2, 0u8..3), 1..8),
            1..5,
        ),
        deadline_ms in 0u64..200,
    ) {
        let cache = SolveCache::with_capacity(32);
        let engine = HeuristicEngine::naive();
        let cm = devices::ibm_qx4();
        let mut requests = Vec::new();
        for gates in &gate_lists {
            let mut request = MapRequest::new(circuit_from(gates, 4), cm.clone());
            // Values below 50 mean "no deadline": the budget class is
            // part of the persisted key either way.
            if deadline_ms >= 50 {
                request = request.with_deadline(Duration::from_millis(deadline_ms));
            }
            let report = engine.run(&request).expect("QX4 maps 4-qubit circuits");
            cache.insert(&engine.cache_signature(), &request, &report);
            requests.push((request, report));
        }

        let bytes = cache.export_snapshot();
        let restarted = SolveCache::with_capacity(32);
        let admitted = restarted.import_snapshot(&bytes).expect("own export imports");
        prop_assert_eq!(admitted, cache.stats().entries);
        prop_assert_eq!(
            restarted.stats().approx_bytes,
            cache.stats().approx_bytes,
            "byte accounting must match a live insert's"
        );
        for (request, solved) in &requests {
            let hit = restarted
                .lookup(&engine.cache_signature(), request)
                .expect("every persisted request hits after restart");
            prop_assert!(hit.served_from_cache);
            prop_assert_eq!(&hit.cost, &solved.cost);
            prop_assert_eq!(&hit.mapped, &solved.mapped);
            prop_assert_eq!(hit.proved_optimal, solved.proved_optimal);
            hit.verify(request.circuit(), request.device())
                .expect("imported entries still verify");
        }
    }

    /// Any single flipped content byte — and any truncation — is
    /// rejected cleanly, admitting nothing.
    #[test]
    fn snapshot_defects_are_rejected_cleanly(
        flip in 0usize..1000,
        cut in 0usize..1000,
    ) {
        let cache = SolveCache::with_capacity(8);
        let engine = HeuristicEngine::naive();
        let request = MapRequest::new(circuit_from(&[(0, 0, 0), (1, 0, 0)], 4), devices::ibm_qx4());
        let report = engine.run(&request).expect("mappable");
        cache.insert(&engine.cache_signature(), &request, &report);
        let bytes = cache.export_snapshot();

        // Truncation at any point is rejected.
        let cut = cut % bytes.len();
        let target = SolveCache::with_capacity(8);
        prop_assert!(target.import_snapshot(&bytes[..cut]).is_err(), "cut {}", cut);
        prop_assert_eq!(target.stats().entries, 0);

        // A bit flip anywhere is rejected (magic, version, content or
        // checksum — each layer catches its own).
        let flip = flip % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[flip] ^= 0x10;
        let target = SolveCache::with_capacity(8);
        prop_assert!(target.import_snapshot(&corrupted).is_err(), "flip {}", flip);
        prop_assert_eq!(target.stats().entries, 0);
    }
}

#[test]
fn proved_optimal_tier_survives_the_round_trip() {
    let cache = SolveCache::with_capacity(8);
    let engine = ExactEngine::new();
    let mut circuit = Circuit::new(4);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    circuit.cx(0, 3);
    let unbudgeted = MapRequest::new(circuit.clone(), devices::ibm_qx4());
    let proved = engine.run(&unbudgeted).expect("in regime");
    assert!(proved.proved_optimal);
    cache.insert(&engine.cache_signature(), &unbudgeted, &proved);
    assert_eq!(cache.stats().entries, 2, "budget entry + proved tier");

    let restarted = SolveCache::with_capacity(8);
    assert_eq!(restarted.import_snapshot(&cache.export_snapshot()), Ok(2));
    // The certificate serves budget classes that never ran before the
    // restart — the tier survived, not just the entry.
    let budgeted = MapRequest::new(circuit, devices::ibm_qx4())
        .with_deadline(Duration::from_millis(75))
        .with_conflict_budget(Some(12_345));
    let hit = restarted
        .lookup(&engine.cache_signature(), &budgeted)
        .expect("proved tier serves any budget class");
    assert!(hit.proved_optimal && hit.served_from_cache);
}

#[test]
fn version_bump_and_capacity_limits_behave() {
    let cache = SolveCache::with_capacity(8);
    let engine = HeuristicEngine::naive();
    let cm = devices::ibm_qx4();
    for n in 2..=5 {
        let mut circuit = Circuit::new(n);
        for q in 0..n - 1 {
            circuit.cx(q, q + 1);
        }
        let request = MapRequest::new(circuit, cm.clone());
        let report = engine.run(&request).expect("mappable");
        cache.insert(&engine.cache_signature(), &request, &report);
    }
    let bytes = cache.export_snapshot();

    // A future (or past) encoding version is rejected by number, before
    // any content is trusted.
    let mut bumped = bytes.clone();
    bumped[8] = bumped[8].wrapping_add(1); // little-endian version lives after the 8-byte magic
    assert_eq!(
        SolveCache::with_capacity(8).import_snapshot(&bumped),
        Err(SnapshotError::VersionMismatch {
            found: SNAPSHOT_VERSION + 1,
            supported: SNAPSHOT_VERSION,
        })
    );

    // Importing four entries into a two-entry cache keeps the two the
    // exporter used most recently, charging evictions like live inserts.
    let tiny = SolveCache::with_capacity(2);
    assert_eq!(tiny.import_snapshot(&bytes), Ok(4));
    let stats = tiny.stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.evictions, 2);
    assert!(stats.approx_bytes > 0);
    assert!(stats.approx_bytes < cache.stats().approx_bytes);
}
