//! QASM-in → map → QASM-out pipeline tests.

use qxmap::arch::devices;
use qxmap::core::Strategy;
use qxmap::map::{Engine, ExactEngine, MapRequest};
use qxmap::qasm;
use qxmap::sim::{equivalent_unitaries, mapped_equivalent};

const TOFFOLI_PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[2];
ccx q[0], q[1], q[2];
t q[0];
cx q[2], q[1];
"#;

#[test]
fn parse_map_export_reparse() {
    let circuit = qasm::parse(TOFFOLI_PROGRAM).expect("valid program");
    assert_eq!(circuit.num_qubits(), 3);
    assert_eq!(circuit.num_cnots(), 7); // 6 (ccx) + 1

    let cm = devices::ibm_qx4();
    let request =
        MapRequest::new(circuit.clone(), cm.clone()).with_strategy(Strategy::DisjointQubits);
    let report = ExactEngine::new().run(&request).expect("mappable");
    report.verify(&circuit, &cm).expect("sound");

    // Export and reparse the hardware circuit: bit-identical gate list.
    let exported = qasm::to_qasm(&report.mapped);
    let reparsed = qasm::parse(&exported).expect("exporter emits valid QASM");
    assert_eq!(reparsed.gates(), report.mapped.gates());

    // Functional equivalence through the whole pipeline.
    assert!(mapped_equivalent(
        &circuit,
        &report.mapped,
        &report.initial_layout,
        &report.final_layout,
        1e-9,
    )
    .expect("unitary"));
}

#[test]
fn qelib_toffoli_decomposition_is_functionally_toffoli() {
    // The inlined ccx must implement the textbook Toffoli truth table.
    let parsed =
        qasm::parse("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nccx q[0], q[1], q[2];\n")
            .expect("valid");
    let mut reference = qxmap::circuit::Circuit::new(3);
    qxmap::benchmarks::mct::append_mct(&mut reference, &[0, 1], 2).expect("two controls");
    assert!(equivalent_unitaries(&parsed, &reference, 1e-9).expect("unitary"));
}

#[test]
fn real_netlist_through_the_mapper() {
    let src = "\
.version 1.0
.numvars 3
.variables a b c
.begin
t3 a b c
t2 a b
t1 c
.end
";
    let circuit = qxmap::benchmarks::real::parse_real(src).expect("valid netlist");
    let cm = devices::ibm_qx4();
    let request = MapRequest::new(circuit.clone(), cm.clone()).with_strategy(Strategy::OddGates);
    let report = ExactEngine::new().run(&request).expect("mappable");
    report.verify(&circuit, &cm).expect("legal");
    assert!(mapped_equivalent(
        &circuit,
        &report.mapped,
        &report.initial_layout,
        &report.final_layout,
        1e-9,
    )
    .expect("unitary"));
}
