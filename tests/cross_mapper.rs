//! Cross-engine invariants through the unified `qxmap-map` surface: the
//! exact optimum is a true floor for every heuristic, and every engine's
//! report is hardware-legal and functionally equivalent to its input.

use qxmap::arch::devices;
use qxmap::circuit::Circuit;
use qxmap::map::{Engine, ExactEngine, HeuristicEngine, MapRequest};
use qxmap::sim::mapped_equivalent;

/// A deterministic family of small test circuits.
fn test_circuits() -> Vec<Circuit> {
    let mut out = Vec::new();
    for seed in 0..6u64 {
        let n = 3 + (seed as usize % 3); // 3..=5 qubits
        let cnots = 4 + (seed as usize * 2) % 7;
        out.push(qxmap::benchmarks::synthetic_circuit(n, 3, cnots, seed));
    }
    out.push(qxmap::circuit::paper_example());
    out.push(qxmap::benchmarks::famous::ghz(5));
    out.push(qxmap::benchmarks::famous::toffoli_chain(3, 2));
    out
}

fn heuristic_engines() -> Vec<(&'static str, HeuristicEngine)> {
    vec![
        ("stochastic", HeuristicEngine::stochastic(1)),
        ("astar", HeuristicEngine::astar()),
        ("sabre", HeuristicEngine::sabre()),
        ("naive", HeuristicEngine::naive()),
    ]
}

#[test]
fn exact_is_a_floor_for_all_heuristics() {
    let cm = devices::ibm_qx4();
    for (idx, circuit) in test_circuits().iter().enumerate() {
        let request = MapRequest::new(circuit.clone(), cm.clone()).with_seed(idx as u64);
        let exact = ExactEngine::new().run(&request).expect("mappable");
        assert!(exact.proved_optimal, "circuit {idx}");

        for (name, engine) in heuristic_engines() {
            let added = engine.run(&request).expect("mappable").cost.added_gates;
            assert!(
                exact.cost.added_gates <= added,
                "circuit {idx}: {name} added {added} < exact {}",
                exact.cost.added_gates
            );
        }
    }
}

#[test]
fn every_engine_report_is_equivalent_and_legal() {
    let cm = devices::ibm_qx4();
    for (idx, circuit) in test_circuits().iter().enumerate() {
        let request = MapRequest::new(circuit.clone(), cm.clone()).with_seed(99);
        for (name, engine) in heuristic_engines() {
            let r = engine.run(&request).expect("mappable");
            r.verify(circuit, &cm)
                .unwrap_or_else(|e| panic!("circuit {idx}, {name}: {e}"));
            assert!(
                mapped_equivalent(
                    &circuit.decompose_swaps(),
                    &r.mapped,
                    &r.initial_layout,
                    &r.final_layout,
                    1e-9,
                )
                .expect("unitary"),
                "circuit {idx}: {name} output diverged"
            );
            // Cost accounting: added gates decompose into 7/4 units.
            assert_eq!(
                r.cost.added_gates,
                7 * u64::from(r.cost.swaps) + 4 * u64::from(r.cost.reversals),
                "circuit {idx}: {name}"
            );
            assert_eq!(r.engine, name, "engine must sign its report");
        }
    }
}

#[test]
fn heuristic_cost_model_identity_on_qx4() {
    // On QX4 every edge is unidirectional: each SWAP is 7 gates, each
    // reversal 4 — so mapped_cost − original = 7s + 4r exactly, for every
    // engine on every circuit. (Already asserted above per-engine; this
    // aggregates as a final sanity sum.)
    let cm = devices::ibm_qx4();
    let engine = HeuristicEngine::stochastic(1);
    let mut total_added = 0u64;
    let mut total_units = 0u64;
    for circuit in test_circuits() {
        let request = MapRequest::new(circuit, cm.clone()).with_seed(5);
        let r = engine.run(&request).expect("mappable");
        total_added += r.cost.added_gates;
        total_units += 7 * u64::from(r.cost.swaps) + 4 * u64::from(r.cost.reversals);
    }
    assert_eq!(total_added, total_units);
}
