//! Cross-mapper invariants: the exact optimum is a true floor for every
//! heuristic, and every mapper's output is hardware-legal and functionally
//! equivalent to its input.

use qxmap::arch::devices;
use qxmap::circuit::Circuit;
use qxmap::core::{verify, ExactMapper, MapperConfig};
use qxmap::heuristic::{AStarMapper, Mapper, NaiveMapper, SabreMapper, StochasticSwapMapper};
use qxmap::sim::mapped_equivalent;

/// A deterministic family of small test circuits.
fn test_circuits() -> Vec<Circuit> {
    let mut out = Vec::new();
    for seed in 0..6u64 {
        let n = 3 + (seed as usize % 3); // 3..=5 qubits
        let cnots = 4 + (seed as usize * 2) % 7;
        out.push(qxmap::benchmarks::synthetic_circuit(n, 3, cnots, seed));
    }
    out.push(qxmap::circuit::paper_example());
    out.push(qxmap::benchmarks::famous::ghz(5));
    out.push(qxmap::benchmarks::famous::toffoli_chain(3, 2));
    out
}

#[test]
fn exact_is_a_floor_for_all_heuristics() {
    let cm = devices::ibm_qx4();
    for (idx, circuit) in test_circuits().iter().enumerate() {
        let exact = ExactMapper::with_config(
            cm.clone(),
            MapperConfig::minimal().with_subsets(true),
        )
        .map(circuit)
        .expect("mappable");
        assert!(exact.proved_optimal, "circuit {idx}");

        let heuristics: Vec<(&str, u64)> = vec![
            (
                "stochastic",
                StochasticSwapMapper::with_seed(idx as u64)
                    .map(circuit, &cm)
                    .expect("mappable")
                    .added_gates,
            ),
            (
                "astar",
                AStarMapper::new().map(circuit, &cm).expect("mappable").added_gates,
            ),
            (
                "sabre",
                SabreMapper::new().map(circuit, &cm).expect("mappable").added_gates,
            ),
            (
                "naive",
                NaiveMapper::new().map(circuit, &cm).expect("mappable").added_gates,
            ),
        ];
        for (name, added) in heuristics {
            assert!(
                exact.added_gates <= added,
                "circuit {idx}: {name} added {added} < exact {}",
                exact.added_gates
            );
        }
    }
}

#[test]
fn every_mapper_output_is_equivalent_and_legal() {
    let cm = devices::ibm_qx4();
    for (idx, circuit) in test_circuits().iter().enumerate() {
        // Heuristic outputs.
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(StochasticSwapMapper::with_seed(99)),
            Box::new(AStarMapper::new()),
            Box::new(NaiveMapper::new()),
            Box::new(SabreMapper::new()),
        ];
        for mapper in mappers {
            let r = mapper.map(circuit, &cm).expect("mappable");
            verify::check_coupling(&r.mapped, &cm)
                .unwrap_or_else(|e| panic!("circuit {idx}, {}: {e}", mapper.name()));
            assert!(
                mapped_equivalent(
                    &circuit.decompose_swaps(),
                    &r.mapped,
                    &r.initial_layout,
                    &r.final_layout,
                    1e-9,
                )
                .expect("unitary"),
                "circuit {idx}: {} output diverged",
                mapper.name()
            );
            // Cost accounting: added gates decompose into 7/4 units.
            assert_eq!(
                r.added_gates,
                7 * u64::from(r.swaps) + 4 * u64::from(r.reversals),
                "circuit {idx}: {}",
                mapper.name()
            );
        }
    }
}

#[test]
fn heuristic_cost_model_identity_on_qx4() {
    // On QX4 every edge is unidirectional: each SWAP is 7 gates, each
    // reversal 4 — so mapped_cost − original = 7s + 4r exactly, for every
    // mapper on every circuit. (Already asserted above per-mapper; this
    // aggregates as a final sanity sum.)
    let cm = devices::ibm_qx4();
    let mut total_added = 0u64;
    let mut total_units = 0u64;
    for circuit in test_circuits() {
        let r = StochasticSwapMapper::with_seed(5)
            .map(&circuit, &cm)
            .expect("mappable");
        total_added += r.added_gates;
        total_units += 7 * u64::from(r.swaps) + 4 * u64::from(r.reversals);
    }
    assert_eq!(total_added, total_units);
}
