//! End-to-end pipeline tests: exact mapping on the paper's running example
//! and the evaluation suite, with structural and functional verification.

use qxmap::arch::devices;
use qxmap::benchmarks::{circuit_for, profiles};
use qxmap::circuit::paper_example;
use qxmap::core::{bound, verify, ExactMapper, MapperConfig, Strategy};
use qxmap::sim::mapped_equivalent;

#[test]
fn paper_example_full_reproduction() {
    let circuit = paper_example();
    let cm = devices::ibm_qx4();
    let result = ExactMapper::new(cm.clone()).map(&circuit).expect("mappable");

    // Example 7: minimal cost F = 4, realized without SWAPs.
    assert_eq!(result.cost, 4);
    assert_eq!(result.swaps, 0);
    assert_eq!(result.reversals, 1);
    assert!(result.proved_optimal);
    // Fig. 5: the resulting circuit has 12 gates (8 original + 4 H).
    assert_eq!(result.mapped_cost(), 12);

    verify::check_result(&circuit, &result, &cm).expect("structurally sound");
    assert!(mapped_equivalent(
        &circuit,
        &result.mapped,
        &result.initial_layout,
        &result.final_layout,
        1e-9,
    )
    .expect("unitary circuits"));
}

#[test]
fn small_suite_instances_map_verified() {
    let cm = devices::ibm_qx4();
    for name in ["ex-1_166", "4gt11_84"] {
        let profile = profiles::by_name(name).expect("known");
        let circuit = circuit_for(&profile);
        let result = ExactMapper::with_config(
            cm.clone(),
            MapperConfig::minimal().with_subsets(true),
        )
        .map(&circuit)
        .expect("mappable");
        assert!(result.proved_optimal, "{name}");
        verify::check_result(&circuit, &result, &cm).expect("sound");
        // The lower bound brackets the optimum from below.
        let lb = bound::lower_bound(
            &circuit.cnot_skeleton(),
            circuit.num_qubits(),
            &cm,
            Default::default(),
        );
        assert!(lb <= result.cost, "{name}: lb {lb} > {}", result.cost);
        // Functional equivalence under simulation.
        assert!(
            mapped_equivalent(
                &circuit,
                &result.mapped,
                &result.initial_layout,
                &result.final_layout,
                1e-9,
            )
            .expect("unitary"),
            "{name} mapped circuit diverged"
        );
    }
}

#[test]
fn strategies_verified_on_running_example() {
    let cm = devices::ibm_qx4();
    let circuit = paper_example();
    for strategy in [
        Strategy::DisjointQubits,
        Strategy::OddGates,
        Strategy::QubitTriangle,
    ] {
        let result = ExactMapper::with_config(
            cm.clone(),
            MapperConfig::minimal().with_strategy(strategy.clone()),
        )
        .map(&circuit)
        .expect("mappable");
        assert!(result.cost >= 4, "{strategy:?} beat the proven minimum");
        verify::check_result(&circuit, &result, &cm).expect("sound");
        assert!(
            mapped_equivalent(
                &circuit,
                &result.mapped,
                &result.initial_layout,
                &result.final_layout,
                1e-9,
            )
            .expect("unitary"),
            "{strategy:?} output diverged"
        );
    }
}

#[test]
fn qx2_and_line_devices_work_too() {
    // The method is architecture-generic; run the example elsewhere.
    let circuit = paper_example();
    for cm in [devices::ibm_qx2(), devices::linear(4), devices::ring(4)] {
        let result = ExactMapper::with_config(
            cm.clone(),
            MapperConfig::minimal().with_strategy(Strategy::OddGates),
        )
        .map(&circuit)
        .expect("mappable");
        verify::check_coupling(&result.mapped, &cm).expect("legal");
        assert!(mapped_equivalent(
            &circuit,
            &result.mapped,
            &result.initial_layout,
            &result.final_layout,
            1e-9,
        )
        .expect("unitary"));
    }
}

#[test]
fn bidirectional_device_has_no_reversals() {
    // On IBM Q20 Tokyo every edge is bidirectional: the refined z-encoding
    // must never pay H repairs.
    let mut circuit = qxmap::circuit::Circuit::new(4);
    circuit.cx(0, 1);
    circuit.cx(1, 0);
    circuit.cx(2, 3);
    circuit.cx(3, 1);
    let cm = devices::ibm_tokyo();
    let result = ExactMapper::with_config(
        cm.clone(),
        MapperConfig::minimal()
            .with_subsets(true)
            .with_cost_model(qxmap::arch::CostModel::bidirectional()),
    )
    .map(&circuit)
    .expect("mappable");
    assert_eq!(result.reversals, 0);
    assert_eq!(result.cost, 0, "adjacent placement exists on Tokyo");
    verify::check_coupling(&result.mapped, &cm).expect("legal");
}
