//! End-to-end pipeline tests through the unified surface: exact mapping
//! on the paper's running example and the evaluation suite, with
//! structural and functional verification.

use qxmap::arch::devices;
use qxmap::benchmarks::{circuit_for, profiles};
use qxmap::circuit::paper_example;
use qxmap::core::{bound, Strategy};
use qxmap::map::{Engine, ExactEngine, Guarantee, MapRequest};
use qxmap::sim::mapped_equivalent;

#[test]
fn paper_example_full_reproduction() {
    let circuit = paper_example();
    let cm = devices::ibm_qx4();
    let request = MapRequest::new(circuit.clone(), cm.clone())
        .with_guarantee(Guarantee::Optimal)
        .with_subsets(false);
    let report = ExactEngine::new().run(&request).expect("mappable");

    // Example 7: minimal cost F = 4, realized without SWAPs.
    assert_eq!(report.cost.objective, 4);
    assert_eq!(report.cost.swaps, 0);
    assert_eq!(report.cost.reversals, 1);
    assert!(report.proved_optimal);
    assert_eq!(report.engine, "exact");
    // Fig. 5: the resulting circuit has 12 gates (8 original + 4 H).
    assert_eq!(report.mapped_cost(), 12);

    report.verify(&circuit, &cm).expect("structurally sound");
    assert!(mapped_equivalent(
        &circuit,
        &report.mapped,
        &report.initial_layout,
        &report.final_layout,
        1e-9,
    )
    .expect("unitary circuits"));
}

#[test]
fn small_suite_instances_map_verified() {
    let cm = devices::ibm_qx4();
    for name in ["ex-1_166", "4gt11_84"] {
        let profile = profiles::by_name(name).expect("known");
        let circuit = circuit_for(&profile);
        let request =
            MapRequest::new(circuit.clone(), cm.clone()).with_guarantee(Guarantee::Optimal);
        let report = ExactEngine::new().run(&request).expect("mappable");
        assert!(report.proved_optimal, "{name}");
        report.verify(&circuit, &cm).expect("sound");
        // The lower bound brackets the optimum from below.
        let lb = bound::lower_bound(
            &circuit.cnot_skeleton(),
            circuit.num_qubits(),
            &cm,
            Default::default(),
        );
        assert!(
            lb <= report.cost.objective,
            "{name}: lb {lb} > {}",
            report.cost.objective
        );
        // Functional equivalence under simulation.
        assert!(
            mapped_equivalent(
                &circuit,
                &report.mapped,
                &report.initial_layout,
                &report.final_layout,
                1e-9,
            )
            .expect("unitary"),
            "{name} mapped circuit diverged"
        );
    }
}

#[test]
fn strategies_verified_on_running_example() {
    let cm = devices::ibm_qx4();
    let circuit = paper_example();
    for strategy in [
        Strategy::DisjointQubits,
        Strategy::OddGates,
        Strategy::QubitTriangle,
    ] {
        let request = MapRequest::new(circuit.clone(), cm.clone())
            .with_strategy(strategy.clone())
            .with_subsets(false);
        let report = ExactEngine::new().run(&request).expect("mappable");
        assert!(
            report.cost.objective >= 4,
            "{strategy:?} beat the proven minimum"
        );
        report.verify(&circuit, &cm).expect("sound");
        assert!(
            mapped_equivalent(
                &circuit,
                &report.mapped,
                &report.initial_layout,
                &report.final_layout,
                1e-9,
            )
            .expect("unitary"),
            "{strategy:?} output diverged"
        );
    }
}

#[test]
fn qx2_and_line_devices_work_too() {
    // The method is architecture-generic; run the example elsewhere.
    let circuit = paper_example();
    for cm in [devices::ibm_qx2(), devices::linear(4), devices::ring(4)] {
        let request = MapRequest::new(circuit.clone(), cm.clone())
            .with_strategy(Strategy::OddGates)
            .with_subsets(false);
        let report = ExactEngine::new().run(&request).expect("mappable");
        report.verify(&circuit, &cm).expect("legal");
        assert!(mapped_equivalent(
            &circuit,
            &report.mapped,
            &report.initial_layout,
            &report.final_layout,
            1e-9,
        )
        .expect("unitary"));
    }
}

#[test]
fn bidirectional_device_has_no_reversals() {
    // On IBM Q20 Tokyo every edge is bidirectional: the refined z-encoding
    // must never pay H repairs.
    let mut circuit = qxmap::circuit::Circuit::new(4);
    circuit.cx(0, 1);
    circuit.cx(1, 0);
    circuit.cx(2, 3);
    circuit.cx(3, 1);
    let cm = devices::ibm_tokyo();
    let request = MapRequest::new(circuit.clone(), cm.clone())
        .with_cost_model(qxmap::arch::CostModel::bidirectional());
    let report = ExactEngine::new().run(&request).expect("mappable");
    assert_eq!(report.cost.reversals, 0);
    assert_eq!(
        report.cost.objective, 0,
        "adjacent placement exists on Tokyo"
    );
    report.verify(&circuit, &cm).expect("legal");
}
