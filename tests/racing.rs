//! Contract tests for the concurrent solve subsystem: deadline-bounded
//! portfolio races, winner/elapsed reporting, the process-wide `SwapTable`
//! memo cache, and repeated-batch behavior.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use qxmap::arch::{devices, CouplingMap, SwapTable};
use qxmap::circuit::{paper_example, Circuit};
use qxmap::map::{map_many, Engine, ExactEngine, HeuristicEngine, MapRequest, Portfolio};

/// An 8-qubit instance on an 8-qubit device: the exact side is a single
/// subinstance with 8! = 40 320 permutations per change point, far beyond
/// what any small deadline lets it even finish encoding.
fn hard_8q() -> (Circuit, CouplingMap) {
    let mut c = Circuit::new(8);
    for q in 0..7 {
        c.cx(q, q + 1);
    }
    c.cx(0, 7);
    c.cx(2, 5);
    c.cx(1, 6);
    (c, devices::linear(8))
}

#[test]
fn deadline_returns_the_heuristic_result_on_a_hard_8q_instance() {
    let (circuit, cm) = hard_8q();
    let naive = HeuristicEngine::naive()
        .run(&MapRequest::new(circuit.clone(), cm.clone()))
        .expect("a line routes a line");
    assert!(naive.cost.objective > 0, "the instance must be nontrivial");

    let request =
        MapRequest::new(circuit.clone(), cm.clone()).with_deadline(Duration::from_millis(100));
    let waited = Instant::now();
    let report = Portfolio::new().run(&request).expect("heuristics answer");
    let waited = waited.elapsed();

    // The proof cannot close in 100 ms: a heuristic must have won, and
    // the report must say so honestly.
    assert!(!report.proved_optimal);
    assert!(
        !report.engine.contains("exact"),
        "exact cannot finish in time, yet won: {}",
        report.engine
    );
    assert_eq!(report.engine, format!("portfolio/{}", report.winner));
    assert!(report.cost.objective <= naive.cost.objective);
    report.verify(&circuit, &cm).expect("legal circuit");
    // The exact side winds down cooperatively (checks between encoding
    // phases and at solver conflicts) instead of running to completion,
    // which takes minutes on this instance.
    assert!(
        waited < Duration::from_secs(30),
        "the race did not wind down: {waited:?}"
    );
}

#[test]
fn generous_deadline_still_proves_optimality() {
    let request = MapRequest::new(paper_example(), devices::ibm_qx4())
        .with_deadline(Duration::from_secs(120))
        .with_conflict_budget(Some(10_000_000));
    let report = Portfolio::new().run(&request).expect("mappable");
    assert_eq!(report.cost.objective, 4, "Example 7's proven minimum");
    assert!(report.proved_optimal, "the proof closes well before 120 s");
}

#[test]
fn reports_surface_winner_and_elapsed() {
    let request = MapRequest::new(paper_example(), devices::ibm_qx4());
    let report = Portfolio::new().run(&request).expect("mappable");
    assert_eq!(report.engine, format!("portfolio/{}", report.winner));
    assert!(
        report.elapsed >= report.runtime,
        "the caller waited for the whole race"
    );

    // Single-engine runs: winner is the engine itself, elapsed its own
    // runtime.
    let naive = HeuristicEngine::naive().run(&request).expect("mappable");
    assert_eq!(naive.winner, "naive");
    assert_eq!(naive.engine, "naive");
    assert_eq!(naive.elapsed, naive.runtime);
    let exact = ExactEngine::new().run(&request).expect("mappable");
    assert_eq!(exact.winner, "exact");
    assert_eq!(exact.elapsed, exact.runtime);
}

#[test]
fn swap_table_cache_yields_identical_tables() {
    // The same (device, subset) request twice: same contents, same
    // allocation, and both equal to an uncached build.
    let cm = devices::ibm_qx4();
    let a = SwapTable::shared(&cm, &[0, 1, 2, 3]);
    let b = SwapTable::shared(&cm, &[0, 1, 2, 3]);
    assert_eq!(*a, *b);
    assert!(Arc::ptr_eq(&a, &b));
    assert_eq!(*a, SwapTable::for_subset(&cm, &[0, 1, 2, 3]));
}

#[test]
fn repeated_batches_dedupe_through_the_solve_cache() {
    use qxmap::map::SolveCache;

    let requests: Vec<MapRequest> = (0..6)
        .map(|_| MapRequest::new(paper_example(), devices::ibm_qx4()))
        .collect();

    // The first batch builds its SwapTables (or reuses earlier tests');
    // the interesting claim is about the *solve* layer above them. (The
    // SwapTable counters are process-wide and concurrently bumped by
    // sibling tests, so no assertion on them can be made race-free here;
    // their behavior is covered by swap_table_cache_yields_identical_
    // tables and the qxmap-arch unit tests.)
    let first_timer = Instant::now();
    let first = map_many(&requests);
    let first_elapsed = first_timer.elapsed();
    let solve_stats_between = SolveCache::shared().stats();

    let second_timer = Instant::now();
    let second = map_many(&requests);
    let second_elapsed = second_timer.elapsed();
    let solve_stats_after = SolveCache::shared().stats();

    for report in first.iter().chain(&second) {
        let report = report.as_ref().expect("mappable");
        assert_eq!(report.cost.objective, 4);
        assert!(report.proved_optimal);
    }
    // Within the first batch, five of the six identical requests are
    // deduped (one representative solve, five cache-served); the whole
    // second batch is served from the cache without a single new solve.
    assert!(
        first
            .iter()
            .filter(|r| r.as_ref().unwrap().served_from_cache)
            .count()
            >= 5,
        "first batch did not dedupe"
    );
    assert!(
        second.iter().all(|r| r.as_ref().unwrap().served_from_cache),
        "second batch re-solved a cached request"
    );
    // The second batch's one representative hits the cache; its five
    // duplicates are translated straight from that result without even a
    // lookup, so the counter grows by (at least) the representative.
    assert!(
        solve_stats_after.hits > solve_stats_between.hits,
        "second batch missed the solve cache: {solve_stats_between:?} -> {solve_stats_after:?}"
    );
    // "Not slower", with generous margin for scheduler noise.
    assert!(
        second_elapsed <= first_elapsed * 2 + Duration::from_millis(250),
        "second batch slower than first: {second_elapsed:?} vs {first_elapsed:?}"
    );
}

/// Random circuits with 2–4 qubits and up to 8 gates (CNOTs built
/// arithmetically so control ≠ target without filtering).
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2usize..=4).prop_flat_map(|n| {
        let gate = prop_oneof![
            (0..n, 1..n).prop_map(move |(c, d)| (0u8, c, (c + d) % n)),
            (0..n).prop_map(|q| (1u8, q, 0usize)),
        ];
        prop::collection::vec(gate, 1..8).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            for (kind, a, b) in gates {
                match kind {
                    0 => {
                        c.cx(a, b);
                    }
                    _ => {
                        c.h(a);
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: whatever the deadline — from "exact can
    /// never start" to "exact always finishes" — the racing path never
    /// returns a cost worse than the best heuristic baseline's floor.
    #[test]
    fn racing_never_loses_to_the_naive_floor(
        circuit in circuit_strategy(),
        deadline_ms in prop_oneof![Just(1u64), Just(20), Just(5_000)],
    ) {
        let cm = devices::ibm_qx4();
        let naive = HeuristicEngine::naive()
            .run(&MapRequest::new(circuit.clone(), cm.clone()))
            .expect("mappable");
        let request = MapRequest::new(circuit.clone(), cm.clone())
            .with_deadline(Duration::from_millis(deadline_ms));
        let report = Portfolio::new().run(&request).expect("mappable");
        prop_assert!(
            report.cost.objective <= naive.cost.objective,
            "race {} > naive {} (deadline {deadline_ms} ms)",
            report.cost.objective,
            naive.cost.objective
        );
        report.verify(&circuit, &cm).expect("sound");
    }
}
