//! Property-based validation of the windowed engine: for random
//! circuits past the exact regime, the stitched result must verify
//! against the full circuit with every gate certified by exactly one
//! window, and warm window-level cache hits must reproduce the cold
//! run's stitched answer bit for bit.

use std::time::Duration;

use proptest::prelude::*;
use qxmap::arch::devices;
use qxmap::benchmarks::famous;
use qxmap::circuit::Circuit;
use qxmap::map::{Engine, MapRequest};
use qxmap::window::WindowedEngine;

/// The large-circuit smoke gate: a 52-qubit workload — 6.5× past the
/// 8-qubit exact wall — maps end-to-end on a 55-qubit heavy-hex lattice
/// through the windowed engine, inside the deadline, verifies against
/// the full circuit, and carries a per-window certificate chain that
/// accounts for every costed gate.
#[test]
fn fifty_two_qubits_map_on_heavy_hex_within_deadline() {
    let circuit = famous::qft_blocks(13, 4);
    assert_eq!(circuit.num_qubits(), 52);
    let device = devices::by_name("heavy-hex-4").expect("library device");
    let deadline = Duration::from_secs(30);
    let request = MapRequest::new(circuit.clone(), device.clone()).with_deadline(deadline);

    let started = std::time::Instant::now();
    let report = WindowedEngine::new()
        .run(&request)
        .expect("windowed mapping succeeds past the exact regime");
    assert!(
        started.elapsed() < deadline,
        "windowed map overran its deadline: {:?}",
        started.elapsed()
    );

    report
        .verify(&circuit, &device)
        .expect("stitched result is sound");
    let windows = report.windows.expect("windowed reports certify per window");
    assert!(windows.len() >= 13, "{} windows", windows.len());
    // The engine SWAP-decomposes before slicing, so the certified gate
    // count is taken against the decomposed circuit.
    assert_eq!(
        windows.iter().map(|w| w.gates).sum::<usize>(),
        circuit.decompose_swaps().original_cost(),
        "every costed gate is certified by exactly one window"
    );
    assert!(windows
        .iter()
        .all(|w| w.qubits.len() <= qxmap::core::MAX_EXACT_QUBITS));
}

/// Random circuits with 9–12 qubits (past the 8-qubit exact regime)
/// and up to 14 gates.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (9usize..=12).prop_flat_map(|n| {
        let gate = prop_oneof![
            // CNOT with distinct qubits (built arithmetically, no filter).
            (0..n, 1..n).prop_map(move |(c, d)| (0u8, c, (c + d) % n)),
            // H / T on one qubit.
            (0..n).prop_map(|q| (1u8, q, 0usize)),
            (0..n).prop_map(|q| (2u8, q, 0usize)),
        ];
        prop::collection::vec(gate, 1..14).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            for (kind, a, b) in gates {
                match kind {
                    0 => {
                        c.cx(a, b);
                    }
                    1 => {
                        c.h(a);
                    }
                    _ => {
                        c.t(a);
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stitched_windows_verify_against_the_full_circuit(circuit in circuit_strategy()) {
        let device = devices::linear(14);
        let request = MapRequest::new(circuit.clone(), device.clone());
        let report = WindowedEngine::new()
            .run(&request)
            .expect("a connected line maps every circuit");

        // The stitched whole is hardware-legal and gate-complete.
        report.verify(&circuit, &device).expect("sound");
        prop_assert_eq!(report.cost.objective, report.cost.added_gates);

        // Every costed gate of the input is certified by exactly one
        // window, and each window's local solve carries its proof.
        let windows = report.windows.expect("past the exact regime");
        prop_assert_eq!(
            windows.iter().map(|w| w.gates).sum::<usize>(),
            circuit.original_cost()
        );
        for w in &windows {
            prop_assert!(w.qubits.len() <= qxmap::core::MAX_EXACT_QUBITS);
            prop_assert_eq!(w.qubits.len(), w.region.len());
        }
    }

    #[test]
    fn warm_window_cache_hits_reproduce_the_stitched_answer(circuit in circuit_strategy()) {
        let device = devices::linear(14);
        let request = MapRequest::new(circuit.clone(), device.clone());
        let engine = WindowedEngine::new();
        let cold = engine.run(&request).expect("cold run maps");
        let warm = engine.run(&request).expect("warm run maps");

        // The warm run answers its windows from the process-wide solve
        // cache, and the stitched result is identical: same cost, same
        // layouts, same mapped circuit.
        prop_assert_eq!(cold.cost, warm.cost);
        prop_assert_eq!(&cold.initial_layout, &warm.initial_layout);
        prop_assert_eq!(&cold.final_layout, &warm.final_layout);
        prop_assert_eq!(&cold.mapped, &warm.mapped);
        let warm_windows = warm.windows.expect("past the exact regime");
        prop_assert!(
            warm_windows
                .iter()
                .filter(|w| w.engine != "trivial")
                .all(|w| w.served_from_cache),
            "every solvable window of the warm run is a cache hit"
        );
    }
}
