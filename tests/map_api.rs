//! Contract tests for the unified `qxmap-map` surface: the portfolio's
//! floor guarantee and equivalence, the acceptance behaviors on small and
//! large devices, and batch ordering.

use proptest::prelude::*;
use qxmap::arch::devices;
use qxmap::circuit::Circuit;
use qxmap::map::{map_many, map_many_with, Engine, HeuristicEngine, MapRequest, Portfolio};
use qxmap::sim::mapped_equivalent;

/// Random circuits with 2–4 qubits and up to 8 gates (CNOTs built
/// arithmetically so control ≠ target without filtering).
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2usize..=4).prop_flat_map(|n| {
        let gate = prop_oneof![
            (0..n, 1..n).prop_map(move |(c, d)| (0u8, c, (c + d) % n)),
            (0..n).prop_map(|q| (1u8, q, 0usize)),
            (0..n).prop_map(|q| (2u8, q, 0usize)),
        ];
        prop::collection::vec(gate, 1..8).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            for (kind, a, b) in gates {
                match kind {
                    0 => {
                        c.cx(a, b);
                    }
                    1 => {
                        c.h(a);
                    }
                    _ => {
                        c.t(a);
                    }
                }
            }
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The portfolio keeps the naive floor in its pool and only ever
    /// improves on it — and its winner, whichever engine produced it,
    /// stays functionally equivalent to the input.
    #[test]
    fn portfolio_never_worse_than_naive_and_equivalent(circuit in circuit_strategy()) {
        let cm = devices::ibm_qx4();
        let request = MapRequest::new(circuit.clone(), cm.clone());

        let portfolio = Portfolio::new().run(&request).expect("mappable");
        let naive = HeuristicEngine::naive().run(&request).expect("mappable");
        prop_assert!(
            portfolio.cost.objective <= naive.cost.objective,
            "portfolio {} > naive {}",
            portfolio.cost.objective,
            naive.cost.objective
        );
        prop_assert!(portfolio.proved_optimal, "QX4 is inside the exact regime");

        portfolio.verify(&circuit, &cm).expect("sound");
        prop_assert!(mapped_equivalent(
            &circuit.decompose_swaps(),
            &portfolio.mapped,
            &portfolio.initial_layout,
            &portfolio.final_layout,
            1e-9,
        ).expect("unitary"));
    }
}

#[test]
fn portfolio_acceptance_on_the_paper_example() {
    // The issue's acceptance criteria, verbatim: cost 4, proved, on QX4.
    let request = MapRequest::new(qxmap::circuit::paper_example(), devices::ibm_qx4());
    let report = Portfolio::new().run(&request).unwrap();
    assert_eq!(report.cost.objective, 4);
    assert!(report.proved_optimal);
}

#[test]
fn portfolio_falls_back_on_large_devices() {
    // A >8-qubit device is beyond MAX_EXACT_QUBITS: no error, a heuristic
    // answers instead.
    let mut circuit = Circuit::new(9);
    for q in 0..8 {
        circuit.cx(q, q + 1);
    }
    for cm in [devices::ibm_qx5(), devices::ibm_tokyo()] {
        let request = MapRequest::new(circuit.clone(), cm.clone());
        let report = Portfolio::new()
            .run(&request)
            .expect("must fall back, not fail");
        assert!(
            !report.engine.contains("exact"),
            "exact cannot run on {} qubits",
            cm.num_qubits()
        );
        report.verify(&circuit, &cm).expect("legal");
    }
}

#[test]
fn map_many_preserves_input_order() {
    // Distinguishable circuits: request i uses i+2 qubits on a device
    // sized to match, so report i is only valid in slot i.
    let requests: Vec<MapRequest> = (0..8)
        .map(|i| {
            let n = 2 + i;
            let mut c = Circuit::new(n);
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
            MapRequest::new(c, devices::linear(n))
        })
        .collect();
    let reports = map_many(&requests);
    assert_eq!(reports.len(), requests.len());
    for (i, (request, report)) in requests.iter().zip(&reports).enumerate() {
        let report = report.as_ref().expect("linear devices route chains");
        assert_eq!(
            report.mapped.num_qubits(),
            request.device().num_qubits(),
            "slot {i} answered by the wrong request"
        );
        report.verify(request.circuit(), request.device()).unwrap();
    }
    // Same batch through an explicit engine keeps the order too.
    let reports = map_many_with(&HeuristicEngine::sabre(), &requests);
    for (i, (request, report)) in requests.iter().zip(&reports).enumerate() {
        let report = report.as_ref().expect("mappable");
        assert_eq!(report.engine, "sabre", "slot {i}");
        assert_eq!(report.mapped.num_qubits(), request.device().num_qubits());
    }
}
