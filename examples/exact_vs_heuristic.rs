//! Compares the exact minimum against every heuristic baseline on a slice
//! of the evaluation suite — a miniature of the paper's headline result
//! ("IBM's heuristic exceeds the lower bound by more than 100%").
//!
//! Every engine answers the *same* `MapRequest` through the unified
//! `qxmap-map` surface; no per-engine glue required.
//!
//! ```bash
//! cargo run --release --example exact_vs_heuristic
//! ```

use qxmap::arch::devices;
use qxmap::benchmarks::{circuit_for, profiles};
use qxmap::core::bound;
use qxmap::map::{Engine, ExactEngine, HeuristicEngine, MapRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cm = devices::ibm_qx4();
    let names = [
        "ex-1_166",
        "ham3_102",
        "4gt11_84",
        "4mod5-v0_20",
        "4mod5-v1_22",
        "mod5d1_63",
    ];

    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(ExactEngine::new()),
        Box::new(HeuristicEngine::stochastic(5)), // best of 5, as in Table 1
        Box::new(HeuristicEngine::sabre()),
        Box::new(HeuristicEngine::astar()),
        Box::new(HeuristicEngine::naive()),
    ];

    println!(
        "{:<14} {:>4} {:>6} {:>6} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "n", "orig", "LB", "exact", "qiskit*", "sabre", "A*", "naive"
    );
    let mut total_exact_added = 0u64;
    let mut total_stoch_added = 0u64;
    for name in names {
        let profile = profiles::by_name(name).expect("known benchmark");
        let circuit = circuit_for(&profile);
        let lb = bound::lower_bound(
            &circuit.cnot_skeleton(),
            circuit.num_qubits(),
            &cm,
            Default::default(),
        );

        let request = MapRequest::new(circuit.clone(), cm.clone());
        let reports: Vec<_> = engines
            .iter()
            .map(|e| e.run(&request).expect("QX4 maps the whole suite"))
            .collect();
        let exact = &reports[0];

        assert!(
            lb <= exact.cost.objective,
            "lower bound may never exceed the optimum"
        );
        for heuristic in &reports[1..] {
            assert!(
                exact.cost.added_gates <= heuristic.cost.added_gates,
                "{} beat the exact minimum",
                heuristic.engine
            );
        }
        total_exact_added += exact.cost.added_gates;
        total_stoch_added += reports[1].cost.added_gates;

        println!(
            "{:<14} {:>4} {:>6} {:>6} {:>12} {:>8} {:>8} {:>8} {:>8}",
            name,
            circuit.num_qubits(),
            circuit.original_cost(),
            lb,
            format!("{} (F={})", exact.mapped_cost(), exact.cost.objective),
            reports[1].mapped_cost(),
            reports[2].mapped_cost(),
            reports[3].mapped_cost(),
            reports[4].mapped_cost(),
        );
    }
    println!(
        "\nadded-gate overhead of the stochastic (Qiskit-style) mapper vs the exact minimum: {:+.0}%",
        100.0 * (total_stoch_added as f64 - total_exact_added as f64) / total_exact_added as f64
    );
    println!("(the paper reports ≈ +104% over its full suite)");
    Ok(())
}
