//! Compares the exact minimum against every heuristic baseline on a slice
//! of the evaluation suite — a miniature of the paper's headline result
//! ("IBM's heuristic exceeds the lower bound by more than 100%").
//!
//! ```bash
//! cargo run --release --example exact_vs_heuristic
//! ```

use qxmap::arch::devices;
use qxmap::benchmarks::{circuit_for, profiles};
use qxmap::core::{bound, ExactMapper, MapperConfig};
use qxmap::heuristic::{AStarMapper, Mapper, NaiveMapper, SabreMapper, StochasticSwapMapper};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cm = devices::ibm_qx4();
    let names = ["ex-1_166", "ham3_102", "4gt11_84", "4mod5-v0_20", "4mod5-v1_22", "mod5d1_63"];

    println!(
        "{:<14} {:>4} {:>6} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "n", "orig", "LB", "exact", "qiskit*", "sabre", "A*", "naive"
    );
    let mut total_exact_added = 0u64;
    let mut total_stoch_added = 0u64;
    for name in names {
        let profile = profiles::by_name(name).expect("known benchmark");
        let circuit = circuit_for(&profile);
        let lb = bound::lower_bound(
            &circuit.cnot_skeleton(),
            circuit.num_qubits(),
            &cm,
            Default::default(),
        );

        let exact = ExactMapper::with_config(cm.clone(), MapperConfig::minimal().with_subsets(true))
            .map(&circuit)?;

        // Best of 5 probabilistic runs, as in Table 1's last column.
        let stochastic = (0..5)
            .map(|seed| {
                StochasticSwapMapper::with_seed(seed)
                    .map(&circuit, &cm)
                    .expect("mappable")
            })
            .min_by_key(|r| r.mapped_cost())
            .expect("five runs");
        let sabre = SabreMapper::new().map(&circuit, &cm)?;
        let astar = AStarMapper::new().map(&circuit, &cm)?;
        let naive = NaiveMapper::new().map(&circuit, &cm)?;

        assert!(lb <= exact.cost, "lower bound may never exceed the optimum");
        assert!(exact.added_gates <= stochastic.added_gates);
        assert!(exact.added_gates <= sabre.added_gates);
        assert!(exact.added_gates <= astar.added_gates);
        assert!(exact.added_gates <= naive.added_gates);
        total_exact_added += exact.added_gates;
        total_stoch_added += stochastic.added_gates;

        println!(
            "{:<14} {:>4} {:>6} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
            name,
            circuit.num_qubits(),
            circuit.original_cost(),
            lb,
            format!("{} (F={})", exact.mapped_cost(), exact.cost),
            stochastic.mapped_cost(),
            sabre.mapped_cost(),
            astar.mapped_cost(),
            naive.mapped_cost(),
        );
    }
    println!(
        "\nadded-gate overhead of the stochastic (Qiskit-style) mapper vs the exact minimum: {:+.0}%",
        100.0 * (total_stoch_added as f64 - total_exact_added as f64) / total_exact_added as f64
    );
    println!("(the paper reports ≈ +104% over its full suite)");
    Ok(())
}
