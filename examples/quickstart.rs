//! Quickstart: build a circuit, inspect the device, map it exactly.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use qxmap::arch::{devices, SwapTable};
use qxmap::circuit::Circuit;
use qxmap::core::{verify, ExactMapper, MapperConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The device the paper evaluates on: IBM QX4 (Fig. 2).
    let cm = devices::ibm_qx4();
    println!("Device: {cm}");
    println!(
        "  {} physical qubits, {} directed edges, hub degree {}",
        cm.num_qubits(),
        cm.num_edges(),
        cm.max_degree()
    );

    // swaps(π): how many SWAPs each state permutation costs (Eq. 5).
    let table = SwapTable::new(&cm);
    println!(
        "  {} realizable permutations, worst case {} SWAPs\n",
        table.len(),
        table.max_swaps()
    );

    // A small circuit that cannot run as-is: q0 interacts with everyone.
    let mut circuit = Circuit::new(4).named("quickstart");
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.cx(0, 2);
    circuit.cx(0, 3);
    circuit.t(3);
    circuit.cx(2, 3);
    println!("Original ({} gates):\n{circuit}", circuit.original_cost());

    // Map with the guaranteed-minimal method plus the subset optimization.
    let mapper = ExactMapper::with_config(
        cm.clone(),
        MapperConfig::minimal().with_subsets(true),
    );
    let result = mapper.map(&circuit)?;

    println!(
        "Minimal mapping: F = {} ({} SWAPs, {} reversed CNOTs), proved optimal: {}",
        result.cost, result.swaps, result.reversals, result.proved_optimal
    );
    println!("  initial layout: {}", result.initial_layout);
    println!("  final layout:   {}", result.final_layout);
    println!("  physical qubits used: {:?}", result.subset);
    println!("\nMapped ({} gates):\n{}", result.mapped_cost(), result.mapped);

    // Every CNOT in the output respects the coupling map.
    verify::check_result(&circuit, &result, &cm)?;
    println!("verified: output is hardware-legal and cost-consistent");
    Ok(())
}
