//! Quickstart: build a circuit, inspect the device, map it through the
//! unified request/report surface.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use qxmap::arch::{devices, SwapTable};
use qxmap::circuit::Circuit;
use qxmap::map::{Engine, MapRequest, Portfolio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The device the paper evaluates on: IBM QX4 (Fig. 2).
    let cm = devices::ibm_qx4();
    println!("Device: {cm}");
    println!(
        "  {} physical qubits, {} directed edges, hub degree {}",
        cm.num_qubits(),
        cm.num_edges(),
        cm.max_degree()
    );

    // swaps(π): how many SWAPs each state permutation costs (Eq. 5).
    let table = SwapTable::new(&cm);
    println!(
        "  {} realizable permutations, worst case {} SWAPs\n",
        table.len(),
        table.max_swaps()
    );

    // A small circuit that cannot run as-is: q0 interacts with everyone.
    let mut circuit = Circuit::new(4).named("quickstart");
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.cx(0, 2);
    circuit.cx(0, 3);
    circuit.t(3);
    circuit.cx(2, 3);
    println!("Original ({} gates):\n{circuit}", circuit.original_cost());

    // One request, one report: the portfolio engine runs a cheap
    // heuristic, seeds the exact SAT search with its cost, and comes back
    // with a provably minimal mapping.
    let request = MapRequest::new(circuit.clone(), cm.clone());
    let report = Portfolio::new().run(&request)?;

    println!(
        "Minimal mapping via {}: {} — proved optimal: {}",
        report.engine, report.cost, report.proved_optimal
    );
    println!("  initial layout: {}", report.initial_layout);
    println!("  final layout:   {}", report.final_layout);
    if let Some(subset) = &report.subset {
        println!("  physical qubits used: {subset:?}");
    }
    println!(
        "\nMapped ({} gates):\n{}",
        report.mapped_cost(),
        report.mapped
    );

    // Every CNOT in the output respects the coupling map.
    report.verify(&circuit, &cm)?;
    println!("verified: output is hardware-legal and cost-consistent");
    Ok(())
}
