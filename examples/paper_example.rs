//! Reproduces the paper's running example end to end:
//!
//! * Fig. 1a/1b — the 4-qubit circuit and its CNOT skeleton;
//! * Fig. 2 — the IBM QX4 coupling map;
//! * Examples 8/9 — the physical-qubit subsets of Section 4.1;
//! * Example 10 — the change-point sets `G'` of every Section 4.2
//!   strategy;
//! * Example 7 / Fig. 5 — the minimal mapping with cost **F = 4**.
//!
//! ```bash
//! cargo run --release --example paper_example
//! ```

use qxmap::arch::{connected_subsets, devices};
use qxmap::circuit::{draw, paper_example, sequential_layers};
use qxmap::core::Strategy;
use qxmap::map::{Engine, ExactEngine, Guarantee, MapRequest};
use qxmap::sim::mapped_equivalent;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = paper_example();
    println!("=== Fig. 1a: the circuit to be mapped ===");
    println!("{}", draw(&circuit));
    let skeleton = circuit.cnot_skeleton();
    println!("CNOT skeleton (Fig. 1b): {skeleton:?}");
    println!(
        "original cost: {} ({} single-qubit + {} CNOT)\n",
        circuit.original_cost(),
        circuit.num_single_qubit_gates(),
        circuit.num_cnots()
    );

    let cm = devices::ibm_qx4();
    println!("=== Fig. 2: IBM QX4 ===\n{cm}\n");

    println!("=== Examples 8/9: connected 4-subsets of physical qubits ===");
    let subs = connected_subsets(&cm, 4);
    println!(
        "C(5,4) = 5 subsets, {} connected (all contain the hub p3): {:?}\n",
        subs.len(),
        subs.iter()
            .map(|s| s.iter().map(|q| q + 1).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );

    println!("=== Example 10: change points G' per strategy ===");
    println!(
        "disjoint-qubit clusters: {:?}",
        sequential_layers(&circuit.without_single_qubit_gates())
            .iter()
            .map(|l| l.gates.clone())
            .collect::<Vec<_>>()
    );
    for strategy in [
        Strategy::BeforeEveryGate,
        Strategy::DisjointQubits,
        Strategy::OddGates,
        Strategy::QubitTriangle,
    ] {
        let points = strategy.change_points(&skeleton);
        // Print 1-based gate names like the paper (g2, g3, …).
        let named: Vec<String> = points.iter().map(|k| format!("g{}", k + 1)).collect();
        println!(
            "  {:16} |G'| = {}  G' = {{{}}}",
            strategy.name(),
            points.len(),
            named.join(", ")
        );
    }

    println!("\n=== Example 7 / Fig. 5: the minimal mapping ===");
    let request = MapRequest::new(circuit.clone(), cm.clone())
        .with_guarantee(Guarantee::Optimal)
        .with_subsets(false); // the unrestricted Section 3 formulation
    let report = ExactEngine::new().run(&request)?;
    println!(
        "F = {} (SWAPs: {}, reversed CNOTs: {}), proved optimal: {}",
        report.cost.objective, report.cost.swaps, report.cost.reversals, report.proved_optimal
    );
    assert_eq!(report.cost.objective, 4, "the paper's minimum is 4");
    println!("initial layout: {}", report.initial_layout);
    println!("mapped circuit ({} gates):", report.mapped_cost());
    println!("{}", draw(&report.mapped));

    // The paper asserts functional equivalence by construction; we check it.
    let ok = mapped_equivalent(
        &circuit,
        &report.mapped,
        &report.initial_layout,
        &report.final_layout,
        1e-9,
    )?;
    assert!(ok, "mapped circuit must be equivalent to the original");
    println!("simulator-verified: mapped circuit ≡ original (up to layout)");
    Ok(())
}
