//! The Section 4 performance-improvement study on one benchmark: how each
//! permutation-site strategy trades solve time against closeness to the
//! minimum, and what the subset optimization buys.
//!
//! ```bash
//! cargo run --release --example strategies
//! ```

use std::time::Instant;

use qxmap::arch::devices;
use qxmap::benchmarks::{circuit_for, profiles};
use qxmap::core::{ExactMapper, MapperConfig, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cm = devices::ibm_qx4();
    let profile = profiles::by_name("4mod5-v1_22").expect("known benchmark");
    let circuit = circuit_for(&profile);
    println!(
        "benchmark {} — n = {}, original cost {} ({} CNOTs)\n",
        profile.name,
        circuit.num_qubits(),
        circuit.original_cost(),
        circuit.num_cnots()
    );

    let configs: Vec<(&str, MapperConfig)> = vec![
        ("minimal (Sec. 3)", MapperConfig::minimal()),
        (
            "subsets (Sec. 4.1)",
            MapperConfig::minimal().with_subsets(true),
        ),
        (
            "disjoint qubits",
            MapperConfig::minimal()
                .with_strategy(Strategy::DisjointQubits)
                .with_subsets(true),
        ),
        (
            "odd gates",
            MapperConfig::minimal()
                .with_strategy(Strategy::OddGates)
                .with_subsets(true),
        ),
        (
            "qubit triangle",
            MapperConfig::minimal()
                .with_strategy(Strategy::QubitTriangle)
                .with_subsets(true),
        ),
    ];

    println!(
        "{:<20} {:>6} {:>6} {:>6} {:>6} {:>10}",
        "method", "c", "Δmin", "|G'|", "iters", "time"
    );
    let mut minimum = None;
    for (label, cfg) in configs {
        let start = Instant::now();
        let result = ExactMapper::with_config(cm.clone(), cfg).map(&circuit)?;
        let elapsed = start.elapsed();
        let c = result.mapped_cost();
        let min = *minimum.get_or_insert(c);
        println!(
            "{:<20} {:>6} {:>6} {:>6} {:>6} {:>10.3?}",
            label,
            c,
            format!("+{}", c - min),
            result.num_change_points,
            result.iterations,
            elapsed
        );
    }
    println!("\nΔmin is relative to the guaranteed minimum of the first row.");
    Ok(())
}
