//! The Section 4 performance-improvement study on one benchmark: how each
//! permutation-site strategy trades solve time against closeness to the
//! minimum, what the subset optimization buys, and which engine wins a
//! deadline-bounded portfolio race on the same instance.
//!
//! ```bash
//! cargo run --release --example strategies
//! ```

use std::time::{Duration, Instant};

use qxmap::arch::devices;
use qxmap::benchmarks::{circuit_for, profiles};
use qxmap::core::Strategy;
use qxmap::map::{Engine, ExactEngine, MapRequest, Portfolio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cm = devices::ibm_qx4();
    let profile = profiles::by_name("4mod5-v1_22").expect("known benchmark");
    let circuit = circuit_for(&profile);
    println!(
        "benchmark {} — n = {}, original cost {} ({} CNOTs)\n",
        profile.name,
        circuit.num_qubits(),
        circuit.original_cost(),
        circuit.num_cnots()
    );

    let base = MapRequest::new(circuit.clone(), cm.clone());
    let configs: Vec<(&str, MapRequest)> = vec![
        ("minimal (Sec. 3)", base.clone().with_subsets(false)),
        ("subsets (Sec. 4.1)", base.clone()),
        (
            "disjoint qubits",
            base.clone().with_strategy(Strategy::DisjointQubits),
        ),
        ("odd gates", base.clone().with_strategy(Strategy::OddGates)),
        (
            "qubit triangle",
            base.clone().with_strategy(Strategy::QubitTriangle),
        ),
    ];

    println!(
        "{:<20} {:>6} {:>6} {:>6} {:>6} {:>10}",
        "method", "c", "Δmin", "|G'|", "iters", "time"
    );
    let mut minimum = None;
    for (label, request) in configs {
        let start = Instant::now();
        let report = ExactEngine::new().run(&request)?;
        let elapsed = start.elapsed();
        let c = report.mapped_cost();
        let min = *minimum.get_or_insert(c);
        println!(
            "{:<20} {:>6} {:>6} {:>6} {:>6} {:>10.3?}",
            label,
            c,
            format!("+{}", c - min),
            report.num_change_points.unwrap_or(0),
            report.iterations.unwrap_or(0),
            elapsed
        );
    }
    println!("\nΔmin is relative to the guaranteed minimum of the first row.");

    // The same instance through the racing portfolio, deadline-bounded:
    // heuristics and the exact engine run concurrently, and the report
    // says which one actually answered.
    let report = Portfolio::new().run(&base.with_deadline(Duration::from_secs(10)))?;
    println!(
        "\nportfolio race (10 s deadline): F = {} via {}, won by `{}` in {:?}{}",
        report.cost.objective,
        report.engine,
        report.winner,
        report.elapsed,
        if report.proved_optimal {
            " — optimality proven"
        } else {
            " — proof did not close in time"
        }
    );
    Ok(())
}
