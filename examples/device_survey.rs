//! Architecture study: the same circuit mapped across different device
//! topologies. The paper's method is architecture-generic (any coupling
//! map of Definition 2); this example measures how topology drives the
//! minimal SWAP/H cost.
//!
//! ```bash
//! cargo run --release --example device_survey
//! ```

use qxmap::arch::{devices, CostModel, CouplingMap};
use qxmap::circuit::paper_example;
use qxmap::map::{Engine, ExactEngine, MapRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = paper_example();
    println!(
        "circuit: {} ({} qubits, {} CNOTs)\n",
        circuit.name(),
        circuit.num_qubits(),
        circuit.num_cnots()
    );

    let targets: Vec<(CouplingMap, CostModel)> = vec![
        (devices::ibm_qx2(), CostModel::paper()),
        (devices::ibm_qx4(), CostModel::paper()),
        (devices::linear(4), CostModel::paper()),
        (devices::ring(4), CostModel::paper()),
        (devices::grid(2, 2), CostModel::bidirectional()),
        (devices::star(5), CostModel::paper()),
        (devices::fully_connected(4), CostModel::bidirectional()),
    ];

    println!(
        "{:<12} {:>6} {:>7} {:>7} {:>6} {:>6} {:>9}",
        "device", "edges", "F", "mapped", "swaps", "4H", "optimal?"
    );
    for (cm, cost_model) in targets {
        let request = MapRequest::new(circuit.clone(), cm.clone()).with_cost_model(cost_model);
        let r = ExactEngine::new().run(&request)?;
        println!(
            "{:<12} {:>6} {:>7} {:>7} {:>6} {:>6} {:>9}",
            cm.name(),
            cm.num_edges(),
            r.cost.objective,
            r.mapped_cost(),
            r.cost.swaps,
            r.cost.reversals,
            if r.proved_optimal { "yes" } else { "no" },
        );
    }
    println!(
        "\nRicher connectivity monotonically cuts the minimal insertion cost;\n\
         the complete graph needs nothing (F = 0) by construction."
    );
    Ok(())
}
