//! Architecture study: the same circuit mapped across different device
//! topologies. The paper's method is architecture-generic (any coupling
//! map of Definition 2); this example measures how topology drives the
//! minimal SWAP/H cost, and how a calibration override steers the
//! optimum without changing the topology at all.
//!
//! ```bash
//! cargo run --release --example device_survey
//! ```

use qxmap::arch::{devices, DeviceModel};
use qxmap::circuit::paper_example;
use qxmap::map::{Engine, ExactEngine, MapRequest, Portfolio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = paper_example();
    println!(
        "circuit: {} ({} qubits, {} CNOTs)\n",
        circuit.name(),
        circuit.num_qubits(),
        circuit.num_cnots()
    );

    // The topology library: fixed QX backends next to generated
    // families, every one priced by its hardware-derived DeviceModel.
    let targets: Vec<DeviceModel> = [
        devices::ibm_qx2(),
        devices::ibm_qx4(),
        devices::linear(4),
        devices::ring(4),
        devices::grid(2, 2),
        devices::star(5),
        devices::heavy_hex(2, 2),
        devices::fully_connected(4),
    ]
    .into_iter()
    .map(DeviceModel::new)
    .collect();

    println!(
        "{:<16} {:>5} {:>4} {:>5} {:>7} {:>7} {:>6} {:>6} {:>9}",
        "device", "edges", "diam", "a2a?", "F", "mapped", "swaps", "4H", "optimal?"
    );
    for model in targets {
        let stats = *model.stats();
        let request = MapRequest::for_model(circuit.clone(), model.clone());
        let r = ExactEngine::new().run(&request)?;
        println!(
            "{:<16} {:>5} {:>4} {:>5} {:>7} {:>7} {:>6} {:>6} {:>9}",
            model.coupling_map().name(),
            stats.num_edges,
            stats.diameter,
            if stats.all_to_all { "yes" } else { "no" },
            r.cost.objective,
            r.mapped_cost(),
            r.cost.swaps,
            r.cost.reversals,
            if r.proved_optimal { "yes" } else { "no" },
        );
    }
    println!(
        "\nRicher connectivity monotonically cuts the minimal insertion cost;\n\
         the complete graph needs nothing (F = 0) by construction."
    );

    // Calibration: same topology, different optima. Pricing QX4's
    // {p4,p5} SWAPs up makes every permutation through that edge dearer,
    // and the exact engine routes around it.
    let base = DeviceModel::new(devices::ibm_qx4());
    let skewed = base.clone().with_swap_cost(3, 4, 70);
    println!(
        "\ncalibration study on {} (cost skew {:.1}):",
        base.coupling_map().name(),
        skewed.stats().cost_skew()
    );
    for (label, model) in [("uniform 7/4", base), ("swap{p4,p5}=70", skewed)] {
        let r = ExactEngine::new().run(&MapRequest::for_model(circuit.clone(), model.clone()))?;
        println!(
            "  {:<14} fingerprint {:016x}  F = {:<3} ({} swaps, {} reversals)",
            label,
            model.fingerprint(),
            r.cost.objective,
            r.cost.swaps,
            r.cost.reversals,
        );
    }

    // The scheduler reads the same statistics: on an all-to-all device
    // the dominated baselines never start.
    let k5 = MapRequest::new(circuit.clone(), devices::fully_connected(5));
    println!("\nportfolio scheduling on K5:");
    for (engine, reason) in Portfolio::new().skipped_baselines(&k5) {
        println!("  skips {engine}: {reason}");
    }
    let report = Portfolio::new().run(&k5)?;
    println!(
        "  race answered by {} at F = {} (proved: {})",
        report.winner, report.cost.objective, report.proved_optimal
    );
    Ok(())
}
