//! The full toolchain on an OpenQASM input: parse → map → re-export →
//! verify. The input uses a Toffoli, exercising the qelib1 inlining path
//! the RevLib benchmarks rely on.
//!
//! ```bash
//! cargo run --release --example qasm_pipeline
//! ```

use qxmap::arch::devices;
use qxmap::core::Strategy;
use qxmap::map::{Engine, ExactEngine, MapRequest};
use qxmap::qasm;
use qxmap::sim::mapped_equivalent;

const INPUT: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
ccx q[0], q[1], q[2];
tdg q[1];
cx q[2], q[0];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = qasm::parse(INPUT)?;
    println!(
        "parsed: {} qubits, {} gates ({} CNOT after Toffoli decomposition)",
        circuit.num_qubits(),
        circuit.original_cost(),
        circuit.num_cnots()
    );

    let cm = devices::ibm_qx4();
    let request =
        MapRequest::new(circuit.clone(), cm.clone()).with_strategy(Strategy::DisjointQubits);
    let report = ExactEngine::new().run(&request)?;
    println!(
        "mapped to {}: F = {} ({} SWAPs, {} reversals), |G'| = {}",
        cm.name(),
        report.cost.objective,
        report.cost.swaps,
        report.cost.reversals,
        report.num_change_points.unwrap_or(0)
    );

    report.verify(&circuit, &cm)?;
    let ok = mapped_equivalent(
        &circuit,
        &report.mapped,
        &report.initial_layout,
        &report.final_layout,
        1e-9,
    )?;
    assert!(ok, "mapped circuit must stay equivalent");
    println!("verified equivalent; exporting hardware QASM:\n");

    let exported = qasm::to_qasm(&report.mapped);
    println!("{exported}");
    // The export round-trips.
    let reparsed = qasm::parse(&exported)?;
    assert_eq!(reparsed.gates(), report.mapped.gates());
    Ok(())
}
