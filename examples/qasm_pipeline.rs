//! The full toolchain on an OpenQASM input: parse → map → re-export →
//! verify. The input uses a Toffoli, exercising the qelib1 inlining path
//! the RevLib benchmarks rely on.
//!
//! ```bash
//! cargo run --release --example qasm_pipeline
//! ```

use qxmap::arch::devices;
use qxmap::core::{verify, ExactMapper, MapperConfig, Strategy};
use qxmap::qasm;
use qxmap::sim::mapped_equivalent;

const INPUT: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
ccx q[0], q[1], q[2];
tdg q[1];
cx q[2], q[0];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = qasm::parse(INPUT)?;
    println!(
        "parsed: {} qubits, {} gates ({} CNOT after Toffoli decomposition)",
        circuit.num_qubits(),
        circuit.original_cost(),
        circuit.num_cnots()
    );

    let cm = devices::ibm_qx4();
    let mapper = ExactMapper::with_config(
        cm.clone(),
        MapperConfig::minimal()
            .with_subsets(true)
            .with_strategy(Strategy::DisjointQubits),
    );
    let result = mapper.map(&circuit)?;
    println!(
        "mapped to {}: F = {} ({} SWAPs, {} reversals), |G'| = {}",
        cm.name(),
        result.cost,
        result.swaps,
        result.reversals,
        result.num_change_points
    );

    verify::check_result(&circuit, &result, &cm)?;
    let ok = mapped_equivalent(
        &circuit,
        &result.mapped,
        &result.initial_layout,
        &result.final_layout,
        1e-9,
    )?;
    assert!(ok, "mapped circuit must stay equivalent");
    println!("verified equivalent; exporting hardware QASM:\n");

    let exported = qasm::to_qasm(&result.mapped);
    println!("{exported}");
    // The export round-trips.
    let reparsed = qasm::parse(&exported)?;
    assert_eq!(reparsed.gates(), result.mapped.gates());
    Ok(())
}
