//! Test configuration and the deterministic case generator.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The per-test PRNG cases are drawn from (SplitMix64).
///
/// Seeded from the test's name so distinct properties explore distinct
/// streams, yet every run of the suite is reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from `label`.
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot index an empty domain");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
