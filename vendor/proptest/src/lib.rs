//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the proptest API its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_perturb`, range and tuple strategies, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], the [`proptest!`] /
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics deliberately simplified relative to upstream: cases are drawn
//! from a deterministic PRNG (no persisted failure seeds) and failures are
//! reported through plain `assert!` panics (no shrinking). Every generated
//! case is still uniformly random within its strategy, so the properties
//! are exercised across the same input spaces.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirror of upstream's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over freshly generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}
