//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
