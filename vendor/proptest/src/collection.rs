//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length domain for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_exclusive - self.size.lo;
        let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
