//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transforms every generated value with access to fresh randomness.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }
}

/// References to strategies are strategies.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        // Fork an independent generator for the perturbation closure.
        let mut fork = rng.clone();
        fork.next_u64();
        let out = (self.f)(value, fork);
        rng.next_u64(); // advance the parent stream past the fork point
        out
    }
}

/// Uniform choice among boxed strategies — built by [`crate::prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
