//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the Criterion API its benches use: [`Criterion`],
//! benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — each benchmark is timed over a
//! fixed number of sampled iterations and the per-iteration median is
//! printed — but the harness shape (and therefore `cargo bench`) works.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: usize,
    /// Per-iteration medians, collected by the harness.
    last_median: Option<Duration>,
}

impl Bencher {
    fn run_samples(&mut self, mut one: impl FnMut() -> Duration) {
        let mut times: Vec<Duration> = (0..self.samples).map(|_| one()).collect();
        times.sort();
        self.last_median = Some(times[times.len() / 2]);
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run_samples(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` over inputs freshly produced by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run_samples(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            last_median: None,
        };
        f(&mut bencher);
        match bencher.last_median {
            Some(median) => println!("{}/{label}: median {median:?}", self.name),
            None => println!("{}/{label}: no samples recorded", self.name),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_label(), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_label(), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: 10,
            last_median: None,
        };
        f(&mut bencher);
        if let Some(median) = bencher.last_median {
            println!("{id}: median {median:?}");
        }
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
