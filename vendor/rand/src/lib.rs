//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the *subset* of the `rand` API it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_bool` and `gen_range` over `usize` ranges.
//!
//! The generator is SplitMix64 — deterministic for a given seed, which is
//! all the workspace needs (seeded workload generation and seeded
//! stochastic mapping). The streams differ from upstream `rand`; nothing
//! in the workspace depends on upstream's exact values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 fresh bits per call.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` uniformly from an entire type.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a uniform sample can be drawn from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u8, u16, u32, u64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its natural domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// A uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
