//! The regression gate: compares a committed `BENCH_*.json` baseline
//! against a fresh run and reports *gross* regressions.
//!
//! The gate's job is to catch a broken cache, a 4× latency cliff or a
//! halved solution quality on every PR — not to detect 10% drift on a
//! noisy CI runner. Two mechanisms keep it honest:
//!
//! * **ratios with noise floors** — a latency only regresses when it
//!   exceeds *both* `baseline × ratio` and an absolute floor, so
//!   microsecond-scale numbers (warm cache hits) can triple in scheduler
//!   noise without tripping the gate;
//! * **identity checks** — both files must carry the same `schema` and
//!   corpus [`manifest_hash`](qxmap_benchmarks::corpus::manifest_hash),
//!   so the gate refuses to compare runs of different corpora instead of
//!   reporting nonsense. A smoke run compares against a full baseline by
//!   row-name intersection (the smoke corpus is a marked subset of the
//!   same manifest).

use qxmap_serve::Json;

/// When a measurement counts as a gross regression. Defaults are
/// deliberately generous: CI runners are shared and noisy, and a gate
/// that cries wolf gets deleted.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// A latency regresses when `fresh > baseline × latency_ratio` (and
    /// exceeds the floor).
    pub latency_ratio: f64,
    /// Latencies below this (ms) are noise, never regressions.
    pub latency_floor_ms: f64,
    /// A solve cost regresses when
    /// `fresh objective > baseline × objective_ratio`.
    pub objective_ratio: f64,
    /// The cache hit rate regresses when it drops by more than this
    /// (absolute, 0..1).
    pub hit_rate_drop: f64,
    /// Throughput regresses when
    /// `fresh < baseline × throughput_ratio`.
    pub throughput_ratio: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            latency_ratio: 4.0,
            latency_floor_ms: 50.0,
            objective_ratio: 1.5,
            hit_rate_drop: 0.25,
            throughput_ratio: 0.25,
        }
    }
}

/// Compares `fresh` against `baseline` (both parsed `BENCH_*.json`
/// documents of the same schema) and returns one human-readable line per
/// gross regression — empty means the gate passes.
///
/// # Errors
///
/// Returns a description when the two documents are not comparable at
/// all (missing/mismatched `schema`, mismatched `manifest_hash`, or no
/// overlapping rows) — an error, not a regression, because the right fix
/// is regenerating the baseline, not reverting the PR.
pub fn diff(baseline: &Json, fresh: &Json, t: &Thresholds) -> Result<Vec<String>, String> {
    let schema = |doc: &Json, which: &str| {
        doc.get("schema")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{which} document has no \"schema\" field"))
    };
    let base_schema = schema(baseline, "baseline")?;
    let fresh_schema = schema(fresh, "fresh")?;
    if base_schema != fresh_schema {
        return Err(format!(
            "schema mismatch: baseline is {base_schema:?}, fresh is {fresh_schema:?}"
        ));
    }
    fn hash(doc: &Json) -> Option<&str> {
        doc.get("manifest_hash").and_then(Json::as_str)
    }
    match (hash(baseline), hash(fresh)) {
        (Some(b), Some(f)) if b != f => {
            return Err(format!(
                "corpus manifest mismatch: baseline measured {b}, fresh measured {f} \
                 — regenerate the baseline"
            ));
        }
        _ => {}
    }
    match base_schema.as_str() {
        "qxmap.bench_corpus" => diff_corpus(baseline, fresh, t),
        "qxmap.bench_serve" => Ok(diff_serve(baseline, fresh, t)),
        other => Err(format!("unknown schema {other:?}")),
    }
}

/// `fresh > max(floor, baseline × ratio)`, with absent fields never
/// regressing (a baseline predating a field must not fail every PR).
fn slower(baseline: Option<f64>, fresh: Option<f64>, ratio: f64, floor: f64) -> bool {
    match (baseline, fresh) {
        (Some(b), Some(f)) => f > (b * ratio).max(floor),
        _ => false,
    }
}

fn num(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut v = doc;
    for key in path {
        v = v.get(key)?;
    }
    v.as_f64()
}

fn diff_corpus(baseline: &Json, fresh: &Json, t: &Thresholds) -> Result<Vec<String>, String> {
    fn rows<'a>(doc: &'a Json, which: &str) -> Result<&'a [Json], String> {
        doc.get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{which} document has no \"rows\" array"))
    }
    let base_rows = rows(baseline, "baseline")?;
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for row in rows(fresh, "fresh")? {
        let Some(name) = row.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base) = base_rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        compared += 1;
        let field = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64);
        if let (Some(b), Some(f)) = (field(base, "objective"), field(row, "objective")) {
            if f > b * t.objective_ratio {
                regressions.push(format!(
                    "{name}: solve cost regressed {b} -> {f} (> {}x)",
                    t.objective_ratio
                ));
            }
        }
        if slower(
            field(base, "cold_ms"),
            field(row, "cold_ms"),
            t.latency_ratio,
            t.latency_floor_ms,
        ) {
            regressions.push(format!(
                "{name}: cold solve regressed {:.1} ms -> {:.1} ms (> {}x)",
                field(base, "cold_ms").unwrap_or(0.0),
                field(row, "cold_ms").unwrap_or(0.0),
                t.latency_ratio
            ));
        }
        if slower(
            field(base, "warm_p95_ms"),
            field(row, "warm_p95_ms"),
            t.latency_ratio,
            t.latency_floor_ms,
        ) {
            regressions.push(format!(
                "{name}: warm p95 regressed {:.3} ms -> {:.3} ms",
                field(base, "warm_p95_ms").unwrap_or(0.0),
                field(row, "warm_p95_ms").unwrap_or(0.0),
            ));
        }
        // Per-phase breakdowns ride in each row's `phases` object; a
        // document predating the section — or a phase present on only
        // one side — has nothing to compare, and absence never
        // regresses. Phases share the latency noise floor: most are
        // microseconds, and only a gross cliff in a genuinely expensive
        // phase should trip the gate.
        fn phases(doc: &Json) -> &[(String, Json)] {
            doc.get("phases").and_then(Json::as_object).unwrap_or(&[])
        }
        for (phase, fresh_ms) in phases(row) {
            let base_ms = phases(base)
                .iter()
                .find(|(p, _)| p == phase)
                .and_then(|(_, v)| v.as_f64());
            if slower(
                base_ms,
                fresh_ms.as_f64(),
                t.latency_ratio,
                t.latency_floor_ms,
            ) {
                regressions.push(format!(
                    "{name}: phase {phase} regressed {:.1} ms -> {:.1} ms (> {}x)",
                    base_ms.unwrap_or(0.0),
                    fresh_ms.as_f64().unwrap_or(0.0),
                    t.latency_ratio
                ));
            }
        }
    }
    if compared == 0 {
        return Err("no overlapping rows between baseline and fresh run".to_string());
    }
    // Fast-ingest rows ride in a separate `ingest` section; a document
    // predating the section (or missing a row) simply has nothing to
    // compare — absence is never a regression.
    fn ingest(doc: &Json) -> &[Json] {
        doc.get("ingest").and_then(Json::as_array).unwrap_or(&[])
    }
    for row in ingest(fresh) {
        let Some(name) = row.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base) = ingest(baseline)
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        let field = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64);
        if let (Some(b), Some(f)) = (field(base, "speedup"), field(row, "speedup")) {
            if f < b * t.throughput_ratio {
                regressions.push(format!(
                    "{name}: ingest speedup regressed {b:.1}x -> {f:.1}x \
                     (< {}x baseline)",
                    t.throughput_ratio
                ));
            }
        }
        for key in ["parse_par_ms", "qxbc_decode_ms"] {
            if slower(
                field(base, key),
                field(row, key),
                t.latency_ratio,
                t.latency_floor_ms,
            ) {
                regressions.push(format!(
                    "{name}: {key} regressed {:.1} ms -> {:.1} ms (> {}x)",
                    field(base, key).unwrap_or(0.0),
                    field(row, key).unwrap_or(0.0),
                    t.latency_ratio
                ));
            }
        }
    }
    let rate = |doc: &Json| num(doc, &["aggregate", "cache_hit_rate"]);
    if let (Some(b), Some(f)) = (rate(baseline), rate(fresh)) {
        if b - f > t.hit_rate_drop {
            regressions.push(format!(
                "cache hit rate regressed {b:.3} -> {f:.3} (drop > {})",
                t.hit_rate_drop
            ));
        }
    }
    Ok(regressions)
}

fn diff_serve(baseline: &Json, fresh: &Json, t: &Thresholds) -> Vec<String> {
    let mut regressions = Vec::new();
    if let (Some(b), Some(f)) = (
        num(baseline, &["throughput_rps"]),
        num(fresh, &["throughput_rps"]),
    ) {
        if f < b * t.throughput_ratio {
            regressions.push(format!(
                "throughput regressed {b:.1} -> {f:.1} req/s (< {}x baseline)",
                t.throughput_ratio
            ));
        }
    }
    for p in ["p50_ms", "p95_ms", "p99_ms"] {
        if slower(
            num(baseline, &["latency", p]),
            num(fresh, &["latency", p]),
            t.latency_ratio,
            t.latency_floor_ms,
        ) {
            regressions.push(format!(
                "soak {p} regressed {:.1} -> {:.1} ms (> {}x)",
                num(baseline, &["latency", p]).unwrap_or(0.0),
                num(fresh, &["latency", p]).unwrap_or(0.0),
                t.latency_ratio
            ));
        }
    }
    // The pipelined warm phase rides in its own section; a baseline
    // predating it (or a fresh run not measuring it) has nothing to
    // compare — absence is never a regression.
    for (key, what) in [
        ("pipelined_rps", "pipelined warm throughput"),
        ("speedup", "pipelining speedup"),
    ] {
        if let (Some(b), Some(f)) = (
            num(baseline, &["pipelined", key]),
            num(fresh, &["pipelined", key]),
        ) {
            if f < b * t.throughput_ratio {
                regressions.push(format!(
                    "{what} regressed {b:.1} -> {f:.1} (< {}x baseline)",
                    t.throughput_ratio
                ));
            }
        }
    }
    let hit = |doc: &Json| {
        doc.get("warm_restart")
            .and_then(|w| w.get("hit"))
            .and_then(Json::as_bool)
    };
    if hit(baseline) == Some(true) && hit(fresh) == Some(false) {
        regressions
            .push("warm restart no longer serves the repeated request from cache".to_string());
    }
    if slower(
        num(baseline, &["warm_restart", "latency_ms"]),
        num(fresh, &["warm_restart", "latency_ms"]),
        t.latency_ratio,
        t.latency_floor_ms,
    ) {
        regressions.push(format!(
            "warm restart hit latency regressed {:.3} -> {:.3} ms",
            num(baseline, &["warm_restart", "latency_ms"]).unwrap_or(0.0),
            num(fresh, &["warm_restart", "latency_ms"]).unwrap_or(0.0),
        ));
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_doc(cold_ms: f64, objective: u64, hit_rate: f64) -> Json {
        Json::obj([
            ("schema", Json::str("qxmap.bench_corpus")),
            ("schema_version", Json::num(1)),
            ("manifest_hash", Json::str("0xabc")),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([
                        ("name", Json::str("3_17_13")),
                        ("objective", Json::num(objective)),
                        ("cold_ms", Json::Num(cold_ms)),
                        ("warm_p95_ms", Json::Num(0.02)),
                    ]),
                    Json::obj([
                        ("name", Json::str("ex-1_166")),
                        ("objective", Json::num(2)),
                        ("cold_ms", Json::Num(30.0)),
                        ("warm_p95_ms", Json::Num(0.02)),
                    ]),
                ]),
            ),
            (
                "ingest",
                Json::Arr(vec![Json::obj([
                    ("name", Json::str("ingest_big")),
                    ("parse_seq_ms", Json::Num(400.0)),
                    ("parse_par_ms", Json::Num(110.0)),
                    ("qxbc_decode_ms", Json::Num(40.0)),
                    ("speedup", Json::Num(10.0)),
                ])]),
            ),
            (
                "aggregate",
                Json::obj([("cache_hit_rate", Json::Num(hit_rate))]),
            ),
        ])
    }

    fn set_ingest(doc: &mut Json, ingest: Json) {
        let Json::Obj(pairs) = doc else {
            unreachable!()
        };
        for (k, v) in pairs.iter_mut() {
            if k == "ingest" {
                *v = ingest.clone();
            }
        }
    }

    fn serve_doc(throughput: f64, p95: f64, warm_hit: bool) -> Json {
        Json::obj([
            ("schema", Json::str("qxmap.bench_serve")),
            ("schema_version", Json::num(1)),
            ("manifest_hash", Json::str("0xabc")),
            ("throughput_rps", Json::Num(throughput)),
            (
                "latency",
                Json::obj([
                    ("p50_ms", Json::Num(p95 / 2.0)),
                    ("p95_ms", Json::Num(p95)),
                    ("p99_ms", Json::Num(p95 * 1.5)),
                ]),
            ),
            (
                "warm_restart",
                Json::obj([
                    ("hit", Json::Bool(warm_hit)),
                    ("latency_ms", Json::Num(0.4)),
                ]),
            ),
        ])
    }

    fn with_pipelined(mut doc: Json, pipelined_rps: f64, speedup: f64) -> Json {
        if let Json::Obj(pairs) = &mut doc {
            pairs.push((
                "pipelined".to_string(),
                Json::obj([
                    ("per_client", Json::num(300)),
                    ("serial_rps", Json::Num(pipelined_rps / speedup)),
                    ("pipelined_rps", Json::Num(pipelined_rps)),
                    ("speedup", Json::Num(speedup)),
                ]),
            ));
        }
        doc
    }

    #[test]
    fn identical_runs_pass() {
        let doc = corpus_doc(200.0, 4, 0.8);
        assert_eq!(
            diff(&doc, &doc, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
        let doc = serve_doc(500.0, 40.0, true);
        assert_eq!(
            diff(&doc, &doc, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
    }

    #[test]
    fn injected_corpus_regressions_are_caught() {
        let baseline = corpus_doc(200.0, 4, 0.8);
        // 10x cold latency, doubled solve cost, collapsed hit rate.
        let fresh = corpus_doc(2000.0, 8, 0.3);
        let regressions = diff(&baseline, &fresh, &Thresholds::default()).unwrap();
        assert_eq!(regressions.len(), 3, "{regressions:?}");
        assert!(regressions.iter().any(|r| r.contains("cold solve")));
        assert!(regressions.iter().any(|r| r.contains("solve cost")));
        assert!(regressions.iter().any(|r| r.contains("cache hit rate")));
    }

    #[test]
    fn ingest_regressions_are_caught_and_absent_sections_tolerated() {
        let baseline = corpus_doc(200.0, 4, 0.8);
        // A collapsed ingest speedup (10x -> 1x) and a 10x slower QXBC
        // decode both trip the gate.
        let mut fresh = corpus_doc(200.0, 4, 0.8);
        set_ingest(
            &mut fresh,
            Json::Arr(vec![Json::obj([
                ("name", Json::str("ingest_big")),
                ("parse_seq_ms", Json::Num(400.0)),
                ("parse_par_ms", Json::Num(400.0)),
                ("qxbc_decode_ms", Json::Num(400.0)),
                ("speedup", Json::Num(1.0)),
            ])]),
        );
        let regressions = diff(&baseline, &fresh, &Thresholds::default()).unwrap();
        assert!(
            regressions.iter().any(|r| r.contains("ingest speedup")),
            "{regressions:?}"
        );
        assert!(
            regressions.iter().any(|r| r.contains("qxbc_decode_ms")),
            "{regressions:?}"
        );

        // A baseline predating the ingest section (or a fresh run not
        // measuring it) compares cleanly — absence never regresses.
        let mut old_baseline = corpus_doc(200.0, 4, 0.8);
        set_ingest(&mut old_baseline, Json::Arr(vec![]));
        assert_eq!(
            diff(&old_baseline, &fresh, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
        let mut skipped = corpus_doc(200.0, 4, 0.8);
        set_ingest(&mut skipped, Json::Arr(vec![]));
        assert_eq!(
            diff(&baseline, &skipped, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
    }

    /// Appends a `phases` object to the named row.
    fn set_row_phases(doc: &mut Json, row_name: &str, phases: Json) {
        let Json::Obj(pairs) = doc else {
            unreachable!()
        };
        for (k, v) in pairs.iter_mut() {
            if k != "rows" {
                continue;
            }
            let Json::Arr(rows) = v else { unreachable!() };
            for row in rows {
                let Json::Obj(fields) = row else {
                    unreachable!()
                };
                if fields
                    .iter()
                    .any(|(k, v)| k == "name" && v.as_str() == Some(row_name))
                {
                    fields.push(("phases".to_string(), phases.clone()));
                }
            }
        }
    }

    #[test]
    fn phase_regressions_are_caught_and_absent_sections_tolerated() {
        let mut baseline = corpus_doc(200.0, 4, 0.8);
        set_row_phases(
            &mut baseline,
            "3_17_13",
            Json::obj([("race", Json::Num(100.0)), ("queue", Json::Num(0.02))]),
        );
        // The race phase collapses 10x; the microsecond queue phase
        // triples but stays under the noise floor.
        let mut fresh = corpus_doc(200.0, 4, 0.8);
        set_row_phases(
            &mut fresh,
            "3_17_13",
            Json::obj([("race", Json::Num(1000.0)), ("queue", Json::Num(0.06))]),
        );
        let regressions = diff(&baseline, &fresh, &Thresholds::default()).unwrap();
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("phase race"), "{regressions:?}");

        // A baseline predating the section — or a fresh run without it —
        // compares cleanly, as does a phase present on only one side.
        let plain = corpus_doc(200.0, 4, 0.8);
        assert_eq!(
            diff(&plain, &fresh, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
        assert_eq!(
            diff(&baseline, &plain, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
        let mut renamed = corpus_doc(200.0, 4, 0.8);
        set_row_phases(
            &mut renamed,
            "3_17_13",
            Json::obj([("windows", Json::Num(5000.0))]),
        );
        assert_eq!(
            diff(&baseline, &renamed, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
    }

    #[test]
    fn noise_floors_swallow_small_absolute_changes() {
        let baseline = corpus_doc(5.0, 4, 0.8);
        // 8x of a 5 ms cold solve is still under the 50 ms floor; a warm
        // p95 tripling from 20 µs is noise too.
        let fresh = corpus_doc(40.0, 4, 0.8);
        assert_eq!(
            diff(&baseline, &fresh, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
    }

    #[test]
    fn injected_serve_regressions_are_caught() {
        let baseline = serve_doc(500.0, 40.0, true);
        let fresh = serve_doc(50.0, 400.0, false);
        let regressions = diff(&baseline, &fresh, &Thresholds::default()).unwrap();
        assert!(regressions.iter().any(|r| r.contains("throughput")));
        assert!(regressions.iter().any(|r| r.contains("p95")));
        assert!(regressions.iter().any(|r| r.contains("warm restart")));
    }

    #[test]
    fn pipelined_collapse_is_caught_and_absent_sections_tolerated() {
        let baseline = with_pipelined(serve_doc(500.0, 40.0, true), 8000.0, 4.0);
        // A collapsed pipelined phase — throughput and speedup both far
        // below the baseline's — trips the gate on both fields.
        let fresh = with_pipelined(serve_doc(500.0, 40.0, true), 800.0, 0.5);
        let regressions = diff(&baseline, &fresh, &Thresholds::default()).unwrap();
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("pipelined warm throughput")),
            "{regressions:?}"
        );
        assert!(
            regressions.iter().any(|r| r.contains("pipelining speedup")),
            "{regressions:?}"
        );

        // A baseline predating the section (or a fresh run without it)
        // compares cleanly — absence never regresses.
        let without = serve_doc(500.0, 40.0, true);
        assert_eq!(
            diff(&without, &fresh, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
        assert_eq!(
            diff(&baseline, &without, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
    }

    #[test]
    fn incompatible_documents_error_instead_of_regressing() {
        let corpus = corpus_doc(200.0, 4, 0.8);
        let serve = serve_doc(500.0, 40.0, true);
        assert!(diff(&corpus, &serve, &Thresholds::default())
            .unwrap_err()
            .contains("schema mismatch"));

        let mut other_corpus = corpus_doc(200.0, 4, 0.8);
        if let Json::Obj(pairs) = &mut other_corpus {
            for (k, v) in pairs.iter_mut() {
                if k == "manifest_hash" {
                    *v = Json::str("0xdef");
                }
            }
        }
        assert!(diff(&corpus, &other_corpus, &Thresholds::default())
            .unwrap_err()
            .contains("manifest mismatch"));

        assert!(diff(&Json::Null, &corpus, &Thresholds::default()).is_err());
    }

    #[test]
    fn disjoint_rows_are_an_error_but_subsets_compare() {
        let baseline = corpus_doc(200.0, 4, 0.8);
        let mut renamed = corpus_doc(200.0, 4, 0.8);
        if let Json::Obj(pairs) = &mut renamed {
            for (k, v) in pairs.iter_mut() {
                if k == "rows" {
                    *v = Json::Arr(vec![Json::obj([("name", Json::str("nope"))])]);
                }
            }
        }
        assert!(diff(&baseline, &renamed, &Thresholds::default())
            .unwrap_err()
            .contains("no overlapping rows"));

        // A smoke run (subset of the baseline's rows) compares cleanly.
        let mut smoke = corpus_doc(190.0, 4, 0.8);
        if let Json::Obj(pairs) = &mut smoke {
            for (k, v) in pairs.iter_mut() {
                if k == "rows" {
                    let Json::Arr(rows) = v.clone() else {
                        unreachable!()
                    };
                    *v = Json::Arr(rows[..1].to_vec());
                }
            }
        }
        assert_eq!(
            diff(&baseline, &smoke, &Thresholds::default()).unwrap(),
            vec![] as Vec<String>
        );
    }
}
