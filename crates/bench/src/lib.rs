//! # qxmap-bench
//!
//! The evaluation harness: regenerates every exhibit of the paper's
//! Section 5 (see `DESIGN.md` §4 for the experiment index).
//!
//! * `cargo run --release -p qxmap-bench --bin table1` — regenerates
//!   **Table 1** (all column groups + the IBM baseline + the headline
//!   averages). `--quick` restricts to the smaller rows; `--full` removes
//!   conflict budgets so every minimal result is *proved* minimal.
//! * `cargo run --release -p qxmap-bench --bin encoding_stats` — prints
//!   SAT-instance sizes per benchmark and strategy.
//! * `cargo bench -p qxmap-bench` — Criterion microbenchmarks: mapping
//!   methods, Section 4.2 strategies (runtime vs `|G'|`), heuristic
//!   baselines, and substrate ablations (SAT engine, swap tables, QASM,
//!   simulator).
//!
//! The **perf-trajectory harness** (see `GUIDE.md`, "Measuring
//! performance") lives here too:
//!
//! * `--bin bench_corpus` — runs the fixed, versioned
//!   [`qxmap_benchmarks::corpus`] through cold and warm solves and
//!   writes `BENCH_corpus.json` (plus the windowed-vs-heuristic rows as
//!   `BENCH_window.json`); `--smoke` restricts to the marked CI subset.
//! * `--bin bench_soak` — boots the serving tier on loopback, drives
//!   concurrent mixed traffic under deterministic seeds, and writes
//!   `BENCH_serve.json` (throughput, percentiles, overload/deadline
//!   counters, warm-restart hit latency).
//! * `--bin bench_diff` — compares a committed baseline against a fresh
//!   run and exits nonzero on gross regression (the CI gate; thresholds
//!   and noise floors in [`diff::Thresholds`]).
//!
//! All binaries drive the mapping engines through the unified
//! `qxmap-map` request/report surface. Shared helpers live here.

#![forbid(unsafe_code)]

pub mod diff;
pub mod stats;

use qxmap_arch::{devices, CouplingMap, DeviceModel};
use qxmap_circuit::Circuit;
use qxmap_map::{Engine, HeuristicEngine, MapReport, MapRequest};

/// The `devices` benchmark profile: one representative of every topology
/// family in the library — the fixed QX backends next to generated ring,
/// grid, heavy-hex and all-to-all devices — each wrapped in its
/// hardware-derived [`DeviceModel`] so benches measure against the same
/// authority the engines read costs from.
///
/// Kept small and deterministic on purpose: these are the workloads the
/// `devices` Criterion bench and the CI smoke step sweep, so a topology
/// regression (a generator panicking, a scheduler skipping the wrong
/// baseline) fails loudly.
pub fn device_suite() -> Vec<DeviceModel> {
    vec![
        DeviceModel::new(devices::ibm_qx4()),
        DeviceModel::new(devices::ring(6)),
        DeviceModel::new(devices::grid(2, 3)),
        DeviceModel::new(devices::heavy_hex(2, 2)),
        DeviceModel::new(devices::fully_connected(6)),
    ]
}

/// Best of `runs` probabilistic stochastic-swap mappings (Table 1 ran
/// Qiskit "5 times for each benchmark and listed the observed minimum").
///
/// # Panics
///
/// Panics if `runs == 0` or the circuit cannot be mapped.
pub fn best_of_stochastic(circuit: &Circuit, cm: &CouplingMap, runs: u64) -> MapReport {
    assert!(runs > 0);
    let request = MapRequest::new(circuit.clone(), cm.clone());
    HeuristicEngine::stochastic(runs)
        .run(&request)
        .expect("connected device")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn best_of_is_monotone_in_runs() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let one = best_of_stochastic(&c, &cm, 1).mapped_cost();
        let five = best_of_stochastic(&c, &cm, 5).mapped_cost();
        assert!(five <= one);
    }

    #[test]
    fn device_suite_spans_the_topology_library() {
        let suite = device_suite();
        assert!(suite.len() >= 5);
        for model in &suite {
            assert!(model.stats().connected, "{model}");
            assert!(model.num_qubits() >= 5);
        }
        // At least one all-to-all entry (exercises the scheduler's skip
        // path) and one heavy-hex entry (exercises the generator).
        assert!(suite.iter().any(|m| m.stats().all_to_all));
        assert!(suite
            .iter()
            .any(|m| m.coupling_map().name().starts_with("heavy-hex")));
    }
}
