//! Prints SAT-instance sizes per benchmark and strategy — the measurable
//! counterpart of the paper's search-space discussion: Example 5 counts
//! `n·m·|G|` mapping variables, Section 4.2 argues the search space is
//! `2^(n·m·(|G'|+1))`, and footnote 6 hints at further strategies (our
//! `Window(k)`).
//!
//! Instances are built through the unified `qxmap-map` surface
//! ([`ExactEngine::encoding_stats`]).
//!
//! ```bash
//! cargo run --release -p qxmap-bench --bin encoding_stats
//! ```

use qxmap_arch::devices;
use qxmap_benchmarks::{circuit_for, table1_profiles};
use qxmap_core::Strategy;
use qxmap_map::{ExactEngine, MapRequest};

fn main() {
    let cm = devices::ibm_qx4();
    println!(
        "{:<12} {:>3} {:>4} | {:<16} {:>5} {:>9} {:>9} {:>8}",
        "benchmark", "n", "|G|", "strategy", "|G'|", "vars", "clauses", "x-vars"
    );
    for profile in table1_profiles() {
        if profile.cnots > 20 {
            continue; // keep the report quick; sizes scale linearly anyway
        }
        let circuit = circuit_for(&profile);
        for strategy in [
            Strategy::BeforeEveryGate,
            Strategy::DisjointQubits,
            Strategy::OddGates,
            Strategy::QubitTriangle,
            Strategy::Window(4),
        ] {
            let request =
                MapRequest::new(circuit.clone(), cm.clone()).with_strategy(strategy.clone());
            let stats = ExactEngine::new()
                .encoding_stats(&request)
                .expect("suite circuits fit the device");
            println!(
                "{:<12} {:>3} {:>4} | {:<16} {:>5} {:>9} {:>9} {:>8}",
                profile.name,
                profile.qubits,
                profile.cnots,
                strategy.name(),
                stats.change_points,
                stats.variables,
                stats.clauses,
                stats.mapping_variables,
            );
        }
    }
}
