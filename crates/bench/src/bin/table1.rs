//! Regenerates **Table 1** of the paper on the reproduced workload suite,
//! driving every mapping method through the unified `qxmap-map` surface.
//!
//! Columns, mirroring the paper:
//!
//! * benchmark, `n`, original cost;
//! * minimal method (Section 3): mapped cost `c`, runtime;
//! * performance-optimized (Section 4.1, subsets): `c (Δmin)`, runtime;
//! * Section 4.2 strategies — disjoint qubits / odd gates / qubit
//!   triangle: `c (Δmin)`, runtime, `|G'|`;
//! * IBM-style baseline (stochastic swap, best of 5 seeds): `c (Δmin)`;
//! * footer: the paper's two headline averages recomputed on measured
//!   data, next to the paper's reported numbers.
//!
//! Flags:
//!
//! * `--quick` — only rows with ≤ 14 CNOTs (finishes in ~a minute);
//! * `--full` — no conflict budgets: every minimal entry is proved
//!   minimal (runtimes grow accordingly, like the paper's hours-long
//!   runs);
//! * `--budget N` — total conflict budget per table cell (default 50000);
//!   entries that hit the budget are marked `*` (best found, unproved);
//! * `--smoke` — first 3 rows with a tight budget: the CI regression
//!   gate, not a faithful reproduction;
//! * `--device NAME` — any [`qxmap_arch::devices::by_name`] device
//!   (e.g. `heavy-hex-1`, `ring-6`, `tokyo`). On QX4 the paper's full
//!   exact table is printed; on every other topology a portfolio table
//!   (racing exact-with-subsets where in regime) exercises the topology
//!   library end to end.

use std::time::{Duration, Instant};

use qxmap_arch::{devices, CouplingMap, DeviceModel};
use qxmap_bench::best_of_stochastic;
use qxmap_benchmarks::{circuit_for, table1_profiles, BenchmarkProfile};
use qxmap_core::Strategy;
use qxmap_map::{Engine, ExactEngine, HeuristicEngine, MapRequest, Portfolio};

struct Cell {
    cost: usize,
    seconds: f64,
    change_points: usize,
    proved: bool,
}

fn run(request: MapRequest) -> Cell {
    let start = Instant::now();
    let report = ExactEngine::new()
        .run(&request)
        .expect("Table 1 instances are mappable");
    Cell {
        cost: report.mapped_cost(),
        seconds: start.elapsed().as_secs_f64(),
        change_points: report.num_change_points.unwrap_or(0),
        proved: report.proved_optimal,
    }
}

/// The reduced table for non-QX4 topologies: portfolio (exact racing
/// within its regime) next to the heuristic baselines, all reading costs
/// from the device's hardware-derived model.
fn device_table(cm: &CouplingMap, profiles: &[BenchmarkProfile], budget: u64) {
    let model = DeviceModel::new(cm.clone());
    println!(
        "Topology-library run — device: {model} (fingerprint {:016x})",
        model.fingerprint()
    );
    println!("portfolio races naive/SABRE against exact-with-subsets; budget {budget} conflicts");
    let probe = MapRequest::for_model(qxmap_circuit::Circuit::new(1), model.clone());
    for (engine, reason) in Portfolio::new().skipped_baselines(&probe) {
        println!("scheduler skips {engine}: {reason}");
    }
    println!();
    println!(
        "{:<12} {:>2} {:>5} | {:>9} {:>8} {:>18} {:>7} | {:>9} | {:>9} | {:>9}",
        "benchmark",
        "n",
        "orig",
        "portf c",
        "t[s]",
        "winner",
        "proved",
        "naive c",
        "sabre c",
        "IBM c"
    );
    for profile in profiles {
        let circuit = circuit_for(profile);
        if circuit.num_qubits() > cm.num_qubits() {
            println!(
                "{:<12} skipped: needs {} qubits",
                profile.name,
                circuit.num_qubits()
            );
            continue;
        }
        let request = MapRequest::for_model(circuit.clone(), model.clone())
            .with_conflict_budget(Some(budget))
            .with_deadline(Duration::from_secs(20));
        let start = Instant::now();
        let portfolio = Portfolio::new()
            .run(&request)
            .expect("suite circuits map on connected devices");
        let seconds = start.elapsed().as_secs_f64();
        portfolio
            .verify(&circuit, cm)
            .expect("portfolio reports verify");
        let naive = HeuristicEngine::naive().run(&request).expect("mappable");
        let sabre = HeuristicEngine::sabre().run(&request).expect("mappable");
        let ibm = best_of_stochastic(&circuit, cm, 5);
        println!(
            "{:<12} {:>2} {:>5} | {:>9} {:>8.2} {:>18} {:>7} | {:>9} | {:>9} | {:>9}",
            profile.name,
            profile.qubits,
            profile.original_cost(),
            portfolio.mapped_cost(),
            seconds,
            portfolio.winner,
            if portfolio.proved_optimal {
                "yes"
            } else {
                "no"
            },
            naive.mapped_cost(),
            sabre.mapped_cost(),
            ibm.mapped_cost(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");
    let budget: u64 = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 5_000 } else { 50_000 });
    let device_name = args
        .iter()
        .position(|a| a == "--device")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "qx4".to_string());

    let cm = devices::by_name(&device_name).unwrap_or_else(|| {
        eprintln!("unknown device {device_name:?}; try qx4, tokyo, ring-6, grid-3x3, heavy-hex-1");
        std::process::exit(2);
    });
    let profiles: Vec<BenchmarkProfile> = if smoke {
        table1_profiles().into_iter().take(3).collect()
    } else {
        table1_profiles()
    };
    if cm.name() != "IBM QX4" {
        device_table(&cm, &profiles, budget);
        return;
    }
    println!("Reproduction of Table 1 — workload: synthetic profile-matched suite (DESIGN.md §2)");
    println!("device: {cm}");
    if !full {
        println!(
            "budget: {budget} conflicts/cell (entries marked * hit it; use --full to prove all)"
        );
    }
    println!();
    println!(
        "{:<12} {:>2} {:>5} | {:>9} {:>8} | {:>9} {:>8} | {:>12} {:>8} {:>4} | {:>12} {:>8} {:>4} | {:>12} {:>8} {:>4} | {:>10} | {:>5} {:>6}",
        "benchmark", "n", "orig",
        "min c", "t[s]",
        "4.1 c(Δ)", "t[s]",
        "disj c(Δ)", "t[s]", "|G'|",
        "odd c(Δ)", "t[s]", "|G'|",
        "tri c(Δ)", "t[s]", "|G'|",
        "IBM c(Δ)",
        "paper", "paperQ"
    );

    let mut measured: Vec<(usize, usize, usize)> = Vec::new(); // (orig, cmin, qiskit)
    for profile in profiles {
        if quick && profile.cnots > 14 && profile.qubits > 4 {
            continue;
        }
        let circuit = circuit_for(&profile);
        // Budget the unrestricted method only on large instances.
        let budgeted = profile.cnots > 16;
        let base = MapRequest::new(circuit.clone(), cm.clone()).with_conflict_budget(
            if full || !budgeted {
                None
            } else {
                Some(budget)
            },
        );

        let minimal = run(base.clone().with_subsets(false));
        let subsets = run(base.clone());
        let disjoint = run(base.clone().with_strategy(Strategy::DisjointQubits));
        let odd = run(base.clone().with_strategy(Strategy::OddGates));
        let triangle = run(base.clone().with_strategy(Strategy::QubitTriangle));
        let ibm = best_of_stochastic(&circuit, &cm, 5);

        // Reference for Δ: the best exact result of any column. With
        // budgets, a restricted strategy can beat the capped minimal
        // column, so the reference must span all of them.
        let cmin = [
            minimal.cost,
            subsets.cost,
            disjoint.cost,
            odd.cost,
            triangle.cost,
        ]
        .into_iter()
        .min()
        .expect("five cells");
        let star = |c: &Cell| if c.proved { "" } else { "*" };
        let delta = |c: usize| {
            if c >= cmin {
                format!("{c}(+{})", c - cmin)
            } else {
                format!("{c}(-{})", cmin - c)
            }
        };
        println!(
            "{:<12} {:>2} {:>5} | {:>8}{:>1} {:>8.2} | {:>8}{:>1} {:>8.2} | {:>12} {:>8.2} {:>4} | {:>12} {:>8.2} {:>4} | {:>12} {:>8.2} {:>4} | {:>10} | {:>5} {:>6}",
            profile.name,
            profile.qubits,
            profile.original_cost(),
            minimal.cost, star(&minimal), minimal.seconds,
            delta(subsets.cost), star(&subsets), subsets.seconds,
            delta(disjoint.cost), disjoint.seconds, disjoint.change_points,
            delta(odd.cost), odd.seconds, odd.change_points,
            delta(triangle.cost), triangle.seconds, triangle.change_points,
            delta(ibm.mapped_cost()),
            profile.paper.cmin,
            profile.paper.qiskit,
        );
        measured.push((profile.original_cost(), cmin, ibm.mapped_cost()));
    }

    // Headline averages (§5 of the paper).
    let total_overhead: f64 = measured
        .iter()
        .map(|&(_, c, q)| (q as f64 - c as f64) / c as f64)
        .sum::<f64>()
        / measured.len() as f64;
    let added_rows: Vec<(f64, f64)> = measured
        .iter()
        .filter(|&&(o, c, _)| c > o)
        .map(|&(o, c, q)| ((c - o) as f64, (q - o) as f64))
        .collect();
    let added_overhead: f64 = added_rows
        .iter()
        .map(|(amin, aq)| (aq - amin) / amin)
        .sum::<f64>()
        / added_rows.len().max(1) as f64;

    println!();
    println!(
        "IBM-style heuristic vs exact minimum — total mapped gates: {:+.0}% (paper: +45%)",
        100.0 * total_overhead
    );
    println!(
        "IBM-style heuristic vs exact minimum — added gates only:  {:+.0}% (paper: +104%, \"more than 100%\")",
        100.0 * added_overhead
    );
}
