//! Regenerates **Table 1** of the paper on the reproduced workload suite,
//! driving every mapping method through the unified `qxmap-map` surface.
//!
//! Columns, mirroring the paper:
//!
//! * benchmark, `n`, original cost;
//! * minimal method (Section 3): mapped cost `c`, runtime;
//! * performance-optimized (Section 4.1, subsets): `c (Δmin)`, runtime;
//! * Section 4.2 strategies — disjoint qubits / odd gates / qubit
//!   triangle: `c (Δmin)`, runtime, `|G'|`;
//! * IBM-style baseline (stochastic swap, best of 5 seeds): `c (Δmin)`;
//! * footer: the paper's two headline averages recomputed on measured
//!   data, next to the paper's reported numbers.
//!
//! Flags:
//!
//! * `--quick` — only rows with ≤ 14 CNOTs (finishes in ~a minute);
//! * `--full` — no conflict budgets: every minimal entry is proved
//!   minimal (runtimes grow accordingly, like the paper's hours-long
//!   runs);
//! * `--budget N` — total conflict budget per table cell (default 50000);
//!   entries that hit the budget are marked `*` (best found, unproved).

use std::time::Instant;

use qxmap_arch::devices;
use qxmap_bench::best_of_stochastic;
use qxmap_benchmarks::{circuit_for, table1_profiles};
use qxmap_core::Strategy;
use qxmap_map::{Engine, ExactEngine, MapRequest};

struct Cell {
    cost: usize,
    seconds: f64,
    change_points: usize,
    proved: bool,
}

fn run(request: MapRequest) -> Cell {
    let start = Instant::now();
    let report = ExactEngine::new()
        .run(&request)
        .expect("Table 1 instances are mappable");
    Cell {
        cost: report.mapped_cost(),
        seconds: start.elapsed().as_secs_f64(),
        change_points: report.num_change_points.unwrap_or(0),
        proved: report.proved_optimal,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let budget: u64 = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);

    let cm = devices::ibm_qx4();
    println!("Reproduction of Table 1 — workload: synthetic profile-matched suite (DESIGN.md §2)");
    println!("device: {cm}");
    if !full {
        println!(
            "budget: {budget} conflicts/cell (entries marked * hit it; use --full to prove all)"
        );
    }
    println!();
    println!(
        "{:<12} {:>2} {:>5} | {:>9} {:>8} | {:>9} {:>8} | {:>12} {:>8} {:>4} | {:>12} {:>8} {:>4} | {:>12} {:>8} {:>4} | {:>10} | {:>5} {:>6}",
        "benchmark", "n", "orig",
        "min c", "t[s]",
        "4.1 c(Δ)", "t[s]",
        "disj c(Δ)", "t[s]", "|G'|",
        "odd c(Δ)", "t[s]", "|G'|",
        "tri c(Δ)", "t[s]", "|G'|",
        "IBM c(Δ)",
        "paper", "paperQ"
    );

    let mut measured: Vec<(usize, usize, usize)> = Vec::new(); // (orig, cmin, qiskit)
    for profile in table1_profiles() {
        if quick && profile.cnots > 14 && profile.qubits > 4 {
            continue;
        }
        let circuit = circuit_for(&profile);
        // Budget the unrestricted method only on large instances.
        let budgeted = profile.cnots > 16;
        let base = MapRequest::new(circuit.clone(), cm.clone()).with_conflict_budget(
            if full || !budgeted {
                None
            } else {
                Some(budget)
            },
        );

        let minimal = run(base.clone().with_subsets(false));
        let subsets = run(base.clone());
        let disjoint = run(base.clone().with_strategy(Strategy::DisjointQubits));
        let odd = run(base.clone().with_strategy(Strategy::OddGates));
        let triangle = run(base.clone().with_strategy(Strategy::QubitTriangle));
        let ibm = best_of_stochastic(&circuit, &cm, 5);

        // Reference for Δ: the best exact result of any column. With
        // budgets, a restricted strategy can beat the capped minimal
        // column, so the reference must span all of them.
        let cmin = [
            minimal.cost,
            subsets.cost,
            disjoint.cost,
            odd.cost,
            triangle.cost,
        ]
        .into_iter()
        .min()
        .expect("five cells");
        let star = |c: &Cell| if c.proved { "" } else { "*" };
        let delta = |c: usize| {
            if c >= cmin {
                format!("{c}(+{})", c - cmin)
            } else {
                format!("{c}(-{})", cmin - c)
            }
        };
        println!(
            "{:<12} {:>2} {:>5} | {:>8}{:>1} {:>8.2} | {:>8}{:>1} {:>8.2} | {:>12} {:>8.2} {:>4} | {:>12} {:>8.2} {:>4} | {:>12} {:>8.2} {:>4} | {:>10} | {:>5} {:>6}",
            profile.name,
            profile.qubits,
            profile.original_cost(),
            minimal.cost, star(&minimal), minimal.seconds,
            delta(subsets.cost), star(&subsets), subsets.seconds,
            delta(disjoint.cost), disjoint.seconds, disjoint.change_points,
            delta(odd.cost), odd.seconds, odd.change_points,
            delta(triangle.cost), triangle.seconds, triangle.change_points,
            delta(ibm.mapped_cost()),
            profile.paper.cmin,
            profile.paper.qiskit,
        );
        measured.push((profile.original_cost(), cmin, ibm.mapped_cost()));
    }

    // Headline averages (§5 of the paper).
    let total_overhead: f64 = measured
        .iter()
        .map(|&(_, c, q)| (q as f64 - c as f64) / c as f64)
        .sum::<f64>()
        / measured.len() as f64;
    let added_rows: Vec<(f64, f64)> = measured
        .iter()
        .filter(|&&(o, c, _)| c > o)
        .map(|&(o, c, q)| ((c - o) as f64, (q - o) as f64))
        .collect();
    let added_overhead: f64 = added_rows
        .iter()
        .map(|(amin, aq)| (aq - amin) / amin)
        .sum::<f64>()
        / added_rows.len().max(1) as f64;

    println!();
    println!(
        "IBM-style heuristic vs exact minimum — total mapped gates: {:+.0}% (paper: +45%)",
        100.0 * total_overhead
    );
    println!(
        "IBM-style heuristic vs exact minimum — added gates only:  {:+.0}% (paper: +104%, \"more than 100%\")",
        100.0 * added_overhead
    );
}
