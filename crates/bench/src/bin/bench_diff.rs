//! The CI perf gate: compares a committed `BENCH_*.json` baseline
//! against a fresh run (see [`qxmap_bench::diff`]) and exits nonzero on
//! gross regression.
//!
//! ```text
//! bench_diff BASELINE FRESH [--latency-ratio X] [--latency-floor-ms X]
//!            [--objective-ratio X] [--hit-rate-drop X] [--throughput-ratio X]
//! ```
//!
//! Exit codes: 0 — no gross regressions; 1 — regressions found (each
//! printed on its own line); 2 — the files are not comparable (missing,
//! unparsable, different schema, or a different corpus manifest — fix
//! the baseline, don't revert the PR).

use std::process::ExitCode;

use qxmap_bench::diff::{diff, Thresholds};
use qxmap_serve::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut ratio = |flag: &str| -> Result<f64, String> {
            it.next()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("{flag} needs a non-negative number"))
        };
        let parsed = match arg.as_str() {
            "--latency-ratio" => ratio("--latency-ratio").map(|v| thresholds.latency_ratio = v),
            "--latency-floor-ms" => {
                ratio("--latency-floor-ms").map(|v| thresholds.latency_floor_ms = v)
            }
            "--objective-ratio" => {
                ratio("--objective-ratio").map(|v| thresholds.objective_ratio = v)
            }
            "--hit-rate-drop" => ratio("--hit-rate-drop").map(|v| thresholds.hit_rate_drop = v),
            "--throughput-ratio" => {
                ratio("--throughput-ratio").map(|v| thresholds.throughput_ratio = v)
            }
            _ => {
                paths.push(arg);
                Ok(())
            }
        };
        if let Err(message) = parsed {
            eprintln!("bench_diff: {message}");
            return ExitCode::from(2);
        }
    }
    let [baseline_path, fresh_path] = paths[..] else {
        eprintln!("usage: bench_diff BASELINE FRESH [--latency-ratio X] [...]");
        return ExitCode::from(2);
    };

    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
    };
    let documents = load(baseline_path).and_then(|baseline| {
        let fresh = load(fresh_path)?;
        Ok((baseline, fresh))
    });
    let (baseline, fresh) = match documents {
        Ok(documents) => documents,
        Err(message) => {
            eprintln!("bench_diff: {message}");
            return ExitCode::from(2);
        }
    };

    match diff(&baseline, &fresh, &thresholds) {
        Err(message) => {
            eprintln!("bench_diff: not comparable: {message}");
            ExitCode::from(2)
        }
        Ok(regressions) if regressions.is_empty() => {
            println!("bench_diff: {fresh_path} vs {baseline_path}: no gross regressions");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!(
                "bench_diff: {} gross regression(s) vs {baseline_path}:",
                regressions.len()
            );
            for regression in &regressions {
                eprintln!("  REGRESSION: {regression}");
            }
            ExitCode::FAILURE
        }
    }
}
