//! Windowed-vs-heuristic benchmark on large circuits: maps a fixed
//! corpus of ≥50-qubit workloads from `qxmap-benchmarks` onto a
//! heavy-hex lattice through the windowed engine and every pure
//! heuristic, verifies each result against the full circuit, and emits
//! `BENCH_window.json` with per-circuit cost and latency — the perf
//! trajectory record for the window decomposition subsystem.
//!
//! Flags:
//!
//! * `--device NAME` — any [`qxmap_arch::devices::by_name`] device
//!   (default `heavy-hex-4`, 55 qubits);
//! * `--out PATH` — output path (default `BENCH_window.json`);
//! * `--deadline-ms N` — wall-clock deadline per windowed map
//!   (default 30000).

use std::time::{Duration, Instant};

use qxmap_arch::{devices, CouplingMap};
use qxmap_benchmarks::famous;
use qxmap_circuit::Circuit;
use qxmap_map::{Engine, HeuristicEngine, MapRequest};
use qxmap_window::WindowedEngine;

/// One engine's measured answer on one circuit.
struct Sample {
    objective: u64,
    millis: f64,
}

fn sample(
    engine: &dyn Engine,
    request: &MapRequest,
    circuit: &Circuit,
    cm: &CouplingMap,
) -> Sample {
    let start = Instant::now();
    let report = engine
        .run(request)
        .expect("corpus circuits map on connected devices");
    let millis = start.elapsed().as_secs_f64() * 1e3;
    report
        .verify(circuit, cm)
        .expect("every benchmark result verifies");
    Sample {
        objective: report.cost.objective,
        millis,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let device_name = flag("--device").unwrap_or_else(|| "heavy-hex-4".to_string());
    let out = flag("--out").unwrap_or_else(|| "BENCH_window.json".to_string());
    let deadline_ms: u64 = flag("--deadline-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);

    let cm = devices::by_name(&device_name).unwrap_or_else(|| {
        eprintln!("unknown device {device_name:?}; try heavy-hex-4, grid-8x8");
        std::process::exit(2);
    });

    // The fixed corpus: large circuits spanning the structures that
    // matter past the exact regime — a ladder (GHZ), a deep arithmetic
    // workload (ripple adder), a Toffoli chain (wide multi-qubit
    // interactions after decomposition), and strided disjoint QFT
    // blocks (dense local structure with no label locality, where
    // placement-aware windowing pays off).
    let corpus: Vec<Circuit> = vec![
        famous::ghz(52),
        famous::ripple_adder(24),
        famous::toffoli_chain(50, 25),
        famous::qft_blocks(9, 4),
    ];

    let mut rows: Vec<String> = Vec::new();
    let mut wins = 0usize;
    println!("windowed-vs-heuristic on {cm} (deadline {deadline_ms} ms/map)");
    for circuit in &corpus {
        let name = circuit.name().to_string();
        let request = MapRequest::new(circuit.clone(), cm.clone())
            .with_deadline(Duration::from_millis(deadline_ms));
        let windowed_engine = WindowedEngine::new();
        let windowed = sample(&windowed_engine, &request, circuit, &cm);
        let naive = sample(&HeuristicEngine::naive(), &request, circuit, &cm);
        let sabre = sample(&HeuristicEngine::sabre(), &request, circuit, &cm);
        let stochastic = sample(&HeuristicEngine::stochastic(5), &request, circuit, &cm);

        let best_heuristic = naive
            .objective
            .min(sabre.objective)
            .min(stochastic.objective);
        let beats = windowed.objective < best_heuristic;
        wins += usize::from(beats);
        println!(
            "{name:<22} orig {:>5} | windowed {:>6} ({:>8.1} ms) | naive {:>6} | sabre {:>6} | stochastic {:>6} | {}",
            circuit.original_cost(),
            windowed.objective,
            windowed.millis,
            naive.objective,
            sabre.objective,
            stochastic.objective,
            if beats { "windowed wins" } else { "heuristic wins" },
        );
        let entry = |s: &Sample| {
            format!(
                "{{\"objective\": {}, \"millis\": {:.1}}}",
                s.objective, s.millis
            )
        };
        rows.push(format!(
            "    {{\n      \"circuit\": \"{name}\",\n      \"qubits\": {},\n      \"original_cost\": {},\n      \"windowed\": {},\n      \"naive\": {},\n      \"sabre\": {},\n      \"stochastic_best_of_5\": {},\n      \"best_heuristic_objective\": {best_heuristic},\n      \"windowed_beats_best_heuristic\": {beats}\n    }}",
            circuit.num_qubits(),
            circuit.original_cost(),
            entry(&windowed),
            entry(&naive),
            entry(&sabre),
            entry(&stochastic),
        ));
    }

    let json = format!(
        "{{\n  \"device\": \"{device_name}\",\n  \"device_qubits\": {},\n  \"deadline_ms\": {deadline_ms},\n  \"windowed_wins\": {wins},\n  \"rows\": [\n{}\n  ]\n}}\n",
        cm.num_qubits(),
        rows.join(",\n"),
    );
    std::fs::write(&out, &json).expect("writable output path");
    println!("wrote {out} ({wins}/{} windowed wins)", corpus.len());
    assert!(
        wins >= 1,
        "the windowed engine must beat the best pure heuristic on at least one corpus circuit"
    );
}
