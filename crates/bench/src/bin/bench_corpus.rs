//! The perf-trajectory harness: runs the fixed, versioned
//! [`qxmap_benchmarks::corpus`] through cold and warm solves and writes
//! `BENCH_corpus.json` — per-row solve cost, cold latency, warm
//! p50/p95/p99 and winner engine, plus aggregate latency percentiles and
//! the solve-cache hit rate. Windowed rows additionally race the
//! windowed engine against every pure heuristic and emit the
//! windowed-vs-heuristic trajectory as `BENCH_window.json` (absorbing
//! the former one-off `bench_window` binary).
//!
//! Flags:
//!
//! * `--smoke` — run only the marked CI subset of the corpus;
//! * `--out PATH` — corpus artifact path (default `BENCH_corpus.json`);
//! * `--window-out PATH` — windowed artifact path (default
//!   `BENCH_window.json`);
//! * `--warm-repeats N` — warm solves per row (default 8).

use std::time::{Duration, Instant};

use qxmap_arch::{devices, CouplingMap};
use qxmap_bench::stats;
use qxmap_benchmarks::corpus::{
    corpus, manifest_hash, smoke_corpus, CorpusClass, CorpusEntry, CORPUS_SCHEMA_VERSION,
};
use qxmap_circuit::Circuit;
use qxmap_map::{map_one, Engine, HeuristicEngine, MapReport, MapRequest, SolveCache};
use qxmap_serve::Json;
use qxmap_window::WindowedEngine;

/// The artifact's own schema identity (distinct from the corpus
/// manifest's version: this one covers the JSON shape).
const ARTIFACT_SCHEMA: &str = "qxmap.bench_corpus";
const ARTIFACT_SCHEMA_VERSION: u64 = 1;

struct Flags {
    smoke: bool,
    out: String,
    window_out: String,
    warm_repeats: usize,
}

fn parse_flags() -> Flags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    Flags {
        smoke: args.iter().any(|a| a == "--smoke"),
        out: value("--out").unwrap_or_else(|| "BENCH_corpus.json".to_string()),
        window_out: value("--window-out").unwrap_or_else(|| "BENCH_window.json".to_string()),
        warm_repeats: value("--warm-repeats")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
    }
}

/// One timed engine run, verified against the full circuit.
fn timed(
    engine: &dyn Engine,
    request: &MapRequest,
    circuit: &Circuit,
    cm: &CouplingMap,
) -> (MapReport, f64) {
    let start = Instant::now();
    let report = engine
        .run(request)
        .expect("corpus circuits map on connected devices");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    report
        .verify(circuit, cm)
        .expect("every corpus result verifies");
    (report, ms)
}

/// The windowed-vs-heuristic comparison one `Windowed` row carries into
/// `BENCH_window.json`.
struct WindowRow {
    json: Json,
    beats: bool,
}

fn window_row(entry: &CorpusEntry, request: &MapRequest, cm: &CouplingMap) -> WindowRow {
    let circuit = &entry.circuit;
    let (windowed, windowed_ms) = timed(&WindowedEngine::new(), request, circuit, cm);
    let (naive, naive_ms) = timed(&HeuristicEngine::naive(), request, circuit, cm);
    let (sabre, sabre_ms) = timed(&HeuristicEngine::sabre(), request, circuit, cm);
    let (stochastic, stochastic_ms) = timed(&HeuristicEngine::stochastic(5), request, circuit, cm);
    let best_heuristic = naive
        .cost
        .objective
        .min(sabre.cost.objective)
        .min(stochastic.cost.objective);
    let beats = windowed.cost.objective < best_heuristic;
    println!(
        "  windowed {:>6} ({:>8.1} ms) | naive {:>6} | sabre {:>6} | stochastic {:>6} | {}",
        windowed.cost.objective,
        windowed_ms,
        naive.cost.objective,
        sabre.cost.objective,
        stochastic.cost.objective,
        if beats {
            "windowed wins"
        } else {
            "heuristic wins"
        },
    );
    let sample = |r: &MapReport, ms: f64| {
        Json::obj([
            ("objective", Json::num(r.cost.objective)),
            ("millis", Json::Num(stats::round_ms(ms))),
        ])
    };
    WindowRow {
        json: Json::obj([
            ("circuit", Json::str(entry.name.clone())),
            ("qubits", Json::num(circuit.num_qubits() as u64)),
            ("original_cost", Json::num(circuit.original_cost() as u64)),
            ("windowed", sample(&windowed, windowed_ms)),
            ("naive", sample(&naive, naive_ms)),
            ("sabre", sample(&sabre, sabre_ms)),
            ("stochastic_best_of_5", sample(&stochastic, stochastic_ms)),
            ("best_heuristic_objective", Json::num(best_heuristic)),
            ("windowed_beats_best_heuristic", Json::Bool(beats)),
        ]),
        beats,
    }
}

fn main() {
    let flags = parse_flags();
    let entries = if flags.smoke {
        smoke_corpus()
    } else {
        corpus()
    };
    let hash = format!("{:#018x}", manifest_hash());

    // Measurements start from a cold process-wide cache so "cold" means
    // cold regardless of what ran earlier in this process.
    SolveCache::shared().clear();
    let stats_before = SolveCache::shared().stats();
    let run_start = Instant::now();

    let mut rows: Vec<Json> = Vec::new();
    let mut window_rows: Vec<Json> = Vec::new();
    let mut windowed_wins = 0usize;
    let mut windowed_total = 0usize;
    let mut cold_samples: Vec<f64> = Vec::new();
    let mut warm_samples: Vec<f64> = Vec::new();

    println!(
        "corpus run: {} rows ({}), manifest {hash}",
        entries.len(),
        if flags.smoke { "smoke subset" } else { "full" },
    );
    for entry in &entries {
        let cm = devices::by_name(entry.device).expect("corpus devices are library names");
        let request = MapRequest::new(entry.circuit.clone(), cm.clone())
            .with_deadline(Duration::from_millis(entry.deadline_ms));

        // Cold solve: first sight of this (circuit, device, options) key.
        let start = Instant::now();
        let (cold, cold_ms) = match entry.class {
            CorpusClass::Windowed => timed(&WindowedEngine::new(), &request, &entry.circuit, &cm),
            _ => {
                let report = map_one(&request).expect("corpus circuits map");
                let ms = start.elapsed().as_secs_f64() * 1e3;
                report
                    .verify(&entry.circuit, &cm)
                    .expect("every corpus result verifies");
                (report, ms)
            }
        };
        assert!(
            !cold.served_from_cache,
            "{}: cold solve answered from cache — corpus rows must be distinct",
            entry.name
        );
        cold_samples.push(cold_ms);

        // Warm solves: repeats of the identical request. Monolithic rows
        // hit the solve cache whole; windowed rows re-stitch but probe
        // the cache per window.
        let mut row_warm: Vec<f64> = Vec::new();
        let mut warm_hits = 0usize;
        for _ in 0..flags.warm_repeats {
            let start = Instant::now();
            let report = match entry.class {
                CorpusClass::Windowed => WindowedEngine::new()
                    .run(&request)
                    .expect("corpus circuits map"),
                _ => map_one(&request).expect("corpus circuits map"),
            };
            row_warm.push(start.elapsed().as_secs_f64() * 1e3);
            warm_hits += usize::from(report.served_from_cache);
        }
        warm_samples.extend_from_slice(&row_warm);

        println!(
            "{:<28} {:>8} cold {:>9.1} ms | warm p95 {:>9.3} ms | objective {:>6} | {}",
            entry.name,
            entry.class.tag(),
            cold_ms,
            stats::percentile(&row_warm, 0.95),
            cold.cost.objective,
            cold.winner,
        );

        if entry.class == CorpusClass::Windowed {
            let row = window_row(entry, &request, &cm);
            windowed_wins += usize::from(row.beats);
            windowed_total += 1;
            window_rows.push(row.json);
        }

        rows.push(Json::obj([
            ("name", Json::str(entry.name.clone())),
            ("device", Json::str(entry.device)),
            ("class", Json::str(entry.class.tag())),
            ("qubits", Json::num(entry.circuit.num_qubits() as u64)),
            ("gates", Json::num(entry.circuit.gates().len() as u64)),
            ("deadline_ms", Json::num(entry.deadline_ms)),
            ("objective", Json::num(cold.cost.objective)),
            ("proved_optimal", Json::Bool(cold.proved_optimal)),
            ("winner", Json::str(&cold.winner)),
            ("cold_ms", Json::Num(stats::round_ms(cold_ms))),
            (
                "warm_p50_ms",
                Json::Num(stats::round_ms(stats::percentile(&row_warm, 0.50))),
            ),
            (
                "warm_p95_ms",
                Json::Num(stats::round_ms(stats::percentile(&row_warm, 0.95))),
            ),
            (
                "warm_p99_ms",
                Json::Num(stats::round_ms(stats::percentile(&row_warm, 0.99))),
            ),
            (
                "warm_hit_rate",
                Json::Num(warm_hits as f64 / flags.warm_repeats.max(1) as f64),
            ),
        ]));
    }

    let wall_ms = run_start.elapsed().as_secs_f64() * 1e3;
    let cache = SolveCache::shared().stats();
    let hits = cache.hits - stats_before.hits;
    let misses = cache.misses - stats_before.misses;
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };

    let doc = Json::obj([
        ("schema", Json::str(ARTIFACT_SCHEMA)),
        ("schema_version", Json::num(ARTIFACT_SCHEMA_VERSION)),
        (
            "corpus_schema_version",
            Json::num(u64::from(CORPUS_SCHEMA_VERSION)),
        ),
        ("manifest_hash", Json::str(hash.clone())),
        ("smoke", Json::Bool(flags.smoke)),
        ("warm_repeats", Json::num(flags.warm_repeats as u64)),
        ("rows", Json::Arr(rows)),
        (
            "aggregate",
            Json::obj([
                ("rows", Json::num(entries.len() as u64)),
                ("wall_ms", Json::Num(stats::round_ms(wall_ms))),
                ("cold", stats::latency_json(&cold_samples)),
                ("warm", stats::latency_json(&warm_samples)),
                ("cache_hit_rate", Json::Num((hit_rate * 1e3).round() / 1e3)),
                ("cache_hits", Json::num(hits)),
                ("cache_misses", Json::num(misses)),
            ]),
        ),
    ]);
    std::fs::write(&flags.out, stats::pretty(&doc)).expect("writable output path");
    println!(
        "wrote {} ({} rows, cache hit rate {hit_rate:.3})",
        flags.out,
        entries.len()
    );

    if !window_rows.is_empty() {
        let window_doc = Json::obj([
            ("schema", Json::str("qxmap.bench_window")),
            ("schema_version", Json::num(1)),
            ("manifest_hash", Json::str(hash)),
            ("device", Json::str("heavy-hex-4")),
            ("windowed_wins", Json::num(windowed_wins as u64)),
            ("rows", Json::Arr(window_rows)),
        ]);
        std::fs::write(&flags.window_out, stats::pretty(&window_doc))
            .expect("writable output path");
        println!(
            "wrote {} ({windowed_wins}/{windowed_total} windowed wins)",
            flags.window_out
        );
        // The full corpus carries the workloads windowing was built for,
        // so somewhere it must win; the one-row smoke subset is too
        // small to make that a hard promise.
        assert!(
            flags.smoke || windowed_wins >= 1,
            "the windowed engine must beat the best pure heuristic on at least one corpus circuit"
        );
    }
}
