//! The perf-trajectory harness: runs the fixed, versioned
//! [`qxmap_benchmarks::corpus`] through cold and warm solves and writes
//! `BENCH_corpus.json` — per-row solve cost, cold latency, warm
//! p50/p95/p99, winner engine and the cold solve's per-phase trace
//! breakdown, plus aggregate latency percentiles and the solve-cache
//! hit rate. Windowed rows additionally race the
//! windowed engine against every pure heuristic and emit the
//! windowed-vs-heuristic trajectory as `BENCH_window.json` (absorbing
//! the former one-off `bench_window` binary).
//!
//! The artifact also carries an `ingest` section: the largest corpus
//! circuits tiled to MB-scale payloads and timed through every ingest
//! path — sequential text parse, parallel text parse, QXBC binary
//! decode, and the two skeleton-only variants — so the fast-ingest
//! speedup is a diffed trajectory, not a one-off claim.
//!
//! Flags:
//!
//! * `--smoke` — run only the marked CI subset of the corpus;
//! * `--out PATH` — corpus artifact path (default `BENCH_corpus.json`);
//! * `--window-out PATH` — windowed artifact path (default
//!   `BENCH_window.json`);
//! * `--warm-repeats N` — warm solves per row (default 8).

use std::time::{Duration, Instant};

use qxmap_arch::{devices, CouplingMap};
use qxmap_bench::stats;
use qxmap_benchmarks::corpus::{
    corpus, manifest_hash, smoke_corpus, CorpusClass, CorpusEntry, CORPUS_SCHEMA_VERSION,
};
use qxmap_circuit::{Circuit, CircuitSkeleton};
use qxmap_core::trace::SpanRecorder;
use qxmap_map::{map_one, Engine, HeuristicEngine, MapReport, MapRequest, SolveCache};
use qxmap_serve::Json;
use qxmap_window::WindowedEngine;

/// The artifact's own schema identity (distinct from the corpus
/// manifest's version: this one covers the JSON shape).
const ARTIFACT_SCHEMA: &str = "qxmap.bench_corpus";
const ARTIFACT_SCHEMA_VERSION: u64 = 1;

struct Flags {
    smoke: bool,
    out: String,
    window_out: String,
    warm_repeats: usize,
}

fn parse_flags() -> Flags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    Flags {
        smoke: args.iter().any(|a| a == "--smoke"),
        out: value("--out").unwrap_or_else(|| "BENCH_corpus.json".to_string()),
        window_out: value("--window-out").unwrap_or_else(|| "BENCH_window.json".to_string()),
        warm_repeats: value("--warm-repeats")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
    }
}

/// One timed engine run, verified against the full circuit.
fn timed(
    engine: &dyn Engine,
    request: &MapRequest,
    circuit: &Circuit,
    cm: &CouplingMap,
) -> (MapReport, f64) {
    let start = Instant::now();
    let report = engine
        .run(request)
        .expect("corpus circuits map on connected devices");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    report
        .verify(circuit, cm)
        .expect("every corpus result verifies");
    (report, ms)
}

/// The windowed-vs-heuristic comparison one `Windowed` row carries into
/// `BENCH_window.json`.
struct WindowRow {
    json: Json,
    beats: bool,
}

fn window_row(entry: &CorpusEntry, request: &MapRequest, cm: &CouplingMap) -> WindowRow {
    let circuit = &entry.circuit;
    let (windowed, windowed_ms) = timed(&WindowedEngine::new(), request, circuit, cm);
    let (naive, naive_ms) = timed(&HeuristicEngine::naive(), request, circuit, cm);
    let (sabre, sabre_ms) = timed(&HeuristicEngine::sabre(), request, circuit, cm);
    let (stochastic, stochastic_ms) = timed(&HeuristicEngine::stochastic(5), request, circuit, cm);
    let best_heuristic = naive
        .cost
        .objective
        .min(sabre.cost.objective)
        .min(stochastic.cost.objective);
    let beats = windowed.cost.objective < best_heuristic;
    println!(
        "  windowed {:>6} ({:>8.1} ms) | naive {:>6} | sabre {:>6} | stochastic {:>6} | {}",
        windowed.cost.objective,
        windowed_ms,
        naive.cost.objective,
        sabre.cost.objective,
        stochastic.cost.objective,
        if beats {
            "windowed wins"
        } else {
            "heuristic wins"
        },
    );
    let sample = |r: &MapReport, ms: f64| {
        Json::obj([
            ("objective", Json::num(r.cost.objective)),
            ("millis", Json::Num(stats::round_ms(ms))),
        ])
    };
    WindowRow {
        json: Json::obj([
            ("circuit", Json::str(entry.name.clone())),
            ("qubits", Json::num(circuit.num_qubits() as u64)),
            ("original_cost", Json::num(circuit.original_cost() as u64)),
            ("windowed", sample(&windowed, windowed_ms)),
            ("naive", sample(&naive, naive_ms)),
            ("sabre", sample(&sabre, sabre_ms)),
            ("stochastic_best_of_5", sample(&stochastic, stochastic_ms)),
            ("best_heuristic_objective", Json::num(best_heuristic)),
            ("windowed_beats_best_heuristic", Json::Bool(beats)),
        ]),
        beats,
    }
}

/// The cold solve's per-phase breakdown: every recorded span path with
/// its total milliseconds (paths recurring across minimization steps or
/// windows are summed), straight from the solve's own trace. Rows carry
/// it so perf PRs can attribute a cold-latency shift to the phase that
/// moved; [`bench_diff`](../diff.rs) treats an absent breakdown (a
/// baseline predating this section) as nothing to compare.
fn phases_json(report: &MapReport, into: &mut Vec<(String, f64)>) -> Json {
    let mut totals: Vec<(String, u64)> = Vec::new();
    if let Some(trace) = &report.trace {
        for span in &trace.spans {
            match totals.iter_mut().find(|(path, _)| *path == span.path) {
                Some((_, us)) => *us += span.duration_us,
                None => totals.push((span.path.clone(), span.duration_us)),
            }
        }
    }
    Json::Obj(
        totals
            .into_iter()
            .map(|(path, us)| {
                let ms = us as f64 / 1e3;
                match into.iter_mut().find(|(p, _)| *p == path) {
                    Some((_, total)) => *total += ms,
                    None => into.push((path.clone(), ms)),
                }
                (path, Json::Num(stats::round_ms(ms)))
            })
            .collect(),
    )
}

/// Timing repeats per ingest path; rows record the minimum, because
/// ingest is deterministic CPU work and the minimum rejects scheduler
/// noise.
const INGEST_REPEATS: usize = 3;

/// Tile target for ingest workloads — enough gates that the QASM text
/// is MB-scale and per-call overheads vanish from the measurement.
const INGEST_TARGET_GATES: usize = 100_000;

/// The `circuit`'s gate list repeated cyclically to at least `target`
/// gates on the same registers: a corpus circuit, tiled, as a realistic
/// large ingest payload.
fn tiled(circuit: &Circuit, target: usize) -> Circuit {
    let mut big = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    while big.gates().len() < target {
        big.extend(circuit.gates().iter().cloned());
    }
    big
}

fn best_ms(mut work: impl FnMut()) -> f64 {
    (0..INGEST_REPEATS)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// One fast-ingest trajectory row, plus the row's headline speedup: the
/// sequential text parse against the best of the new ingest paths
/// (parallel text parse or QXBC decode) for the same circuit.
fn ingest_row(source: &str, circuit: &Circuit) -> (Json, f64) {
    let big = tiled(circuit, INGEST_TARGET_GATES);
    let text = qxmap_qasm::to_qasm(&big);
    let bytes = qxmap_qasm::encode_qxbc(&big);

    // Every ingest path must land on the same canonical skeleton before
    // any of them is worth timing.
    let fingerprint = CircuitSkeleton::of(&big).fingerprint();
    assert_eq!(
        qxmap_qasm::parse_skeleton(&text).unwrap().fingerprint(),
        fingerprint,
        "{source}: text skeleton diverged"
    );
    assert_eq!(
        qxmap_qasm::decode_qxbc_skeleton(&bytes)
            .unwrap()
            .fingerprint(),
        fingerprint,
        "{source}: QXBC skeleton diverged"
    );

    let parse_seq_ms = best_ms(|| {
        qxmap_qasm::to_circuit(&qxmap_qasm::parse_program(&text).unwrap()).unwrap();
    });
    let parse_par_ms = best_ms(|| {
        qxmap_qasm::to_circuit(&qxmap_qasm::parse_program_parallel(&text).unwrap()).unwrap();
    });
    let skeleton_ms = best_ms(|| {
        qxmap_qasm::parse_skeleton(&text).unwrap();
    });
    let qxbc_decode_ms = best_ms(|| {
        qxmap_qasm::decode_qxbc(&bytes).unwrap();
    });
    let qxbc_skeleton_ms = best_ms(|| {
        qxmap_qasm::decode_qxbc_skeleton(&bytes).unwrap();
    });

    let mb = text.len() as f64 / (1024.0 * 1024.0);
    let mb_per_s = |ms: f64| ((mb / (ms / 1e3)) * 10.0).round() / 10.0;
    let speedup = parse_seq_ms / parse_par_ms.min(qxbc_decode_ms);
    println!(
        "ingest {:<22} {:>6.2} MiB | seq {:>7.1} ms ({:>6.1} MB/s) | par {:>7.1} ms | \
         qxbc {:>7.1} ms | skeleton {:>7.1} ms | speedup {:>5.1}x",
        source,
        mb,
        parse_seq_ms,
        mb_per_s(parse_seq_ms),
        parse_par_ms,
        qxbc_decode_ms,
        skeleton_ms,
        speedup,
    );
    let row = Json::obj([
        ("name", Json::str(format!("ingest_{source}"))),
        ("source", Json::str(source)),
        ("qubits", Json::num(big.num_qubits() as u64)),
        ("gates", Json::num(big.gates().len() as u64)),
        ("qasm_bytes", Json::num(text.len() as u64)),
        ("qxbc_bytes", Json::num(bytes.len() as u64)),
        ("parse_seq_ms", Json::Num(stats::round_ms(parse_seq_ms))),
        ("parse_par_ms", Json::Num(stats::round_ms(parse_par_ms))),
        ("skeleton_ms", Json::Num(stats::round_ms(skeleton_ms))),
        ("qxbc_decode_ms", Json::Num(stats::round_ms(qxbc_decode_ms))),
        (
            "qxbc_skeleton_ms",
            Json::Num(stats::round_ms(qxbc_skeleton_ms)),
        ),
        ("seq_mb_per_s", Json::Num(mb_per_s(parse_seq_ms))),
        ("par_mb_per_s", Json::Num(mb_per_s(parse_par_ms))),
        ("speedup", Json::Num((speedup * 10.0).round() / 10.0)),
    ]);
    (row, speedup)
}

fn main() {
    let flags = parse_flags();
    let entries = if flags.smoke {
        smoke_corpus()
    } else {
        corpus()
    };
    let hash = format!("{:#018x}", manifest_hash());

    // Measurements start from a cold process-wide cache so "cold" means
    // cold regardless of what ran earlier in this process.
    SolveCache::shared().clear();
    let stats_before = SolveCache::shared().stats();
    let run_start = Instant::now();

    let mut rows: Vec<Json> = Vec::new();
    let mut window_rows: Vec<Json> = Vec::new();
    let mut windowed_wins = 0usize;
    let mut windowed_total = 0usize;
    let mut cold_samples: Vec<f64> = Vec::new();
    let mut warm_samples: Vec<f64> = Vec::new();
    let mut phase_totals: Vec<(String, f64)> = Vec::new();

    println!(
        "corpus run: {} rows ({}), manifest {hash}",
        entries.len(),
        if flags.smoke { "smoke subset" } else { "full" },
    );
    for entry in &entries {
        let cm = devices::by_name(entry.device).expect("corpus devices are library names");
        let request = MapRequest::new(entry.circuit.clone(), cm.clone())
            .with_deadline(Duration::from_millis(entry.deadline_ms));

        // Cold solve: first sight of this (circuit, device, options) key.
        // It runs traced — a handful of spans over a millisecond-scale
        // solve is noise — so the row can carry its per-phase breakdown;
        // the microsecond-scale warm repeats below stay untraced.
        let traced = request.clone().with_trace(SpanRecorder::new());
        let start = Instant::now();
        let (cold, cold_ms) = match entry.class {
            CorpusClass::Windowed => timed(&WindowedEngine::new(), &traced, &entry.circuit, &cm),
            _ => {
                let report = map_one(&traced).expect("corpus circuits map");
                let ms = start.elapsed().as_secs_f64() * 1e3;
                report
                    .verify(&entry.circuit, &cm)
                    .expect("every corpus result verifies");
                (report, ms)
            }
        };
        assert!(
            !cold.served_from_cache,
            "{}: cold solve answered from cache — corpus rows must be distinct",
            entry.name
        );
        cold_samples.push(cold_ms);

        // Warm solves: repeats of the identical request. Monolithic rows
        // hit the solve cache whole; windowed rows re-stitch but probe
        // the cache per window.
        let mut row_warm: Vec<f64> = Vec::new();
        let mut warm_hits = 0usize;
        for _ in 0..flags.warm_repeats {
            let start = Instant::now();
            let report = match entry.class {
                CorpusClass::Windowed => WindowedEngine::new()
                    .run(&request)
                    .expect("corpus circuits map"),
                _ => map_one(&request).expect("corpus circuits map"),
            };
            row_warm.push(start.elapsed().as_secs_f64() * 1e3);
            warm_hits += usize::from(report.served_from_cache);
        }
        warm_samples.extend_from_slice(&row_warm);

        println!(
            "{:<28} {:>8} cold {:>9.1} ms | warm p95 {:>9.3} ms | objective {:>6} | {}",
            entry.name,
            entry.class.tag(),
            cold_ms,
            stats::percentile(&row_warm, 0.95),
            cold.cost.objective,
            cold.winner,
        );

        if entry.class == CorpusClass::Windowed {
            let row = window_row(entry, &request, &cm);
            windowed_wins += usize::from(row.beats);
            windowed_total += 1;
            window_rows.push(row.json);
        }

        rows.push(Json::obj([
            ("name", Json::str(entry.name.clone())),
            ("device", Json::str(entry.device)),
            ("class", Json::str(entry.class.tag())),
            ("qubits", Json::num(entry.circuit.num_qubits() as u64)),
            ("gates", Json::num(entry.circuit.gates().len() as u64)),
            ("deadline_ms", Json::num(entry.deadline_ms)),
            ("objective", Json::num(cold.cost.objective)),
            ("proved_optimal", Json::Bool(cold.proved_optimal)),
            ("winner", Json::str(&cold.winner)),
            ("cold_ms", Json::Num(stats::round_ms(cold_ms))),
            (
                "warm_p50_ms",
                Json::Num(stats::round_ms(stats::percentile(&row_warm, 0.50))),
            ),
            (
                "warm_p95_ms",
                Json::Num(stats::round_ms(stats::percentile(&row_warm, 0.95))),
            ),
            (
                "warm_p99_ms",
                Json::Num(stats::round_ms(stats::percentile(&row_warm, 0.99))),
            ),
            (
                "warm_hit_rate",
                Json::Num(warm_hits as f64 / flags.warm_repeats.max(1) as f64),
            ),
            ("phases", phases_json(&cold, &mut phase_totals)),
        ]));
    }

    // Fast-ingest rows: tile the two gate-heaviest circuits of the
    // *full* corpus (independent of `--smoke`, so row names always
    // intersect the committed baseline's) and time every ingest path.
    let mut ingest_sources = corpus();
    ingest_sources.sort_by_key(|e| std::cmp::Reverse(e.circuit.gates().len()));
    let mut ingest_rows: Vec<Json> = Vec::new();
    let mut min_speedup = f64::INFINITY;
    let mut seen: Vec<&str> = Vec::new();
    for entry in &ingest_sources {
        // Some circuits appear on two devices; ingest cares only about
        // the payload, so each circuit is measured once.
        if seen.contains(&entry.circuit.name()) {
            continue;
        }
        seen.push(entry.circuit.name());
        let (row, speedup) = ingest_row(entry.circuit.name(), &entry.circuit);
        ingest_rows.push(row);
        min_speedup = min_speedup.min(speedup);
        if ingest_rows.len() == 2 {
            break;
        }
    }
    // The tentpole's headline: on MB-scale payloads the best new ingest
    // path (parallel parse or QXBC decode) must at least double the
    // sequential text parser's throughput. Smoke runs on shared CI
    // runners report the numbers without making them a hard promise.
    assert!(
        flags.smoke || min_speedup >= 2.0,
        "fast ingest must at least double throughput on the largest corpus circuits \
         (measured {min_speedup:.2}x)"
    );

    let wall_ms = run_start.elapsed().as_secs_f64() * 1e3;
    let cache = SolveCache::shared().stats();
    let hits = cache.hits - stats_before.hits;
    let misses = cache.misses - stats_before.misses;
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };

    let doc = Json::obj([
        ("schema", Json::str(ARTIFACT_SCHEMA)),
        ("schema_version", Json::num(ARTIFACT_SCHEMA_VERSION)),
        (
            "corpus_schema_version",
            Json::num(u64::from(CORPUS_SCHEMA_VERSION)),
        ),
        ("manifest_hash", Json::str(hash.clone())),
        ("smoke", Json::Bool(flags.smoke)),
        ("warm_repeats", Json::num(flags.warm_repeats as u64)),
        ("rows", Json::Arr(rows)),
        ("ingest", Json::Arr(ingest_rows)),
        (
            "aggregate",
            Json::obj([
                ("rows", Json::num(entries.len() as u64)),
                ("wall_ms", Json::Num(stats::round_ms(wall_ms))),
                ("cold", stats::latency_json(&cold_samples)),
                ("warm", stats::latency_json(&warm_samples)),
                ("cache_hit_rate", Json::Num((hit_rate * 1e3).round() / 1e3)),
                ("cache_hits", Json::num(hits)),
                ("cache_misses", Json::num(misses)),
                (
                    "phases",
                    Json::Obj(
                        phase_totals
                            .into_iter()
                            .map(|(path, ms)| (path, Json::Num(stats::round_ms(ms))))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);
    std::fs::write(&flags.out, stats::pretty(&doc)).expect("writable output path");
    println!(
        "wrote {} ({} rows, cache hit rate {hit_rate:.3})",
        flags.out,
        entries.len()
    );

    if !window_rows.is_empty() {
        let window_doc = Json::obj([
            ("schema", Json::str("qxmap.bench_window")),
            ("schema_version", Json::num(1)),
            ("manifest_hash", Json::str(hash)),
            ("device", Json::str("heavy-hex-4")),
            ("windowed_wins", Json::num(windowed_wins as u64)),
            ("rows", Json::Arr(window_rows)),
        ]);
        std::fs::write(&flags.window_out, stats::pretty(&window_doc))
            .expect("writable output path");
        println!(
            "wrote {} ({windowed_wins}/{windowed_total} windowed wins)",
            flags.window_out
        );
        // The full corpus carries the workloads windowing was built for,
        // so somewhere it must win; the one-row smoke subset is too
        // small to make that a hard promise.
        assert!(
            flags.smoke || windowed_wins >= 1,
            "the windowed engine must beat the best pure heuristic on at least one corpus circuit"
        );
    }
}
