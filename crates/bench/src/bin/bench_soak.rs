//! The serving-tier soak harness: boots the real [`qxmap_serve::Server`]
//! on a loopback TCP listener, drives `k` concurrent client connections
//! with a deterministic mix of cold, warm, windowed and invalid traffic,
//! then snapshots, restarts, and measures the warm-restart hit. A warm
//! phase drives identical cache-hit traffic in lockstep and in
//! pipelined mode to measure the pipelining throughput win. The daemon
//! runs with its observability layer live — windowed traffic is traced,
//! slowlog ring admissions append to a `--trace-log` JSONL file whose
//! lines must parse, and the untraced warm `handle_line` path is
//! measured against a trace-off daemon (observability must cost it
//! under 5%). Writes `BENCH_serve.json` — throughput, client-observed
//! latency percentiles, the daemon's own histogram/deadline/overload
//! counters, the pipelined speedup, the warm-restart latency, and the
//! trace-overhead probe.
//!
//! Traffic is deterministic per `--seed` (request kinds and cold-request
//! cache keys come from a SplitMix64 stream), but thread interleaving is
//! not: counters like overload rejections vary run to run, which is why
//! `bench_diff` gates only on throughput, percentiles and the
//! warm-restart hit.
//!
//! Flags:
//!
//! * `--smoke` — shorter run for CI (fewer clients and requests);
//! * `--out PATH` — artifact path (default `BENCH_serve.json`);
//! * `--clients K` / `--per-client N` / `--seed S` — load shape.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qxmap_bench::stats;
use qxmap_benchmarks::corpus::{manifest_hash, smoke_corpus, CorpusClass};
use qxmap_benchmarks::synthetic_circuit;
use qxmap_map::SolveCache;
use qxmap_serve::{Json, Server, ServerConfig};

/// SplitMix64: deterministic, seedable, and three lines — the harness
/// needs reproducible schedules, not statistical quality.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

struct Flags {
    smoke: bool,
    out: String,
    clients: usize,
    per_client: usize,
    seed: u64,
}

fn parse_flags() -> Flags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let parsed =
        |name: &str, default: usize| value(name).and_then(|v| v.parse().ok()).unwrap_or(default);
    Flags {
        smoke,
        out: value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string()),
        clients: parsed("--clients", if smoke { 4 } else { 6 }),
        per_client: parsed("--per-client", if smoke { 10 } else { 30 }),
        seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(7),
    }
}

/// What one request line did, from the client's side.
#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    Result,
    CacheHit,
    Rejected,
    /// Admitted, but its deadline expired in the queue and the EDF
    /// scheduler shed it before dispatch — legitimate under overload.
    Shed,
    Error,
}

struct Sample {
    outcome: Outcome,
    ms: f64,
}

/// One request over an open connection; panics on transport failure
/// (the soak's whole point is that the daemon never drops a reply).
fn round_trip(writer: &mut TcpStream, reader: &mut impl BufRead, line: &str) -> (Json, f64) {
    let start = Instant::now();
    writeln!(writer, "{line}").expect("daemon accepts writes");
    writer.flush().expect("daemon accepts writes");
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .expect("daemon answers every request");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!response.is_empty(), "daemon dropped an in-flight reply");
    (Json::parse(&response).expect("daemon speaks JSON"), ms)
}

/// The warm pool: requests repeated across clients so the solve cache
/// answers most of them. Built from the smoke corpus's monolithic rows —
/// real Table 1 shapes on real devices. Rows past the exact regime are
/// excluded: the server would auto-select the windowed engine for them
/// (best-effort out-of-regime requests), and windowed answers bypass
/// the whole-circuit cache — they can never be warm.
fn warm_pool() -> Vec<String> {
    smoke_corpus()
        .iter()
        .filter(|e| {
            let device_qubits = qxmap_arch::devices::by_name(e.device)
                .map(|cm| cm.num_qubits())
                .unwrap_or(usize::MAX);
            e.class != CorpusClass::Windowed && device_qubits <= qxmap_core::MAX_EXACT_QUBITS
        })
        .map(|e| {
            format!(
                "{{\"type\":\"map\",\"qasm\":{},\"device\":\"{}\",\"deadline_ms\":{}}}",
                Json::str(qxmap_qasm::to_qasm(&e.circuit)),
                e.device,
                e.deadline_ms,
            )
        })
        .collect()
}

/// A cold request: the warm pool's first circuit under a never-repeated
/// `seed`, which is part of the solve-cache key — guaranteed miss, same
/// solve shape every time.
fn cold_line(qasm: &str, unique_seed: u64) -> String {
    format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx5\",\"deadline_ms\":10000,\"seed\":{unique_seed}}}",
        Json::str(qasm),
    )
}

/// A windowed request: a 10-qubit CNOT ladder on linear-12 — past the
/// exact regime, so it slices and stitches, but small enough to keep the
/// soak short. Traced: windowed solves are the soak's slowest class, so
/// their slowlog ring admissions exercise the `--trace-log` JSONL path
/// with full timelines attached.
fn windowed_line() -> String {
    let mut qasm = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[10];\n");
    for q in 0..9 {
        qasm.push_str(&format!("cx q[{}], q[{}];\n", q, q + 1));
    }
    format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"linear-12\",\
         \"windowed\":{{\"max_window_qubits\":6}},\"trace\":true,\"deadline_ms\":30000}}",
        Json::str(qasm)
    )
}

/// One timed run of warm-hit `handle_line` calls (µs per request),
/// in-process so the number is the daemon's own hot path with no socket
/// in the way. Callers interleave runs across servers and keep each
/// server's minimum — the minimum rejects scheduler noise, and the
/// interleaving denies either server a systematically quieter slot.
fn warm_handle_run_us(server: &Server, line: &str, iters: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let _ = server.handle_line(line);
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Primes a server for the overhead probe: asserts the probe line is a
/// warm hit, then pumps enough requests that the slowlog ring is full
/// of equal-latency entries (so steady-state probing admits nothing and
/// the trace log sees no per-request I/O — the same steady state a
/// long-running daemon serves from).
fn prime_warm_probe(server: &Server, line: &str) {
    let first = server.handle_line(line);
    assert!(
        first.response().contains("\"served_from_cache\":true"),
        "the overhead probe must be a warm hit: {}",
        first.response()
    );
    for _ in 0..200 {
        let _ = server.handle_line(line);
    }
}

/// Invalid traffic: the daemon must answer each with a structured error
/// without disturbing its neighbors.
const INVALID_LINES: &[&str] = &[
    "this is not json",
    "{\"type\":\"map\"}",
    "{\"type\":\"map\",\"qasm\":\"OPENQASM 2.0;\",\"device\":\"atlantis\"}",
    "{\"type\":\"frobnicate\"}",
];

/// Warm-only throughput in one of the two client modes, against an
/// already-warmed daemon: every request is a cache hit, so the only
/// variable is the wire discipline. Serial mode waits for each response
/// before sending the next line (one round trip per request); pipelined
/// mode streams every line from a writer thread and drains the
/// responses as they come back. The ratio of the two is the pipelining
/// win recorded in `BENCH_serve.json`.
fn warm_throughput(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    warm: &Arc<Vec<String>>,
    pipelined: bool,
) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let warm = Arc::clone(warm);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("daemon is listening");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("socket option");
                stream.set_nodelay(true).expect("socket option");
                let mut writer = stream.try_clone().expect("socket clone");
                let mut reader = BufReader::new(stream);
                // Both modes validate identically (a cheap substring
                // check): the phase measures the wire discipline, not
                // client-side JSON parsing.
                let ok = |response: &str| {
                    assert!(
                        response.contains("\"type\":\"result\""),
                        "warm traffic never errors: {response}"
                    );
                };
                if pipelined {
                    // Drain responses in the fewest reads, too.
                    let mut reader = BufReader::with_capacity(1 << 20, reader.into_inner());
                    let pool = Arc::clone(&warm);
                    let writer_thread = std::thread::spawn(move || {
                        // A pipelined client batches its writes too —
                        // that's the point of not waiting per request.
                        // The buffer holds the whole volley: draining
                        // it in the fewest writes the socket allows
                        // keeps the single-core scheduler from locking
                        // client and daemon into per-chunk lockstep.
                        let mut writer = std::io::BufWriter::with_capacity(1 << 20, writer);
                        for i in 0..per_client {
                            let line = &pool[(client + i) % pool.len()];
                            writeln!(writer, "{line}").expect("daemon accepts writes");
                        }
                        writer.flush().expect("daemon accepts writes");
                    });
                    for _ in 0..per_client {
                        let mut response = String::new();
                        reader
                            .read_line(&mut response)
                            .expect("daemon answers every request");
                        ok(&response);
                    }
                    writer_thread.join().expect("writer thread finishes");
                } else {
                    for i in 0..per_client {
                        let line = &warm[(client + i) % warm.len()];
                        writeln!(writer, "{line}").expect("daemon accepts writes");
                        writer.flush().expect("daemon accepts writes");
                        let mut response = String::new();
                        reader
                            .read_line(&mut response)
                            .expect("daemon answers every request");
                        ok(&response);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client threads do not panic");
    }
    (clients * per_client) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let flags = parse_flags();
    let dir = std::env::temp_dir().join(format!("qxmap-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("writable temp dir");
    let snapshot = dir.join("soak.qxsnap");
    let _ = std::fs::remove_file(&snapshot);
    let trace_log = dir.join("soak-trace.jsonl");
    let _ = std::fs::remove_file(&trace_log);

    // Cold process-wide cache: the soak measures the serving tier, not
    // leftovers from this process.
    SolveCache::shared().clear();

    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        batch_max: 4,
        snapshot: Some(snapshot.clone()),
        trace_log: Some(trace_log.clone()),
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound address");
    let accept_loop = std::thread::spawn({
        let server = Arc::clone(&server);
        move || server.serve_tcp(listener)
    });

    let warm = Arc::new(warm_pool());
    let cold_qasm = Arc::new(qxmap_qasm::to_qasm(&synthetic_circuit(6, 10, 16, 0xACE)));
    let windowed = Arc::new(windowed_line());
    println!(
        "soak: {} clients x {} requests against {addr} (seed {})",
        flags.clients, flags.per_client, flags.seed
    );

    let soak_start = Instant::now();
    let clients: Vec<_> = (0..flags.clients)
        .map(|client| {
            let warm = Arc::clone(&warm);
            let cold_qasm = Arc::clone(&cold_qasm);
            let windowed = Arc::clone(&windowed);
            let per_client = flags.per_client;
            let seed = flags.seed;
            std::thread::spawn(move || {
                let mut rng = Rng(seed ^ (client as u64).wrapping_mul(0x9E37_79B9));
                let stream = TcpStream::connect(addr).expect("daemon is listening");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("socket option");
                stream.set_nodelay(true).expect("socket option");
                let mut writer = stream.try_clone().expect("socket clone");
                let mut reader = BufReader::new(stream);
                let mut samples: Vec<Sample> = Vec::with_capacity(per_client);
                for request in 0..per_client {
                    let roll = rng.next() % 100;
                    let (line, invalid) = if roll < 50 {
                        (warm[(rng.next() as usize) % warm.len()].clone(), false)
                    } else if roll < 75 {
                        // Masked to 48 bits: the protocol carries
                        // integers as f64 and rejects values past 2^53.
                        (cold_line(&cold_qasm, rng.next() & 0xFFFF_FFFF_FFFF), false)
                    } else if roll < 85 {
                        ((*windowed).clone(), false)
                    } else {
                        (
                            INVALID_LINES[(client + request) % INVALID_LINES.len()].to_string(),
                            true,
                        )
                    };
                    let (response, ms) = round_trip(&mut writer, &mut reader, &line);
                    let outcome = match response.get("type").and_then(Json::as_str) {
                        Some("result") => {
                            if response.get("served_from_cache").and_then(Json::as_bool)
                                == Some(true)
                            {
                                Outcome::CacheHit
                            } else {
                                Outcome::Result
                            }
                        }
                        Some("error") => {
                            let code = response.get("code").and_then(Json::as_str);
                            if code == Some("overloaded") {
                                Outcome::Rejected
                            } else if code == Some("deadline_expired") {
                                Outcome::Shed
                            } else {
                                // Only the deliberately malformed lines
                                // may error: a structured failure on
                                // valid traffic is a harness bug worth
                                // stopping the soak for.
                                assert!(invalid, "valid request errored: {response}");
                                Outcome::Error
                            }
                        }
                        other => panic!("unexpected response type {other:?}"),
                    };
                    samples.push(Sample { outcome, ms });
                }
                samples
            })
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    for client in clients {
        samples.extend(client.join().expect("client threads do not panic"));
    }
    let wall_s = soak_start.elapsed().as_secs_f64();

    // The pipelining win, measured apples-to-apples: a small primed
    // request (so parsing and solving cost nothing — every answer is a
    // microsecond cache hit and the wire discipline is the only
    // variable), driven serially (lockstep round trips) and pipelined
    // (streamed requests, responses drained as they complete).
    let ping = Arc::new(vec![format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\",\"deadline_ms\":30000}}",
        Json::str(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n\
             cx q[0], q[1];\ncx q[1], q[2];\ncx q[0], q[2];\n"
        )
    )]);
    {
        let stream = TcpStream::connect(addr).expect("daemon is listening");
        let mut writer = stream.try_clone().expect("socket clone");
        let mut reader = BufReader::new(stream);
        let (r, _) = round_trip(&mut writer, &mut reader, &ping[0]);
        assert_eq!(r.get("type").and_then(Json::as_str), Some("result"));
    }
    // One connection per mode: pipelining is a per-connection wire
    // discipline, and a pool of concurrent lockstep clients would hide
    // the very round-trip stalls the phase exists to measure. Modes
    // alternate and each keeps its best of three runs — one warm run is
    // tens of milliseconds, well inside scheduler-noise territory, and
    // the best run is the one least perturbed by it.
    let warm_per_client = flags.per_client * 50;
    let mut serial_rps = f64::MIN;
    let mut pipelined_rps = f64::MIN;
    for _ in 0..3 {
        serial_rps = serial_rps.max(warm_throughput(addr, 1, warm_per_client, &ping, false));
        pipelined_rps = pipelined_rps.max(warm_throughput(addr, 1, warm_per_client, &ping, true));
    }
    let speedup = pipelined_rps / serial_rps;
    println!(
        "warm phase: serial {serial_rps:.0} req/s, pipelined {pipelined_rps:.0} req/s \
         ({speedup:.2}x)"
    );

    // The daemon's own view, over the same wire.
    let metrics_stream = TcpStream::connect(addr).expect("daemon is listening");
    let mut metrics_writer = metrics_stream.try_clone().expect("socket clone");
    let mut metrics_reader = BufReader::new(metrics_stream);
    let (metrics, _) = round_trip(
        &mut metrics_writer,
        &mut metrics_reader,
        "{\"type\":\"metrics\"}",
    );
    let (ack, _) = round_trip(
        &mut metrics_writer,
        &mut metrics_reader,
        "{\"type\":\"shutdown\"}",
    );
    assert_eq!(ack.get("type").and_then(Json::as_str), Some("ok"), "{ack}");
    accept_loop
        .join()
        .expect("accept loop exits on shutdown")
        .expect("accept loop exits cleanly");
    let persisted = server
        .finish()
        .expect("snapshot write succeeds")
        .expect("snapshot path configured");
    assert!(persisted > 0, "the soak must leave a warm snapshot behind");

    // The trace log the daemon left behind: one parseable JSON object
    // per line (slowlog ring admissions), the slow ones carrying full
    // timelines from the traced windowed requests.
    let logged = std::fs::read_to_string(&trace_log).expect("trace log written");
    let mut trace_log_lines = 0u64;
    let mut trace_log_traced = 0u64;
    for line in logged.lines() {
        let entry =
            Json::parse(line).unwrap_or_else(|e| panic!("trace log line is not JSON: {e}\n{line}"));
        assert!(
            entry.get("latency_us").and_then(Json::as_u64).is_some(),
            "trace log entries carry latency_us: {line}"
        );
        trace_log_traced += u64::from(entry.get("trace").is_some());
        trace_log_lines += 1;
    }
    assert!(
        trace_log_lines > 0,
        "slowlog ring admissions must reach the trace log"
    );

    // Warm restart: a fresh server over the snapshot answers a repeated
    // request from cache.
    SolveCache::shared().clear();
    let restarted = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        batch_max: 1,
        snapshot: Some(snapshot.clone()),
        ..ServerConfig::default()
    });
    let imported = restarted
        .warm_start()
        .expect("snapshot re-imports")
        .snapshot_entries;
    let restart_start = Instant::now();
    let handled = restarted.handle_line(&warm[0]);
    let restart_ms = restart_start.elapsed().as_secs_f64() * 1e3;
    let response = Json::parse(handled.response()).expect("response is JSON");
    let warm_restart_hit = response.get("served_from_cache").and_then(Json::as_bool) == Some(true);

    // The trace-overhead probe: the restarted server runs without a
    // trace log; a second fresh server runs with one attached. Both are
    // freshly booted, share the same process-wide solve cache, and are
    // probed in interleaved runs, so the only variable left is the
    // observability layer itself. Untraced requests must not pay for it
    // — under 5%, or within an absolute few-microsecond noise floor (a
    // warm hit is ~15 µs; 5% of it is scheduler-noise territory, and
    // the floor keeps the gate honest the same way `bench_diff`'s
    // latency floor does).
    let probe_log = dir.join("probe-trace.jsonl");
    let observed = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        batch_max: 1,
        trace_log: Some(probe_log),
        ..ServerConfig::default()
    });
    prime_warm_probe(&restarted, &ping[0]);
    prime_warm_probe(&observed, &ping[0]);
    let mut warm_us_plain = f64::INFINITY;
    let mut warm_us_observed = f64::INFINITY;
    for _ in 0..3 {
        warm_us_plain = warm_us_plain.min(warm_handle_run_us(&restarted, &ping[0], 2_000));
        warm_us_observed = warm_us_observed.min(warm_handle_run_us(&observed, &ping[0], 2_000));
    }
    let overhead_pct = (warm_us_observed / warm_us_plain - 1.0) * 100.0;
    println!(
        "warm handle_line: {warm_us_plain:.1} us plain, {warm_us_observed:.1} us with \
         observability ({overhead_pct:+.1}%), trace log {trace_log_lines} lines \
         ({trace_log_traced} traced)"
    );
    assert!(
        warm_us_observed <= warm_us_plain * 1.05 || warm_us_observed - warm_us_plain <= 5.0,
        "observability must cost the untraced warm path under 5%: \
         {warm_us_plain:.1} us -> {warm_us_observed:.1} us"
    );
    observed.finish().expect("clean drain");

    restarted.finish().expect("clean drain");
    std::fs::remove_dir_all(&dir).ok();

    let count = |o: Outcome| samples.iter().filter(|s| s.outcome == o).count() as u64;
    let total = samples.len() as u64;
    let answered_ms: Vec<f64> = samples
        .iter()
        .filter(|s| matches!(s.outcome, Outcome::Result | Outcome::CacheHit))
        .map(|s| s.ms)
        .collect();
    assert_eq!(
        total,
        (flags.clients * flags.per_client) as u64,
        "every request line got exactly one reply"
    );
    let requests = metrics.get("requests").expect("metrics carry requests");
    let daemon = |key: &str| requests.get(key).and_then(Json::as_u64).unwrap_or(0);
    let histogram = metrics.get("latency").expect("metrics carry latency");
    let throughput = total as f64 / wall_s;

    let doc = Json::obj([
        ("schema", Json::str("qxmap.bench_serve")),
        ("schema_version", Json::num(1)),
        (
            "manifest_hash",
            Json::str(format!("{:#018x}", manifest_hash())),
        ),
        ("smoke", Json::Bool(flags.smoke)),
        ("seed", Json::num(flags.seed)),
        ("clients", Json::num(flags.clients as u64)),
        ("per_client", Json::num(flags.per_client as u64)),
        ("wall_s", Json::Num((wall_s * 1e3).round() / 1e3)),
        (
            "throughput_rps",
            Json::Num((throughput * 10.0).round() / 10.0),
        ),
        (
            "requests",
            Json::obj([
                ("total", Json::num(total)),
                ("results", Json::num(count(Outcome::Result))),
                ("cache_hits", Json::num(count(Outcome::CacheHit))),
                ("rejected_overload", Json::num(count(Outcome::Rejected))),
                ("shed_deadline", Json::num(count(Outcome::Shed))),
                ("errors", Json::num(count(Outcome::Error))),
            ]),
        ),
        ("latency", stats::latency_json(&answered_ms)),
        (
            "daemon",
            Json::obj([
                ("received", Json::num(daemon("received"))),
                ("completed", Json::num(daemon("completed"))),
                ("served_from_cache", Json::num(daemon("served_from_cache"))),
                ("rejected_overload", Json::num(daemon("rejected_overload"))),
                ("rejected_deadline", Json::num(daemon("rejected_deadline"))),
                ("deadline_misses", Json::num(daemon("deadline_misses"))),
                (
                    "p50_us",
                    histogram.get("p50_us").cloned().unwrap_or(Json::Null),
                ),
                (
                    "p95_us",
                    histogram.get("p95_us").cloned().unwrap_or(Json::Null),
                ),
                (
                    "p99_us",
                    histogram.get("p99_us").cloned().unwrap_or(Json::Null),
                ),
            ]),
        ),
        (
            "pipelined",
            Json::obj([
                ("per_client", Json::num(warm_per_client as u64)),
                ("serial_rps", Json::Num((serial_rps * 10.0).round() / 10.0)),
                (
                    "pipelined_rps",
                    Json::Num((pipelined_rps * 10.0).round() / 10.0),
                ),
                ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
            ]),
        ),
        (
            "warm_restart",
            Json::obj([
                ("snapshot_entries", Json::num(imported as u64)),
                ("hit", Json::Bool(warm_restart_hit)),
                ("latency_ms", Json::Num(stats::round_ms(restart_ms))),
            ]),
        ),
        (
            "trace",
            Json::obj([
                ("log_lines", Json::num(trace_log_lines)),
                ("log_lines_traced", Json::num(trace_log_traced)),
                (
                    "warm_us_plain",
                    Json::Num((warm_us_plain * 10.0).round() / 10.0),
                ),
                (
                    "warm_us_with_observability",
                    Json::Num((warm_us_observed * 10.0).round() / 10.0),
                ),
                (
                    "overhead_pct",
                    Json::Num((overhead_pct * 10.0).round() / 10.0),
                ),
            ]),
        ),
    ]);
    std::fs::write(&flags.out, stats::pretty(&doc)).expect("writable output path");
    println!(
        "wrote {} ({total} requests, {throughput:.1} req/s, warm restart hit: {warm_restart_hit})",
        flags.out
    );
    assert!(
        warm_restart_hit,
        "a restart from the soak's snapshot must answer a repeated request from cache"
    );
    // Smoke runs are too short for a stable ratio; the full soak pins
    // the tentpole claim that pipelining at least doubles warm-traffic
    // throughput over lockstep request/response.
    assert!(
        flags.smoke || speedup >= 2.0,
        "pipelined warm throughput must be at least 2x serial, got {speedup:.2}x"
    );
}
