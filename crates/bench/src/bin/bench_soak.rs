//! The serving-tier soak harness: boots the real [`qxmap_serve::Server`]
//! on a loopback TCP listener, drives `k` concurrent client connections
//! with a deterministic mix of cold, warm, windowed and invalid traffic,
//! then snapshots, restarts, and measures the warm-restart hit. Writes
//! `BENCH_serve.json` — throughput, client-observed latency percentiles,
//! the daemon's own histogram/deadline/overload counters, and the
//! warm-restart latency.
//!
//! Traffic is deterministic per `--seed` (request kinds and cold-request
//! cache keys come from a SplitMix64 stream), but thread interleaving is
//! not: counters like overload rejections vary run to run, which is why
//! `bench_diff` gates only on throughput, percentiles and the
//! warm-restart hit.
//!
//! Flags:
//!
//! * `--smoke` — shorter run for CI (fewer clients and requests);
//! * `--out PATH` — artifact path (default `BENCH_serve.json`);
//! * `--clients K` / `--per-client N` / `--seed S` — load shape.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qxmap_bench::stats;
use qxmap_benchmarks::corpus::{manifest_hash, smoke_corpus, CorpusClass};
use qxmap_benchmarks::synthetic_circuit;
use qxmap_map::SolveCache;
use qxmap_serve::{Json, Server, ServerConfig};

/// SplitMix64: deterministic, seedable, and three lines — the harness
/// needs reproducible schedules, not statistical quality.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

struct Flags {
    smoke: bool,
    out: String,
    clients: usize,
    per_client: usize,
    seed: u64,
}

fn parse_flags() -> Flags {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let parsed =
        |name: &str, default: usize| value(name).and_then(|v| v.parse().ok()).unwrap_or(default);
    Flags {
        smoke,
        out: value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string()),
        clients: parsed("--clients", if smoke { 4 } else { 6 }),
        per_client: parsed("--per-client", if smoke { 10 } else { 30 }),
        seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(7),
    }
}

/// What one request line did, from the client's side.
#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    Result,
    CacheHit,
    Rejected,
    Error,
}

struct Sample {
    outcome: Outcome,
    ms: f64,
}

/// One request over an open connection; panics on transport failure
/// (the soak's whole point is that the daemon never drops a reply).
fn round_trip(writer: &mut TcpStream, reader: &mut impl BufRead, line: &str) -> (Json, f64) {
    let start = Instant::now();
    writeln!(writer, "{line}").expect("daemon accepts writes");
    writer.flush().expect("daemon accepts writes");
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .expect("daemon answers every request");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!response.is_empty(), "daemon dropped an in-flight reply");
    (Json::parse(&response).expect("daemon speaks JSON"), ms)
}

/// The warm pool: requests repeated across clients so the solve cache
/// answers most of them. Built from the smoke corpus's monolithic rows —
/// real Table 1 shapes on real devices.
fn warm_pool() -> Vec<String> {
    smoke_corpus()
        .iter()
        .filter(|e| e.class != CorpusClass::Windowed)
        .map(|e| {
            format!(
                "{{\"type\":\"map\",\"qasm\":{},\"device\":\"{}\",\"deadline_ms\":{}}}",
                Json::str(qxmap_qasm::to_qasm(&e.circuit)),
                e.device,
                e.deadline_ms,
            )
        })
        .collect()
}

/// A cold request: the warm pool's first circuit under a never-repeated
/// `seed`, which is part of the solve-cache key — guaranteed miss, same
/// solve shape every time.
fn cold_line(qasm: &str, unique_seed: u64) -> String {
    format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx5\",\"deadline_ms\":10000,\"seed\":{unique_seed}}}",
        Json::str(qasm),
    )
}

/// A windowed request: a 10-qubit CNOT ladder on linear-12 — past the
/// exact regime, so it slices and stitches, but small enough to keep the
/// soak short.
fn windowed_line() -> String {
    let mut qasm = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[10];\n");
    for q in 0..9 {
        qasm.push_str(&format!("cx q[{}], q[{}];\n", q, q + 1));
    }
    format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"linear-12\",\
         \"windowed\":{{\"max_window_qubits\":6}},\"deadline_ms\":30000}}",
        Json::str(qasm)
    )
}

/// Invalid traffic: the daemon must answer each with a structured error
/// without disturbing its neighbors.
const INVALID_LINES: &[&str] = &[
    "this is not json",
    "{\"type\":\"map\"}",
    "{\"type\":\"map\",\"qasm\":\"OPENQASM 2.0;\",\"device\":\"atlantis\"}",
    "{\"type\":\"frobnicate\"}",
];

fn main() {
    let flags = parse_flags();
    let dir = std::env::temp_dir().join(format!("qxmap-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("writable temp dir");
    let snapshot = dir.join("soak.qxsnap");
    let _ = std::fs::remove_file(&snapshot);

    // Cold process-wide cache: the soak measures the serving tier, not
    // leftovers from this process.
    SolveCache::shared().clear();

    let server = Server::start(ServerConfig {
        workers: 2,
        queue_depth: 4,
        batch_max: 4,
        snapshot: Some(snapshot.clone()),
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound address");
    let accept_loop = std::thread::spawn({
        let server = Arc::clone(&server);
        move || server.serve_tcp(listener)
    });

    let warm = Arc::new(warm_pool());
    let cold_qasm = Arc::new(qxmap_qasm::to_qasm(&synthetic_circuit(6, 10, 16, 0xACE)));
    let windowed = Arc::new(windowed_line());
    println!(
        "soak: {} clients x {} requests against {addr} (seed {})",
        flags.clients, flags.per_client, flags.seed
    );

    let soak_start = Instant::now();
    let clients: Vec<_> = (0..flags.clients)
        .map(|client| {
            let warm = Arc::clone(&warm);
            let cold_qasm = Arc::clone(&cold_qasm);
            let windowed = Arc::clone(&windowed);
            let per_client = flags.per_client;
            let seed = flags.seed;
            std::thread::spawn(move || {
                let mut rng = Rng(seed ^ (client as u64).wrapping_mul(0x9E37_79B9));
                let stream = TcpStream::connect(addr).expect("daemon is listening");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("socket option");
                stream.set_nodelay(true).expect("socket option");
                let mut writer = stream.try_clone().expect("socket clone");
                let mut reader = BufReader::new(stream);
                let mut samples: Vec<Sample> = Vec::with_capacity(per_client);
                for request in 0..per_client {
                    let roll = rng.next() % 100;
                    let (line, invalid) = if roll < 50 {
                        (warm[(rng.next() as usize) % warm.len()].clone(), false)
                    } else if roll < 75 {
                        // Masked to 48 bits: the protocol carries
                        // integers as f64 and rejects values past 2^53.
                        (cold_line(&cold_qasm, rng.next() & 0xFFFF_FFFF_FFFF), false)
                    } else if roll < 85 {
                        ((*windowed).clone(), false)
                    } else {
                        (
                            INVALID_LINES[(client + request) % INVALID_LINES.len()].to_string(),
                            true,
                        )
                    };
                    let (response, ms) = round_trip(&mut writer, &mut reader, &line);
                    let outcome = match response.get("type").and_then(Json::as_str) {
                        Some("result") => {
                            if response.get("served_from_cache").and_then(Json::as_bool)
                                == Some(true)
                            {
                                Outcome::CacheHit
                            } else {
                                Outcome::Result
                            }
                        }
                        Some("error") => {
                            let code = response.get("code").and_then(Json::as_str);
                            if code == Some("overloaded") {
                                Outcome::Rejected
                            } else {
                                // Only the deliberately malformed lines
                                // may error: a structured failure on
                                // valid traffic is a harness bug worth
                                // stopping the soak for.
                                assert!(invalid, "valid request errored: {response}");
                                Outcome::Error
                            }
                        }
                        other => panic!("unexpected response type {other:?}"),
                    };
                    samples.push(Sample { outcome, ms });
                }
                samples
            })
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    for client in clients {
        samples.extend(client.join().expect("client threads do not panic"));
    }
    let wall_s = soak_start.elapsed().as_secs_f64();

    // The daemon's own view, over the same wire.
    let metrics_stream = TcpStream::connect(addr).expect("daemon is listening");
    let mut metrics_writer = metrics_stream.try_clone().expect("socket clone");
    let mut metrics_reader = BufReader::new(metrics_stream);
    let (metrics, _) = round_trip(
        &mut metrics_writer,
        &mut metrics_reader,
        "{\"type\":\"metrics\"}",
    );
    let (ack, _) = round_trip(
        &mut metrics_writer,
        &mut metrics_reader,
        "{\"type\":\"shutdown\"}",
    );
    assert_eq!(ack.get("type").and_then(Json::as_str), Some("ok"), "{ack}");
    accept_loop
        .join()
        .expect("accept loop exits on shutdown")
        .expect("accept loop exits cleanly");
    let persisted = server
        .finish()
        .expect("snapshot write succeeds")
        .expect("snapshot path configured");
    assert!(persisted > 0, "the soak must leave a warm snapshot behind");

    // Warm restart: a fresh server over the snapshot answers a repeated
    // request from cache.
    SolveCache::shared().clear();
    let restarted = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        batch_max: 1,
        snapshot: Some(snapshot.clone()),
    });
    let imported = restarted.warm_start().expect("snapshot re-imports");
    let restart_start = Instant::now();
    let handled = restarted.handle_line(&warm[0]);
    let restart_ms = restart_start.elapsed().as_secs_f64() * 1e3;
    let response = Json::parse(handled.response()).expect("response is JSON");
    let warm_restart_hit = response.get("served_from_cache").and_then(Json::as_bool) == Some(true);
    restarted.finish().expect("clean drain");
    std::fs::remove_dir_all(&dir).ok();

    let count = |o: Outcome| samples.iter().filter(|s| s.outcome == o).count() as u64;
    let total = samples.len() as u64;
    let answered_ms: Vec<f64> = samples
        .iter()
        .filter(|s| matches!(s.outcome, Outcome::Result | Outcome::CacheHit))
        .map(|s| s.ms)
        .collect();
    assert_eq!(
        total,
        (flags.clients * flags.per_client) as u64,
        "every request line got exactly one reply"
    );
    let requests = metrics.get("requests").expect("metrics carry requests");
    let daemon = |key: &str| requests.get(key).and_then(Json::as_u64).unwrap_or(0);
    let histogram = metrics.get("latency").expect("metrics carry latency");
    let throughput = total as f64 / wall_s;

    let doc = Json::obj([
        ("schema", Json::str("qxmap.bench_serve")),
        ("schema_version", Json::num(1)),
        (
            "manifest_hash",
            Json::str(format!("{:#018x}", manifest_hash())),
        ),
        ("smoke", Json::Bool(flags.smoke)),
        ("seed", Json::num(flags.seed)),
        ("clients", Json::num(flags.clients as u64)),
        ("per_client", Json::num(flags.per_client as u64)),
        ("wall_s", Json::Num((wall_s * 1e3).round() / 1e3)),
        (
            "throughput_rps",
            Json::Num((throughput * 10.0).round() / 10.0),
        ),
        (
            "requests",
            Json::obj([
                ("total", Json::num(total)),
                ("results", Json::num(count(Outcome::Result))),
                ("cache_hits", Json::num(count(Outcome::CacheHit))),
                ("rejected_overload", Json::num(count(Outcome::Rejected))),
                ("errors", Json::num(count(Outcome::Error))),
            ]),
        ),
        ("latency", stats::latency_json(&answered_ms)),
        (
            "daemon",
            Json::obj([
                ("received", Json::num(daemon("received"))),
                ("completed", Json::num(daemon("completed"))),
                ("served_from_cache", Json::num(daemon("served_from_cache"))),
                ("rejected_overload", Json::num(daemon("rejected_overload"))),
                ("deadline_misses", Json::num(daemon("deadline_misses"))),
                (
                    "p50_us",
                    histogram.get("p50_us").cloned().unwrap_or(Json::Null),
                ),
                (
                    "p95_us",
                    histogram.get("p95_us").cloned().unwrap_or(Json::Null),
                ),
                (
                    "p99_us",
                    histogram.get("p99_us").cloned().unwrap_or(Json::Null),
                ),
            ]),
        ),
        (
            "warm_restart",
            Json::obj([
                ("snapshot_entries", Json::num(imported as u64)),
                ("hit", Json::Bool(warm_restart_hit)),
                ("latency_ms", Json::Num(stats::round_ms(restart_ms))),
            ]),
        ),
    ]);
    std::fs::write(&flags.out, stats::pretty(&doc)).expect("writable output path");
    println!(
        "wrote {} ({total} requests, {throughput:.1} req/s, warm restart hit: {warm_restart_hit})",
        flags.out
    );
    assert!(
        warm_restart_hit,
        "a restart from the soak's snapshot must answer a repeated request from cache"
    );
}
