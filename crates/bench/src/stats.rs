//! Latency-sample statistics and the pretty JSON renderer behind the
//! committed `BENCH_*.json` artifacts.
//!
//! The artifacts are meant to be read in two ways: by `bench_diff`
//! (machine) and in review diffs (human), so values are rounded to a
//! fixed precision and objects are rendered with stable indentation —
//! regenerating an artifact produces a minimal, readable diff.

use qxmap_serve::Json;

/// Milliseconds rounded to microsecond precision — enough to tell a
/// cache hit from a solve, coarse enough to keep artifacts readable.
pub fn round_ms(ms: f64) -> f64 {
    (ms * 1e3).round() / 1e3
}

/// The `p`-quantile of `samples` by the nearest-rank method (the sample
/// at rank `⌈p·n⌉`), matching the daemon's histogram convention of never
/// under-reporting a latency promise. Returns 0 for an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Renders a batch of latency samples (milliseconds) as the artifact's
/// standard `{count, p50_ms, p95_ms, p99_ms, mean_ms, max_ms}` object.
pub fn latency_json(samples: &[f64]) -> Json {
    let count = samples.len();
    let mean = if count == 0 {
        0.0
    } else {
        samples.iter().sum::<f64>() / count as f64
    };
    let max = samples.iter().fold(0.0f64, |a, &b| a.max(b));
    Json::obj([
        ("count", Json::num(count as u64)),
        ("p50_ms", Json::Num(round_ms(percentile(samples, 0.50)))),
        ("p95_ms", Json::Num(round_ms(percentile(samples, 0.95)))),
        ("p99_ms", Json::Num(round_ms(percentile(samples, 0.99)))),
        ("mean_ms", Json::Num(round_ms(mean))),
        ("max_ms", Json::Num(round_ms(max))),
    ])
}

/// Renders `json` with two-space indentation. Arrays of scalars stay on
/// one line; arrays of containers and all objects go multi-line.
pub fn pretty(json: &Json) -> String {
    let mut out = String::new();
    render(json, 0, &mut out);
    out.push('\n');
    out
}

fn render(json: &Json, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    let close = "  ".repeat(depth);
    match json {
        Json::Arr(items)
            if !items.is_empty()
                && items
                    .iter()
                    .any(|i| matches!(i, Json::Arr(_) | Json::Obj(_))) =>
        {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                render(item, depth + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&Json::str(key.clone()).to_string());
                out.push_str(": ");
                render(value, depth + 1, out);
                out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 0.50), 50.0);
        assert_eq!(percentile(&samples, 0.95), 95.0);
        assert_eq!(percentile(&samples, 0.99), 99.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn latency_json_has_the_standard_fields() {
        let j = latency_json(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("p50_ms").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("mean_ms").and_then(Json::as_f64), Some(2.5));
        assert_eq!(j.get("max_ms").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn pretty_round_trips_and_keeps_scalar_arrays_inline() {
        let v = Json::obj([
            ("name", Json::str("x")),
            ("nums", Json::Arr(vec![Json::num(1), Json::num(2)])),
            ("rows", Json::Arr(vec![Json::obj([("a", Json::num(1))])])),
        ]);
        let text = pretty(&v);
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert!(text.contains("\"nums\": [1,2]"), "{text}");
        assert!(text.contains("  \"rows\": [\n"), "{text}");
    }
}
