//! Benchmarks the heuristic baselines (Table 1, last column + the
//! additional A*/naive comparators) — these run orders of magnitude
//! faster than the exact method, which is exactly the trade-off the paper
//! quantifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qxmap_arch::devices;
use qxmap_benchmarks::{circuit_for, profiles};
use qxmap_heuristic::{AStarMapper, Mapper, NaiveMapper, SabreMapper, StochasticSwapMapper};

fn bench_heuristics(c: &mut Criterion) {
    let cm = devices::ibm_qx4();
    let mut group = c.benchmark_group("heuristic");
    for name in ["4mod5-v0_20", "alu-v0_27", "qe_qft_5"] {
        let profile = profiles::by_name(name).expect("known benchmark");
        let circuit = circuit_for(&profile);
        group.bench_with_input(
            BenchmarkId::new("stochastic-x5", name),
            &circuit,
            |b, circuit| {
                b.iter(|| qxmap_bench::best_of_stochastic(circuit, &cm, 5));
            },
        );
        group.bench_with_input(BenchmarkId::new("astar", name), &circuit, |b, circuit| {
            let mapper = AStarMapper::new();
            b.iter(|| mapper.map(circuit, &cm).expect("mappable"));
        });
        group.bench_with_input(BenchmarkId::new("sabre", name), &circuit, |b, circuit| {
            let mapper = SabreMapper::new();
            b.iter(|| mapper.map(circuit, &cm).expect("mappable"));
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &circuit, |b, circuit| {
            let mapper = NaiveMapper::new();
            b.iter(|| mapper.map(circuit, &cm).expect("mappable"));
        });
        group.bench_with_input(
            BenchmarkId::new("stochastic-x1", name),
            &circuit,
            |b, circuit| {
                let mapper = StochasticSwapMapper::with_seed(0);
                b.iter(|| mapper.map(circuit, &cm).expect("mappable"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
