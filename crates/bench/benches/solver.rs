//! Microbenchmarks of the reasoning engine (the Z3 substitute): raw CDCL
//! search, the generalized-totalizer objective machinery, and the two
//! minimization schedules of Section 3.3 (objective-driven descent vs
//! binary search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qxmap_sat::{encode, minimize, Lit, MinimizeOptions, MinimizeStrategy, SolveResult, Solver};

/// PHP(h+1, h) — a classic resolution-hard UNSAT family.
fn pigeonhole(holes: usize) -> Solver {
    let pigeons = holes + 1;
    let mut s = Solver::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_lit()).collect())
        .collect();
    for p in &vars {
        s.add_clause(p.iter().copied());
    }
    for p1 in 0..pigeons {
        for p2 in (p1 + 1)..pigeons {
            for (&a, &b) in vars[p1].iter().zip(&vars[p2]) {
                s.add_clause([!a, !b]);
            }
        }
    }
    s
}

fn planted_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> (Solver, Vec<Lit>) {
    let mut state = seed;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut s = Solver::new();
    let vars: Vec<Lit> = (0..num_vars).map(|_| s.new_lit()).collect();
    let planted: Vec<bool> = (0..num_vars).map(|_| rnd() % 2 == 0).collect();
    for _ in 0..num_clauses {
        let mut clause: Vec<Lit> = (0..3)
            .map(|_| {
                let v = rnd() % num_vars;
                if rnd() % 2 == 0 {
                    vars[v]
                } else {
                    !vars[v]
                }
            })
            .collect();
        if !clause
            .iter()
            .any(|l| planted[l.var().index()] == l.is_positive())
        {
            let l = clause[0];
            clause[0] = if planted[l.var().index()] {
                l.var().positive()
            } else {
                l.var().negative()
            };
        }
        s.add_clause(clause);
    }
    (s, vars)
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    for holes in [5usize, 6, 7] {
        group.bench_function(BenchmarkId::new("pigeonhole-unsat", holes), |b| {
            b.iter_batched(
                || pigeonhole(holes),
                |mut s| s.solve(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("planted-3sat-200v", |b| {
        b.iter_batched(
            || planted_3sat(200, 850, 7).0,
            |mut s| s.solve(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_minimize_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimize");
    for strategy in [
        MinimizeStrategy::LinearDescent,
        MinimizeStrategy::BinarySearch,
    ] {
        group.bench_function(format!("{strategy:?}"), |b| {
            b.iter_batched(
                || {
                    let mut s = Solver::new();
                    let vars: Vec<Lit> = (0..24).map(|_| s.new_lit()).collect();
                    // Overlapping exactly-one groups force a non-trivial optimum.
                    for chunk in vars.chunks(6) {
                        encode::exactly_one(&mut s, chunk);
                    }
                    let obj: Vec<(u64, Lit)> = vars
                        .iter()
                        .enumerate()
                        .map(|(i, &l)| ((i % 9 + 1) as u64, l))
                        .collect();
                    (s, obj)
                },
                |(mut s, obj)| {
                    minimize(
                        &mut s,
                        &obj,
                        MinimizeOptions {
                            strategy,
                            ..Default::default()
                        },
                    )
                    .expect("satisfiable")
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// AMO-encoding ablation: same exactly-one-heavy instance under the
/// pairwise, sequential and commander encodings. The mapping encoding's
/// per-step Eq. (1) constraints and per-change-point selector constraints
/// are exactly this shape.
fn bench_amo_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("amo-ablation");
    // 30 overlapping exactly-one groups of 12 literals with shared members,
    // then solve to force propagation through the encodings.
    type Encoder = fn(&mut Solver, &[Lit]);
    let encoders: Vec<(&str, Encoder)> = vec![
        ("pairwise", |s, l| encode::at_most_one_pairwise(s, l)),
        ("sequential", |s, l| encode::at_most_one_sequential(s, l)),
        ("commander3", |s, l| encode::at_most_one_commander(s, l, 3)),
    ];
    for (label, enc) in encoders {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut s = Solver::new();
                let vars: Vec<Lit> = (0..120).map(|_| s.new_lit()).collect();
                for start in 0..30 {
                    let group_lits: Vec<Lit> =
                        (0..12).map(|i| vars[(start * 4 + i) % 120]).collect();
                    encode::at_least_one(&mut s, &group_lits);
                    enc(&mut s, &group_lits);
                }
                assert!(matches!(s.solve(), SolveResult::Sat(_)));
                s.num_clauses()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_search,
    bench_minimize_schedules,
    bench_amo_encodings
);
criterion_main!(benches);
