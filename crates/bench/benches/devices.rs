//! The `devices` profile: the same workload mapped across the topology
//! library — fixed QX backends, ring, grid, heavy-hex and all-to-all —
//! so topology-generator and scheduler regressions show up as benchmark
//! cliffs. Also measures the [`DeviceModel`] construction itself (one
//! BFS + Dijkstra sweep per model), which every engine now amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qxmap_arch::{devices, DeviceModel};
use qxmap_bench::device_suite;
use qxmap_circuit::Circuit;
use qxmap_heuristic::{Mapper, NaiveMapper, SabreMapper};
use qxmap_map::{Engine, MapRequest, Portfolio};

/// A fixed 5-qubit workload every suite device can host.
fn workload() -> Circuit {
    let mut c = Circuit::new(5);
    for i in 0..12 {
        c.cx(i % 5, (i + 2) % 5);
        c.h((i + 1) % 5);
    }
    c
}

fn bench_model_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("device-model/build");
    for (name, cm) in [
        ("qx4", devices::ibm_qx4()),
        ("tokyo", devices::ibm_tokyo()),
        ("heavy-hex-4x5", devices::heavy_hex(4, 5)),
    ] {
        group.bench_function(name, |b| b.iter(|| DeviceModel::new(cm.clone())));
    }
    group.finish();
}

fn bench_heuristics_across_topologies(c: &mut Criterion) {
    let circuit = workload();
    let mut group = c.benchmark_group("devices/heuristics");
    for model in device_suite() {
        let name = model.coupling_map().name().to_string();
        group.bench_function(BenchmarkId::new("naive", &name), |b| {
            b.iter(|| NaiveMapper::new().map_model(&circuit, &model).unwrap());
        });
        group.bench_function(BenchmarkId::new("sabre", &name), |b| {
            b.iter(|| SabreMapper::new().map_model(&circuit, &model).unwrap());
        });
    }
    group.finish();
}

fn bench_portfolio_scheduling(c: &mut Criterion) {
    // The scheduler's skip path: an all-to-all device races only the
    // naive floor, so this pair of bars quantifies the saved work.
    let circuit = workload();
    let mut group = c.benchmark_group("devices/portfolio");
    for model in [
        DeviceModel::new(devices::fully_connected(6)),
        DeviceModel::new(devices::heavy_hex(2, 2)),
    ] {
        let name = model.coupling_map().name().to_string();
        let request =
            MapRequest::for_model(circuit.clone(), model).with_conflict_budget(Some(20_000));
        group.bench_function(name.as_str(), |b| {
            b.iter(|| Portfolio::new().run(&request).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_model_construction,
    bench_heuristics_across_topologies,
    bench_portfolio_scheduling
);
criterion_main!(benches);
