//! Benchmarks the exact mapping methods (Table 1, column groups 1–2):
//! the guaranteed-minimal Section 3 formulation and the Section 4.1
//! subset optimization, across small suite instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qxmap_arch::devices;
use qxmap_benchmarks::{circuit_for, profiles};
use qxmap_core::{ExactMapper, MapperConfig};

fn bench_exact_methods(c: &mut Criterion) {
    let cm = devices::ibm_qx4();
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    for name in ["ex-1_166", "ham3_102", "4gt11_84", "4mod5-v0_20"] {
        let profile = profiles::by_name(name).expect("known benchmark");
        let circuit = circuit_for(&profile);
        group.bench_with_input(BenchmarkId::new("minimal", name), &circuit, |b, circuit| {
            let mapper = ExactMapper::with_config(cm.clone(), MapperConfig::minimal());
            b.iter(|| mapper.map(circuit).expect("mappable"));
        });
        group.bench_with_input(
            BenchmarkId::new("subsets-4.1", name),
            &circuit,
            |b, circuit| {
                let mapper = ExactMapper::with_config(
                    cm.clone(),
                    MapperConfig::minimal().with_subsets(true),
                );
                b.iter(|| mapper.map(circuit).expect("mappable"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_methods);
criterion_main!(benches);
