//! Benchmarks of the supporting substrates: `swaps(π)` table
//! construction ("needs to be conducted only once", Section 3.2),
//! connected-subset enumeration (Section 4.1), QASM parsing, and
//! statevector simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qxmap_arch::{connected_subsets, devices, CostedSwapTable, SwapTable};
use qxmap_benchmarks::famous;
use qxmap_sim::{run, StateVec};

fn bench_swap_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap-table");
    let qx4 = devices::ibm_qx4();
    group.bench_function("qx4-full-120", |b| {
        b.iter(|| SwapTable::new(&qx4));
    });
    group.bench_function("qx4-subset-4", |b| {
        b.iter(|| SwapTable::for_subset(&qx4, &[0, 1, 2, 3]));
    });
    let line7 = devices::linear(7);
    group.bench_function("line7-5040", |b| {
        b.iter(|| SwapTable::new(&line7));
    });
    // Ablation: count-optimal BFS vs cost-optimal Dijkstra construction.
    group.bench_function("qx4-costed-120", |b| {
        b.iter(|| CostedSwapTable::new(&qx4));
    });
    group.finish();
}

fn bench_subset_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("subsets");
    let qx5 = devices::ibm_qx5();
    for size in [3usize, 5] {
        group.bench_function(BenchmarkId::new("qx5", size), |b| {
            b.iter(|| connected_subsets(&qx5, size));
        });
    }
    let tokyo = devices::ibm_tokyo();
    group.bench_function("tokyo-5", |b| {
        b.iter(|| connected_subsets(&tokyo, 5));
    });
    group.finish();
}

fn bench_qasm(c: &mut Criterion) {
    // A Toffoli-heavy program stressing qelib inlining.
    let mut src = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\n");
    for i in 0..50 {
        src.push_str(&format!(
            "ccx q[{}], q[{}], q[{}];\nh q[{}];\n",
            i % 5,
            (i + 1) % 5,
            (i + 2) % 5,
            i % 5
        ));
    }
    c.bench_function("qasm/parse-50-toffolis", |b| {
        b.iter(|| qxmap_qasm::parse(&src).expect("valid program"));
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    for n in [8usize, 12] {
        let circuit = famous::qft(n).decompose_swaps();
        group.bench_with_input(BenchmarkId::new("qft", n), &circuit, |b, circuit| {
            b.iter(|| run(circuit, StateVec::zero(n)).expect("unitary"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_swap_tables,
    bench_subset_enumeration,
    bench_qasm,
    bench_simulator
);
criterion_main!(benches);
