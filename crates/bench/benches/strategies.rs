//! Benchmarks the Section 4.2 permutation-restriction strategies and the
//! paper's prose claim that "the runtime required to solve an instance
//! indirectly correlates with |G'|": sweeps both the strategy (at fixed
//! circuit) and the CNOT count (at fixed strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qxmap_arch::devices;
use qxmap_benchmarks::{circuit_for, profiles, synthetic_circuit};
use qxmap_core::{ExactMapper, MapperConfig, Strategy};

fn bench_strategy_choice(c: &mut Criterion) {
    let cm = devices::ibm_qx4();
    let profile = profiles::by_name("4mod5-v0_20").expect("known benchmark");
    let circuit = circuit_for(&profile);
    let mut group = c.benchmark_group("strategy/4mod5-v0_20");
    group.sample_size(10);
    for (label, strategy) in [
        ("before-every-gate", Strategy::BeforeEveryGate),
        ("disjoint-qubits", Strategy::DisjointQubits),
        ("odd-gates", Strategy::OddGates),
        ("qubit-triangle", Strategy::QubitTriangle),
    ] {
        let points = strategy.change_points(&circuit.cnot_skeleton()).len();
        group.bench_function(BenchmarkId::new(label, format!("Gp{points}")), |b| {
            let mapper = ExactMapper::with_config(
                cm.clone(),
                MapperConfig::minimal()
                    .with_strategy(strategy.clone())
                    .with_subsets(true),
            );
            b.iter(|| mapper.map(&circuit).expect("mappable"));
        });
    }
    group.finish();
}

fn bench_gate_count_scaling(c: &mut Criterion) {
    let cm = devices::ibm_qx4();
    let mut group = c.benchmark_group("scaling/odd-gates");
    group.sample_size(10);
    for cnots in [6usize, 10, 14] {
        let circuit = synthetic_circuit(4, cnots, cnots, 0xC0FFEE);
        group.bench_with_input(
            BenchmarkId::from_parameter(cnots),
            &circuit,
            |b, circuit| {
                let mapper = ExactMapper::with_config(
                    cm.clone(),
                    MapperConfig::minimal()
                        .with_strategy(Strategy::OddGates)
                        .with_subsets(true),
                );
                b.iter(|| mapper.map(circuit).expect("mappable"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategy_choice, bench_gate_count_scaling);
criterion_main!(benches);
