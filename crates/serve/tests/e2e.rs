//! End-to-end test of the `qxmap-serve` binary: boot on a loopback
//! port, round-trip a QASM mapping request and a metrics request,
//! shut down (writing the cache snapshot), restart from the snapshot,
//! and assert the repeated request is a sub-millisecond warm cache hit
//! with the same layout and cost as the original solve — the serving
//! tier's whole reason to exist, exercised over the real wire.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qxmap_serve::Json;

const QASM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncx q[0], q[1];\ncx q[2], q[3];\ncx q[0], q[2];\ncx q[1], q[3];\n";

fn map_line() -> String {
    format!(
        "{{\"type\":\"map\",\"id\":\"e2e\",\"qasm\":{},\"device\":\"qx4\",\"deadline_ms\":30000}}",
        Json::str(QASM)
    )
}

/// The daemon under test; killed on drop so a failing assertion never
/// leaks a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn boot(snapshot: &std::path::Path) -> Daemon {
        Daemon::boot_with(snapshot, &[])
    }

    /// Boots with extra command-line flags (worker/queue shaping).
    fn boot_with(snapshot: &std::path::Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qxmap-serve"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--snapshot",
                snapshot.to_str().expect("UTF-8 temp path"),
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("binary built by cargo");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let announcement = lines
            .next()
            .expect("the daemon announces its address")
            .expect("readable stdout");
        let parsed = Json::parse(&announcement).expect("announcement is JSON");
        assert_eq!(
            parsed.get("type").and_then(Json::as_str),
            Some("listening"),
            "{announcement}"
        );
        let addr = parsed
            .get("addr")
            .and_then(Json::as_str)
            .expect("announced addr")
            .to_string();
        Daemon { child, addr }
    }

    /// One request line over its own connection; returns the parsed
    /// response.
    fn request(&self, line: &str) -> Json {
        let stream = TcpStream::connect(&self.addr).expect("daemon is listening");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        Json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }

    fn shutdown_and_wait(mut self) {
        let ack = self.request("{\"type\":\"shutdown\"}");
        assert_eq!(ack.get("type").and_then(Json::as_str), Some("ok"));
        let status = self.child.wait().expect("daemon exits after shutdown");
        assert!(status.success(), "daemon exited with {status}");
        // Disarm the drop guard's kill (already exited).
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A GHZ-style CNOT ladder over `n` qubits as OpenQASM 2.0.
fn ladder_qasm(n: usize) -> String {
    let mut qasm = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{n}];\n");
    for q in 0..n - 1 {
        qasm.push_str(&format!("cx q[{}], q[{}];\n", q, q + 1));
    }
    qasm
}

#[test]
fn windowed_requests_round_trip_with_certificates() {
    let dir = std::env::temp_dir().join(format!("qxmap-serve-e2e-win-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot: PathBuf = dir.join("solves.qxsnap");
    let _ = std::fs::remove_file(&snapshot);

    let daemon = Daemon::boot(&snapshot);
    // A 10-qubit ladder on linear-12: past the exact regime, so the
    // windowed engine slices, solves and stitches.
    let line = format!(
        "{{\"type\":\"map\",\"id\":\"win\",\"qasm\":{},\"device\":\"linear-12\",\
         \"windowed\":{{\"max_window_qubits\":6}},\"deadline_ms\":30000}}",
        Json::str(ladder_qasm(10))
    );
    let r = daemon.request(&line);
    assert_eq!(r.get("type").and_then(Json::as_str), Some("result"), "{r}");
    assert_eq!(r.get("id").and_then(Json::as_str), Some("win"));
    assert_eq!(r.get("engine").and_then(Json::as_str), Some("windowed"));
    let windows = r
        .get("windows")
        .and_then(Json::as_array)
        .expect("windowed results carry per-window certificates");
    assert!(windows.len() >= 2, "{} windows", windows.len());
    let gates: u64 = windows
        .iter()
        .map(|w| w.get("gates").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(gates, 9, "every ladder gate is certified by one window");
    assert!(
        windows
            .iter()
            .all(|w| w.get("proved_optimal") == Some(&Json::Bool(true))),
        "every window of the ladder solves exactly"
    );
    assert!(r
        .get("mapped_qasm")
        .and_then(Json::as_str)
        .unwrap()
        .contains("OPENQASM 2.0"));

    // The same job without the windowed knob is best-effort and out of
    // the exact regime, so the server auto-selects the windowed engine:
    // the response carries certificates without the client asking.
    let plain = format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"linear-12\",\"deadline_ms\":30000}}",
        Json::str(ladder_qasm(10))
    );
    let p = daemon.request(&plain);
    assert_eq!(p.get("type").and_then(Json::as_str), Some("result"), "{p}");
    assert_eq!(
        p.get("engine").and_then(Json::as_str),
        Some("windowed"),
        "out-of-regime best-effort requests auto-window: {p}"
    );
    assert!(p.get("windows").is_some());

    // An explicit `"windowed": false` vetoes the auto-selection and
    // answers monolithically, with no certificate section.
    let vetoed = format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"linear-12\",\
         \"windowed\":false,\"deadline_ms\":30000}}",
        Json::str(ladder_qasm(10))
    );
    let v = daemon.request(&vetoed);
    assert_eq!(v.get("type").and_then(Json::as_str), Some("result"), "{v}");
    assert!(v.get("windows").is_none());

    daemon.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).ok();
}

/// Pipelining over the real wire: one connection streams several tagged
/// requests without waiting, and responses come back in *completion*
/// order — a slow windowed job submitted first must not block the warm
/// little jobs queued behind it on the same socket.
#[test]
fn pipelined_connections_stream_responses_in_completion_order() {
    let dir = std::env::temp_dir().join(format!("qxmap-serve-e2e-pipe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot: PathBuf = dir.join("solves.qxsnap");
    let _ = std::fs::remove_file(&snapshot);

    let daemon = Daemon::boot_with(&snapshot, &["--workers", "2"]);
    // Warm the cache so the fast requests are microsecond hits.
    let warm = daemon.request(&map_line());
    assert_eq!(warm.get("type").and_then(Json::as_str), Some("result"));

    let stream = TcpStream::connect(&daemon.addr).expect("daemon is listening");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Head-of-line job: a 52-qubit windowed solve that takes seconds.
    let slow = format!(
        "{{\"type\":\"map\",\"id\":\"slow\",\"qasm\":{},\"device\":\"heavy-hex-4\",\
         \"windowed\":true,\"deadline_ms\":60000}}",
        Json::str(ladder_qasm(52))
    );
    writeln!(writer, "{slow}").unwrap();
    // Then a burst of warm cache hits behind it, all on the same socket.
    const FAST: usize = 4;
    for i in 0..FAST {
        let fast = format!(
            "{{\"type\":\"map\",\"id\":\"fast-{i}\",\"qasm\":{},\"device\":\"qx4\",\
             \"deadline_ms\":30000}}",
            Json::str(QASM)
        );
        writeln!(writer, "{fast}").unwrap();
    }
    writer.flush().unwrap();

    let mut order = Vec::new();
    for _ in 0..FAST + 1 {
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let r = Json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"));
        assert_eq!(r.get("type").and_then(Json::as_str), Some("result"), "{r}");
        order.push(r.get("id").and_then(Json::as_str).unwrap().to_string());
    }
    assert_eq!(order.len(), FAST + 1, "one reply per pipelined request");
    let mut sorted = order.clone();
    sorted.sort();
    let mut expected: Vec<String> = (0..FAST).map(|i| format!("fast-{i}")).collect();
    expected.push("slow".to_string());
    expected.sort();
    assert_eq!(sorted, expected, "every tagged request was answered");
    assert_ne!(
        order[0], "slow",
        "warm hits overtake the slow head-of-line job: {order:?}"
    );

    daemon.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).ok();
}

/// Floods a deliberately tiny daemon (one worker, queue depth one) with
/// simultaneous slow requests and asserts the admission queue's promise:
/// excess load is rejected *immediately* with a structured `overloaded`
/// error, every connection still receives exactly one reply, admitted
/// work completes, and shutdown drains cleanly afterwards.
#[test]
fn flooding_the_admission_queue_rejects_cleanly_without_dropping_replies() {
    use std::sync::Barrier;

    let dir = std::env::temp_dir().join(format!("qxmap-serve-e2e-flood-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot: PathBuf = dir.join("solves.qxsnap");
    let _ = std::fs::remove_file(&snapshot);

    let daemon = std::sync::Arc::new(Daemon::boot_with(
        &snapshot,
        &["--workers", "1", "--queue-depth", "1", "--batch", "1"],
    ));
    // A windowed 52-qubit map on heavy-hex takes long enough that the
    // barrier-synchronized flood below lands while the single worker is
    // busy: one request in flight, one queued, the rest rejected.
    let line = format!(
        "{{\"type\":\"map\",\"id\":\"flood\",\"qasm\":{},\"device\":\"heavy-hex-4\",\
         \"windowed\":true,\"deadline_ms\":60000}}",
        Json::str(ladder_qasm(52))
    );

    const CLIENTS: usize = 8;
    let barrier = std::sync::Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let daemon = std::sync::Arc::clone(&daemon);
            let barrier = std::sync::Arc::clone(&barrier);
            let line = line.clone();
            std::thread::spawn(move || {
                // Connect first, then release every request in the same
                // instant — the flood must overlap the first solve.
                let stream = TcpStream::connect(&daemon.addr).expect("daemon is listening");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                barrier.wait();
                writeln!(writer, "{line}").unwrap();
                writer.flush().unwrap();
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                assert!(!response.is_empty(), "daemon dropped an in-flight reply");
                Json::parse(&response).expect("response is JSON")
            })
        })
        .collect();

    let mut results = 0usize;
    let mut rejected = 0usize;
    for client in clients {
        let response = client.join().expect("client threads finish");
        assert_eq!(
            response.get("id").and_then(Json::as_str),
            Some("flood"),
            "every reply echoes its request id: {response}"
        );
        match response.get("type").and_then(Json::as_str) {
            Some("result") => results += 1,
            Some("error") => {
                assert_eq!(
                    response.get("code").and_then(Json::as_str),
                    Some("overloaded"),
                    "the only acceptable failure under flood is a \
                     structured overload rejection: {response}"
                );
                rejected += 1;
            }
            other => panic!("unexpected response type {other:?}"),
        }
    }
    assert_eq!(results + rejected, CLIENTS, "one reply per connection");
    assert!(results >= 1, "admitted work completes under flood");
    assert!(
        rejected >= 1,
        "a queue of depth one under {CLIENTS} simultaneous slow requests must shed load"
    );

    // The daemon's own counters agree with the client-side tally, and
    // the flood left no queued leftovers.
    let metrics = daemon.request("{\"type\":\"metrics\"}");
    let requests = metrics.get("requests").expect("request counters");
    assert_eq!(
        requests.get("rejected_overload").and_then(Json::as_u64),
        Some(rejected as u64),
        "{metrics}"
    );
    assert_eq!(
        requests.get("completed").and_then(Json::as_u64),
        Some(results as u64)
    );
    let queue = metrics.get("queue").expect("queue state");
    assert_eq!(queue.get("depth").and_then(Json::as_u64), Some(0));
    assert_eq!(queue.get("in_flight").and_then(Json::as_u64), Some(0));

    // Clean drain: graceful shutdown still works after the flood.
    std::sync::Arc::into_inner(daemon)
        .expect("all clients joined")
        .shutdown_and_wait();
    std::fs::remove_dir_all(&dir).ok();
}

/// The binary ingest path over the real wire: a QXBC payload answers
/// with the same result as its QASM twin (warm, straight from the
/// skeleton probe), and hostile payloads — bad base64, flipped bytes,
/// truncation — come back as structured `bad_request` rejections, never
/// a dropped connection. QASM syntax errors carry their source line as
/// a structured field.
#[test]
fn qxbc_payloads_round_trip_and_hostile_ones_reject_structurally() {
    let dir = std::env::temp_dir().join(format!("qxmap-serve-e2e-qxbc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot: PathBuf = dir.join("solves.qxsnap");
    let _ = std::fs::remove_file(&snapshot);

    let daemon = Daemon::boot(&snapshot);
    let first = daemon.request(&map_line());
    assert_eq!(
        first.get("type").and_then(Json::as_str),
        Some("result"),
        "{first}"
    );

    // The QXBC form of the same circuit (same options, so the same
    // cache key) is answered warm from the skeleton-first probe.
    let bytes = qxmap_qasm::encode_qxbc(&qxmap_qasm::parse(QASM).unwrap());
    let qxbc_line = |payload: &str| {
        format!(
            "{{\"type\":\"map\",\"id\":\"bin\",\"format\":\"qxbc\",\"qxbc\":\"{payload}\",\
             \"device\":\"qx4\",\"deadline_ms\":30000}}"
        )
    };
    let r = daemon.request(&qxbc_line(&qxmap_serve::base64::encode(&bytes)));
    assert_eq!(r.get("type").and_then(Json::as_str), Some("result"), "{r}");
    assert_eq!(r.get("id").and_then(Json::as_str), Some("bin"));
    assert_eq!(
        r.get("served_from_cache").and_then(Json::as_bool),
        Some(true),
        "the text solve warms the binary path: {r}"
    );
    assert_eq!(r.get("cost"), first.get("cost"));
    assert_eq!(r.get("initial_layout"), first.get("initial_layout"));

    // Hostile payloads: every defect is a structured rejection.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    for (line, needle) in [
        (qxbc_line("@@not base64@@"), "base64"),
        (qxbc_line(&qxmap_serve::base64::encode(&flipped)), "QXBC"),
        (
            qxbc_line(&qxmap_serve::base64::encode(&bytes[..bytes.len() / 3])),
            "QXBC",
        ),
    ] {
        let e = daemon.request(&line);
        assert_eq!(e.get("type").and_then(Json::as_str), Some("error"), "{e}");
        assert_eq!(
            e.get("code").and_then(Json::as_str),
            Some("bad_request"),
            "{e}"
        );
        assert_eq!(e.get("id").and_then(Json::as_str), Some("bin"));
        let message = e.get("message").and_then(Json::as_str).unwrap();
        assert!(message.contains(needle), "{message}");
    }

    // A QASM syntax error reports its source line structurally.
    let bad = format!(
        "{{\"type\":\"map\",\"id\":\"syn\",\"qasm\":{},\"device\":\"qx4\"}}",
        Json::str("OPENQASM 2.0;\nqreg q[2];\nmystery q[0];\n")
    );
    let e = daemon.request(&bad);
    assert_eq!(e.get("code").and_then(Json::as_str), Some("bad_request"));
    assert_eq!(e.get("line").and_then(Json::as_u64), Some(3), "{e}");
    assert!(e
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown gate"));

    daemon.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_serves_warm_cache_hits_from_the_snapshot() {
    let dir = std::env::temp_dir().join(format!("qxmap-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot: PathBuf = dir.join("solves.qxsnap");
    let _ = std::fs::remove_file(&snapshot);

    // Boot 1: cold. Solve once, check the answer and the metrics.
    let daemon = Daemon::boot(&snapshot);
    let first = daemon.request(&map_line());
    assert_eq!(
        first.get("type").and_then(Json::as_str),
        Some("result"),
        "{first}"
    );
    assert_eq!(first.get("id").and_then(Json::as_str), Some("e2e"));
    assert_eq!(
        first.get("served_from_cache").and_then(Json::as_bool),
        Some(false)
    );
    let first_cost = first.get("cost").cloned().expect("cost breakdown");
    let first_layout = first.get("initial_layout").cloned().expect("layout");
    assert!(first
        .get("mapped_qasm")
        .and_then(Json::as_str)
        .expect("mapped circuit travels as QASM")
        .contains("OPENQASM 2.0"));

    let metrics = daemon.request("{\"type\":\"metrics\"}");
    assert_eq!(metrics.get("type").and_then(Json::as_str), Some("metrics"));
    let cache = metrics.get("cache").expect("cache stats");
    assert!(cache.get("entries").and_then(Json::as_u64).unwrap() >= 1);
    let requests = metrics.get("requests").expect("request counters");
    assert_eq!(requests.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(
        requests.get("rejected_overload").and_then(Json::as_u64),
        Some(0)
    );

    // Graceful shutdown persists the snapshot.
    daemon.shutdown_and_wait();
    assert!(snapshot.exists(), "shutdown wrote no snapshot");

    // Boot 2: warm. The identical request is a sub-millisecond cache
    // hit with the original solve's layout and cost.
    let daemon = Daemon::boot(&snapshot);
    let second = daemon.request(&map_line());
    assert_eq!(
        second.get("served_from_cache").and_then(Json::as_bool),
        Some(true),
        "{second}"
    );
    assert_eq!(second.get("cost"), Some(&first_cost));
    assert_eq!(second.get("initial_layout"), Some(&first_layout));
    let winner = second.get("winner").and_then(Json::as_str).unwrap();
    assert!(winner.starts_with("cache/"), "{winner}");
    // Sub-millisecond warm hits: `elapsed_us` is wall-clock, so a single
    // preemption on a loaded CI runner could inflate one sample past the
    // bound. The hit is repeatable, so assert the *best* of a few —
    // uncontended lookups are single-digit microseconds, three
    // consecutive >1 ms preemptions would mean a dead machine.
    let elapsed_us = (0..3)
        .map(|_| {
            let hit = daemon.request(&map_line());
            assert_eq!(
                hit.get("served_from_cache").and_then(Json::as_bool),
                Some(true)
            );
            hit.get("elapsed_us").and_then(Json::as_u64).unwrap()
        })
        .chain(second.get("elapsed_us").and_then(Json::as_u64))
        .min()
        .unwrap();
    assert!(elapsed_us < 1_000, "warm hit took {elapsed_us}us");

    let metrics = daemon.request("{\"type\":\"metrics\"}");
    let cache = metrics.get("cache").expect("cache stats");
    assert!(cache.get("hits").and_then(Json::as_u64).unwrap() >= 1);
    daemon.shutdown_and_wait();

    std::fs::remove_dir_all(&dir).ok();
}
