//! Pins the skeleton-first warm path: a repeated map request must be
//! answered from the solve cache without ever materializing a
//! [`qxmap_circuit::Circuit`], and a probe miss must fall through to the
//! ordinary solve path bit-for-bit.
//!
//! The proof uses the process-wide `qxmap_qasm::hooks::circuits_built()`
//! counter, which every circuit-materializing ingest path bumps and no
//! skeleton-only path does. The counter is global, so this file holds
//! exactly one test function — in-process concurrency would otherwise
//! blur the deltas.

use qxmap_serve::{Handled, Json, Server, ServerConfig};

const QASM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                    h q[0];\ncx q[0], q[1];\ncx q[1], q[2];\nmeasure q -> c;\n";

fn map_line(extra: &str) -> String {
    format!(
        "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\"{extra}}}",
        Json::str(QASM)
    )
}

fn reply(server: &Server, line: &str) -> Json {
    let Handled::Reply(text) = server.handle_line(line) else {
        panic!("map requests never shut the server down");
    };
    Json::parse(&text).expect("responses are valid JSON")
}

#[test]
fn warm_requests_build_no_circuit_and_misses_fall_through() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let built = qxmap_qasm::hooks::circuits_built;

    // Cold: the probe misses, the circuit materializes, the solve runs.
    let before = built();
    let cold = reply(&server, &map_line(""));
    assert_eq!(cold.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(cold.get("served_from_cache"), Some(&Json::Bool(false)));
    assert!(built() > before, "a cold request materializes the circuit");

    // Warm: the identical request answers from the skeleton probe alone.
    let before = built();
    let warm = reply(&server, &map_line(""));
    assert_eq!(warm.get("served_from_cache"), Some(&Json::Bool(true)));
    assert_eq!(warm.get("cost"), cold.get("cost"));
    assert_eq!(warm.get("initial_layout"), cold.get("initial_layout"));
    assert_eq!(built(), before, "a warm request must not build any circuit");

    // The same cache entry also warms the binary ingest path: a QXBC
    // payload with the same canonical skeleton probes to the same key.
    let circuit = qxmap_qasm::parse(QASM).unwrap();
    let encoded = qxmap_serve::base64::encode(&qxmap_qasm::encode_qxbc(&circuit));
    let before = built();
    let qxbc = reply(
        &server,
        &format!(
            "{{\"type\":\"map\",\"format\":\"qxbc\",\"qxbc\":\"{encoded}\",\"device\":\"qx4\"}}"
        ),
    );
    assert_eq!(qxbc.get("served_from_cache"), Some(&Json::Bool(true)));
    assert_eq!(qxbc.get("cost"), cold.get("cost"));
    assert_eq!(
        built(),
        before,
        "warm QXBC requests build no circuit either"
    );

    // A mismatched option is a probe miss and must fall through to the
    // full solve path — materialized circuit, fresh (uncached) answer.
    let before = built();
    let miss = reply(&server, &map_line(",\"seed\":41"));
    assert_eq!(miss.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(miss.get("served_from_cache"), Some(&Json::Bool(false)));
    assert_eq!(miss.get("cost"), cold.get("cost"));
    assert!(built() > before, "a probe miss materializes the circuit");

    // Windowed jobs skip the whole-circuit probe: the plain entry for
    // this exact circuit is warm (see above), yet the windowed variant
    // must answer through its own engine, not the cached monolithic
    // report.
    let windowed = reply(&server, &map_line(",\"windowed\":true"));
    assert_eq!(windowed.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(windowed.get("served_from_cache"), Some(&Json::Bool(false)));

    server.finish().unwrap();
}
