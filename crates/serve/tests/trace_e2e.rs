//! End-to-end tracing over the real wire: `"trace": true` attaches a
//! phase timeline to cold exact solves, warm cache hits and windowed
//! solves; the slow-request ring dumps via `{"type":"slowlog"}` and
//! mirrors admissions to the `--trace-log` JSONL file; and
//! `{"type":"metrics","format":"prometheus"}` answers with valid text
//! exposition.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qxmap_serve::Json;

const QASM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncx q[0], q[1];\ncx q[2], q[3];\ncx q[0], q[2];\ncx q[1], q[3];\n";

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn boot(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qxmap-serve"))
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("binary built by cargo");
        let stdout = child.stdout.take().expect("stdout piped");
        let announcement = BufReader::new(stdout)
            .lines()
            .next()
            .expect("the daemon announces its address")
            .expect("readable stdout");
        let parsed = Json::parse(&announcement).expect("announcement is JSON");
        let addr = parsed
            .get("addr")
            .and_then(Json::as_str)
            .expect("announced addr")
            .to_string();
        Daemon { child, addr }
    }

    fn request(&self, line: &str) -> Json {
        let stream = TcpStream::connect(&self.addr).expect("daemon is listening");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        Json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }

    fn shutdown_and_wait(mut self) {
        let ack = self.request("{\"type\":\"shutdown\"}");
        assert_eq!(ack.get("type").and_then(Json::as_str), Some("ok"));
        let status = self.child.wait().expect("daemon exits after shutdown");
        assert!(status.success(), "daemon exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn ladder_qasm(n: usize) -> String {
    let mut qasm = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{n}];\n");
    for q in 0..n - 1 {
        qasm.push_str(&format!("cx q[{}], q[{}];\n", q, q + 1));
    }
    qasm
}

/// The span paths of a wire trace, with basic shape checks: spans carry
/// start/duration, and the top-level phases sum to within the trace's
/// own `elapsed_us`.
fn checked_paths(response: &Json) -> Vec<String> {
    let trace = response.get("trace").expect("trace timeline attached");
    let elapsed = trace
        .get("elapsed_us")
        .and_then(Json::as_u64)
        .expect("trace elapsed_us");
    let spans = trace
        .get("spans")
        .and_then(Json::as_array)
        .expect("trace spans");
    assert!(!spans.is_empty(), "a traced solve records spans");
    let mut top_level_total = 0u64;
    let mut paths = Vec::new();
    for span in spans {
        let path = span
            .get("path")
            .and_then(Json::as_str)
            .expect("span path")
            .to_string();
        let start = span.get("start_us").and_then(Json::as_u64).expect("start");
        let duration = span
            .get("duration_us")
            .and_then(Json::as_u64)
            .expect("duration");
        assert!(
            start + duration <= elapsed + 1,
            "span {path} ends at {}us, past the trace's {elapsed}us",
            start + duration
        );
        if !path.contains('/') {
            top_level_total += duration;
        }
        paths.push(path);
    }
    assert!(
        top_level_total <= elapsed + 1,
        "top-level phases sum to {top_level_total}us, past the trace's {elapsed}us"
    );
    paths
}

#[test]
fn trace_timelines_cover_cold_warm_and_windowed_solves() {
    let dir = std::env::temp_dir().join(format!("qxmap-serve-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_log = dir.join("trace.jsonl");
    let _ = std::fs::remove_file(&trace_log);

    let daemon = Daemon::boot(&[
        "--trace-log",
        trace_log.to_str().expect("UTF-8 temp path"),
        "--slowlog",
        "4",
    ]);

    // Cold exact solve: ingest, queue wait and the engine race all
    // appear as named phases.
    let cold_line = format!(
        "{{\"type\":\"map\",\"id\":\"cold\",\"qasm\":{},\"device\":\"qx4\",\
         \"trace\":true,\"deadline_ms\":30000}}",
        Json::str(QASM)
    );
    let cold = daemon.request(&cold_line);
    assert_eq!(
        cold.get("type").and_then(Json::as_str),
        Some("result"),
        "{cold}"
    );
    assert_eq!(
        cold.get("served_from_cache").and_then(Json::as_bool),
        Some(false)
    );
    let paths = checked_paths(&cold);
    for expected in ["ingest/parse", "ingest/probe", "ingest", "queue", "race"] {
        assert!(
            paths.iter().any(|p| p == expected),
            "cold trace misses phase {expected:?}: {paths:?}"
        );
    }
    assert!(
        paths.iter().any(|p| p.starts_with("race/")),
        "the race timeline records its engines: {paths:?}"
    );

    // Warm hit of the identical circuit: served from the skeleton-first
    // probe, with a timeline of the lookup itself (not the original
    // solve's).
    let warm_line = format!(
        "{{\"type\":\"map\",\"id\":\"warm\",\"qasm\":{},\"device\":\"qx4\",\
         \"trace\":true,\"deadline_ms\":30000}}",
        Json::str(QASM)
    );
    let warm = daemon.request(&warm_line);
    assert_eq!(
        warm.get("served_from_cache").and_then(Json::as_bool),
        Some(true),
        "{warm}"
    );
    let paths = checked_paths(&warm);
    for expected in ["ingest/parse", "ingest/probe", "ingest"] {
        assert!(
            paths.iter().any(|p| p == expected),
            "warm trace misses phase {expected:?}: {paths:?}"
        );
    }
    assert!(
        !paths.iter().any(|p| p == "race"),
        "a warm hit never raced: {paths:?}"
    );

    // An untraced request carries no timeline.
    let plain = format!(
        "{{\"type\":\"map\",\"id\":\"plain\",\"qasm\":{},\"device\":\"qx4\",\
         \"deadline_ms\":30000}}",
        Json::str(QASM)
    );
    assert!(daemon.request(&plain).get("trace").is_none());

    // A 52-qubit windowed solve reports the window pipeline's phases.
    let windowed_line = format!(
        "{{\"type\":\"map\",\"id\":\"win\",\"qasm\":{},\"device\":\"heavy-hex-4\",\
         \"windowed\":true,\"trace\":true,\"deadline_ms\":60000}}",
        Json::str(ladder_qasm(52))
    );
    let windowed = daemon.request(&windowed_line);
    assert_eq!(
        windowed.get("type").and_then(Json::as_str),
        Some("result"),
        "{windowed}"
    );
    let paths = checked_paths(&windowed);
    for expected in [
        "ingest",
        "queue",
        "windows",
        "windows/slice",
        "windows/plan",
        "windows/solve",
        "windows/stitch",
    ] {
        assert!(
            paths.iter().any(|p| p == expected),
            "windowed trace misses phase {expected:?}: {paths:?}"
        );
    }

    // The slowlog ranks the windowed solve slowest and keeps its trace.
    let slowlog = daemon.request("{\"type\":\"slowlog\",\"id\":\"sl\"}");
    assert_eq!(
        slowlog.get("type").and_then(Json::as_str),
        Some("slowlog"),
        "{slowlog}"
    );
    assert_eq!(slowlog.get("id").and_then(Json::as_str), Some("sl"));
    let entries = slowlog
        .get("entries")
        .and_then(Json::as_array)
        .expect("slowlog entries");
    assert!(!entries.is_empty());
    let latencies: Vec<u64> = entries
        .iter()
        .map(|e| e.get("latency_us").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(
        latencies.windows(2).all(|w| w[0] >= w[1]),
        "slowlog dumps slowest first: {latencies:?}"
    );
    assert_eq!(
        entries[0].get("id").and_then(Json::as_str),
        Some("win"),
        "the windowed solve is the slowest request seen: {slowlog}"
    );
    assert!(
        entries[0].get("trace").is_some(),
        "slowlog entries keep their traces: {slowlog}"
    );

    // Prometheus exposition from the same counters.
    let prom = daemon.request("{\"type\":\"metrics\",\"format\":\"prometheus\"}");
    assert_eq!(
        prom.get("format").and_then(Json::as_str),
        Some("prometheus")
    );
    let body = prom
        .get("body")
        .and_then(Json::as_str)
        .expect("exposition body");
    for needle in [
        "# TYPE qxmap_requests_received_total counter",
        "# HELP qxmap_request_latency_seconds",
        "qxmap_request_latency_seconds_bucket{le=\"+Inf\"}",
        "qxmap_requests_rejected_total{reason=\"overloaded\"} 0",
        "qxmap_build_info{version=",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    // Every non-comment line is `name[{labels}] value`.
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line:?}");
    }

    // The JSON metrics grew the satellite sections.
    let metrics = daemon.request("{\"type\":\"metrics\"}");
    assert!(metrics.get("uptime_us").and_then(Json::as_u64).is_some());
    assert_eq!(
        metrics.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let rejected = metrics
        .get("requests")
        .and_then(|r| r.get("rejected"))
        .expect("rejected-by-reason map");
    for reason in [
        "parse",
        "bad_request",
        "overloaded",
        "deadline_expired",
        "shutting_down",
    ] {
        assert!(rejected.get(reason).and_then(Json::as_u64).is_some());
    }
    let phases = metrics.get("phases").expect("per-phase histograms");
    assert!(
        phases
            .get("warm_hit")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "{metrics}"
    );
    assert!(
        phases
            .get("queue_wait")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    let engines = metrics.get("engines").expect("per-engine counters");
    let wins: u64 = engines
        .as_object()
        .expect("engines object")
        .iter()
        .map(|(_, stats)| stats.get("wins").and_then(Json::as_u64).unwrap())
        .sum();
    assert!(wins >= 2, "cold + windowed solves record wins: {metrics}");

    daemon.shutdown_and_wait();

    // The trace log holds one parseable JSON object per line, and the
    // slowest entry kept its trace.
    let logged = std::fs::read_to_string(&trace_log).expect("trace log written");
    let mut traced = 0usize;
    let mut lines = 0usize;
    for line in logged.lines() {
        let entry = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL {line:?}: {e}"));
        assert!(entry.get("latency_us").and_then(Json::as_u64).is_some());
        if entry.get("trace").is_some() {
            traced += 1;
        }
        lines += 1;
    }
    assert!(lines >= 1, "ring admissions reach the trace log");
    assert!(traced >= 1, "traced requests log their timelines");

    std::fs::remove_dir_all(&dir).ok();
}
