//! Crash-safety of the warm state, end to end: boot the daemon with a
//! cache journal, push traffic, `kill -9` the process (no graceful
//! shutdown, no snapshot), restart on the same journal, and assert the
//! replayed cache still answers the pre-crash requests as warm hits —
//! losing at most the bounded unsynced tail.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qxmap_serve::Json;

/// The daemon under test; killed on drop so a failing assertion never
/// leaks a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn boot(journal: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_qxmap-serve"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--journal",
                journal.to_str().expect("UTF-8 temp path"),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("binary built by cargo");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let announcement = lines
            .next()
            .expect("the daemon announces its address")
            .expect("readable stdout");
        let parsed = Json::parse(&announcement).expect("announcement is JSON");
        assert_eq!(
            parsed.get("type").and_then(Json::as_str),
            Some("listening"),
            "{announcement}"
        );
        let addr = parsed
            .get("addr")
            .and_then(Json::as_str)
            .expect("announced addr")
            .to_string();
        Daemon { child, addr }
    }

    /// One request line over its own connection; returns the parsed
    /// response.
    fn request(&self, line: &str) -> Json {
        let stream = TcpStream::connect(&self.addr).expect("daemon is listening");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        Json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }

    /// `kill -9`: no shutdown request, no drain, no snapshot. The whole
    /// point of the journal is surviving exactly this.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL lands");
        self.child.wait().expect("killed child is reaped");
    }

    fn shutdown_and_wait(mut self) {
        let ack = self.request("{\"type\":\"shutdown\"}");
        assert_eq!(ack.get("type").and_then(Json::as_str), Some("ok"));
        let status = self.child.wait().expect("daemon exits after shutdown");
        assert!(status.success(), "daemon exited with {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// `count` distinct 4-qubit circuits: each appends one more CX to the
/// base ladder, so every one has its own canonical skeleton — and its
/// own cache entry, and its own journal record.
fn distinct_lines(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            let mut qasm = String::from(
                "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncx q[0], q[1];\n",
            );
            for k in 0..=i {
                qasm.push_str(&format!("cx q[{}], q[{}];\n", k % 3, k % 3 + 1));
            }
            format!(
                "{{\"type\":\"map\",\"id\":\"crash-{i}\",\"qasm\":{},\"device\":\"qx4\",\
                 \"deadline_ms\":30000}}",
                Json::str(&qasm)
            )
        })
        .collect()
}

#[test]
fn sigkill_loses_at_most_the_unsynced_tail_and_restart_serves_warm_hits() {
    let dir = std::env::temp_dir().join(format!("qxmap-serve-e2e-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal: PathBuf = dir.join("solves.qxjournal");
    let _ = std::fs::remove_file(&journal);

    const SOLVES: usize = 6;
    let lines = distinct_lines(SOLVES);

    // Boot 1: cold, journaling. Every response below was delivered to a
    // client before the kill, so its solve is "acknowledged work".
    let daemon = Daemon::boot(&journal);
    for line in &lines {
        let r = daemon.request(line);
        assert_eq!(r.get("type").and_then(Json::as_str), Some("result"), "{r}");
        assert_eq!(
            r.get("served_from_cache").and_then(Json::as_bool),
            Some(false)
        );
    }
    let first = daemon.request(&lines[0]);
    let first_cost = first.get("cost").cloned().expect("cost breakdown");
    let first_layout = first.get("initial_layout").cloned().expect("layout");

    // The journal writer is a background thread fed over a channel; give
    // it a beat to drain, then pull the rug. No shutdown, no snapshot.
    std::thread::sleep(Duration::from_millis(300));
    daemon.sigkill();
    assert!(journal.exists(), "journaling daemon wrote no journal");

    // Boot 2: replay the journal. Bounded loss — the kill may have eaten
    // an unsynced record or two, never the whole file.
    let daemon = Daemon::boot(&journal);
    let metrics = daemon.request("{\"type\":\"metrics\"}");
    let entries = metrics
        .get("cache")
        .and_then(|c| c.get("entries"))
        .and_then(Json::as_u64)
        .expect("cache stats");
    assert!(
        entries >= (SOLVES - 2) as u64,
        "kill -9 lost more than the bounded tail: {entries} of {SOLVES} \
         journaled solves survived"
    );

    // The pre-crash request is a warm hit with the original answer.
    let second = daemon.request(&lines[0]);
    assert_eq!(
        second.get("served_from_cache").and_then(Json::as_bool),
        Some(true),
        "journal replay must warm the pre-crash solve: {second}"
    );
    assert_eq!(second.get("cost"), Some(&first_cost));
    assert_eq!(second.get("initial_layout"), Some(&first_layout));
    // Sub-millisecond warm hits, best-of-3 to ride out CI preemption.
    let elapsed_us = (0..3)
        .map(|_| {
            let hit = daemon.request(&lines[0]);
            assert_eq!(
                hit.get("served_from_cache").and_then(Json::as_bool),
                Some(true)
            );
            hit.get("elapsed_us").and_then(Json::as_u64).unwrap()
        })
        .chain(second.get("elapsed_us").and_then(Json::as_u64))
        .min()
        .unwrap();
    assert!(elapsed_us < 1_000, "warm hit took {elapsed_us}us");

    // The survivor shuts down gracefully on the same journal.
    daemon.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).ok();
}
