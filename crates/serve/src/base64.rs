//! Minimal standard-alphabet base64 (RFC 4648, with `=` padding) for
//! carrying QXBC binary payloads inside line-delimited JSON. Encoding is
//! infallible; decoding rejects anything but canonical base64 — wrong
//! length, stray characters, misplaced padding — with a description,
//! because a serving daemon treats every payload byte as hostile until
//! proven otherwise.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as standard base64 with padding.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let word = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let sextet = |i: u32| ALPHABET[(word >> (18 - 6 * i)) as usize & 0x3f] as char;
        out.push(sextet(0));
        out.push(sextet(1));
        out.push(if chunk.len() > 1 { sextet(2) } else { '=' });
        out.push(if chunk.len() > 2 { sextet(3) } else { '=' });
    }
    out
}

/// Decodes canonical, padded base64.
///
/// # Errors
///
/// Returns a description of the first defect: a length that is not a
/// multiple of four, a character outside the alphabet, or padding
/// anywhere but the final one or two positions.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64 length must be a multiple of 4".to_string());
    }
    let padding = bytes.iter().rev().take_while(|&&b| b == b'=').count();
    if padding > 2 {
        return Err("more than two padding characters".to_string());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let mut word = 0u32;
        let mut octets = 3;
        for (j, &c) in chunk.iter().enumerate() {
            let value = if c == b'=' {
                // Padding is only valid in the last chunk's tail, and a
                // chunk like `a===` never decodes to whole bytes.
                if !last || j < 2 || chunk[j..].iter().any(|&t| t != b'=') {
                    return Err("misplaced base64 padding".to_string());
                }
                octets = octets.min(j * 6 / 8);
                0
            } else {
                sextet_of(c).ok_or_else(|| format!("invalid base64 character {:?}", c as char))?
            };
            word = (word << 6) | u32::from(value);
        }
        out.push((word >> 16) as u8);
        if octets > 1 {
            out.push((word >> 8) as u8);
        }
        if octets > 2 {
            out.push(word as u8);
        }
    }
    Ok(out)
}

fn sextet_of(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_lengths() {
        // RFC 4648 vectors.
        for (plain, encoded) in [
            (&b""[..], ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain), encoded);
            assert_eq!(decode(encoded).unwrap(), plain);
        }
        // Every byte value survives.
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["abc", "a===", "ab=c", "====", "ab!d", "Zg==Zg=="] {
            assert!(decode(bad).is_err(), "{bad}");
        }
    }
}
