//! The `qxmap-serve` daemon: a long-running mapping service over the
//! line-delimited JSON protocol (see `qxmap_serve::proto`).
//!
//! ```text
//! qxmap-serve [--listen ADDR] [--snapshot PATH] [--journal PATH]
//!             [--workers N] [--queue-depth N] [--batch N] [--pipeline N]
//!             [--slowlog N] [--trace-log PATH]
//! ```
//!
//! With `--listen` the daemon binds a TCP listener (use port 0 for an
//! ephemeral port) and announces the bound address on stdout as
//! `{"type":"listening","addr":"..."}` — machine-readable, so harnesses
//! can connect without racing the bind. Without `--listen` it serves
//! stdin/stdout. With `--snapshot` it warm-starts the solve cache from
//! the file on boot (a missing file is a cold start; a corrupted or
//! version-mismatched one is reported and skipped) and persists the
//! cache back on graceful shutdown (a `shutdown` request, or stdin EOF
//! in stdio mode). With `--journal` it additionally replays the
//! append-only cache journal on boot (torn or corrupt records are
//! rejected individually) and appends every new solve to it in the
//! background, so crash-killed processes lose only the unsynced tail.
//! `--pipeline` caps how many mapping jobs one connection may have in
//! flight at once. `--slowlog` sizes the slow-request ring dumped by
//! `{"type":"slowlog"}` (default 8), and `--trace-log` appends every
//! ring admission as a JSON line to the given file.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use qxmap_serve::{Server, ServerConfig};

struct Args {
    listen: Option<String>,
    config: ServerConfig,
}

const USAGE: &str = "usage: qxmap-serve [--listen ADDR] [--snapshot PATH] [--journal PATH] \
                     [--workers N] [--queue-depth N] [--batch N] [--pipeline N] \
                     [--slowlog N] [--trace-log PATH]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--snapshot" => args.config.snapshot = Some(PathBuf::from(value("--snapshot")?)),
            "--journal" => args.config.journal = Some(PathBuf::from(value("--journal")?)),
            "--workers" => {
                args.config.workers = parse_positive("--workers", &value("--workers")?)?;
            }
            "--queue-depth" => {
                args.config.queue_depth =
                    parse_positive("--queue-depth", &value("--queue-depth")?)?;
            }
            "--batch" => {
                args.config.batch_max = parse_positive("--batch", &value("--batch")?)?;
            }
            "--pipeline" => {
                args.config.pipeline_depth = parse_positive("--pipeline", &value("--pipeline")?)?;
            }
            "--slowlog" => {
                args.config.slowlog_capacity = parse_positive("--slowlog", &value("--slowlog")?)?;
            }
            "--trace-log" => {
                args.config.trace_log = Some(PathBuf::from(value("--trace-log")?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_positive(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer, got {value:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let server = Server::start(args.config);
    match server.warm_start() {
        Ok(warm) => {
            if warm.snapshot_entries > 0 {
                eprintln!(
                    "qxmap-serve: warm start with {} cached solves",
                    warm.snapshot_entries
                );
            }
            if let Some(replay) = warm.journal {
                eprintln!(
                    "qxmap-serve: journal replay admitted {} entries \
                     ({} rejected{}{})",
                    replay.admitted,
                    replay.rejected,
                    if replay.torn {
                        ", torn tail truncated"
                    } else {
                        ""
                    },
                    if replay.reset { ", file reset" } else { "" },
                );
            }
        }
        Err(message) => eprintln!("qxmap-serve: starting cold: {message}"),
    }

    let served = match &args.listen {
        Some(addr) => match TcpListener::bind(addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(addr) => println!("{{\"type\":\"listening\",\"addr\":\"{addr}\"}}"),
                    Err(e) => eprintln!("qxmap-serve: local_addr: {e}"),
                }
                server.serve_tcp(listener)
            }
            Err(e) => {
                eprintln!("qxmap-serve: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => server.serve_stdio(),
    };
    if let Err(e) = served {
        eprintln!("qxmap-serve: serve loop failed: {e}");
    }

    match server.finish() {
        Ok(Some(entries)) => eprintln!("qxmap-serve: snapshotted {entries} cached solves"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("qxmap-serve: persisting warm state failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
