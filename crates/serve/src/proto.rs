//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, over stdin/stdout
//! or a TCP connection. Three request types:
//!
//! * `{"type": "map", "qasm": "...", "device": ..., ...}` — map an
//!   OpenQASM 2.0 circuit onto a device. The circuit may instead arrive
//!   pre-compiled as `"format": "qxbc"` with a `"qxbc"` field holding
//!   the base64-encoded [QXBC](qxmap_qasm::decode_qxbc) bytes — the
//!   daemon skips QASM parsing entirely. Optional fields: `id` (echoed
//!   verbatim in the response), `deadline_ms`, `conflict_budget`,
//!   `guarantee` (`"optimal"` / `"best_effort"`), `strategy`
//!   (`"before_every_gate"`, `"disjoint_qubits"`, `"odd_gates"`,
//!   `"qubit_triangle"`, `{"window": k}`, `{"custom": [...]}`),
//!   `subsets` (bool), `upper_bound`, `seed`, and `windowed` — `true`
//!   (default options) or `{"max_window_qubits": k, "sat_bridges": b}`
//!   to answer through the window-decomposed engine
//!   ([`qxmap_window::WindowedEngine`]), whose response carries a
//!   `windows` array of per-window optimality certificates. When the
//!   field is *absent*, the server auto-selects: a best-effort request
//!   on a device beyond the exact regime
//!   ([`qxmap_core::MAX_EXACT_QUBITS`]) answers windowed with default
//!   options, everything else monolithically; `"windowed": false`
//!   explicitly vetoes the auto-selection.
//! * `{"type": "metrics"}` — cache statistics, queue state, latency
//!   counters.
//! * `{"type": "shutdown"}` — graceful shutdown: queued work finishes,
//!   the solve cache is snapshotted, the daemon exits.
//!
//! The `device` field is either a name from the topology library
//! (`"qx4"`, `"ring-6"`, `"heavy-hex-1"`, …) or an object
//! `{"qubits": m, "edges": [[c, t], ...]}`; both accept an optional
//! `"calibration"` object with per-edge cost overrides (`"swap"`,
//! `"reversal"`, `"cnot"`: arrays of `[a, b, cost]`) and/or measured
//! two-qubit error rates (`"swap_errors"`: arrays of `[a, b, rate]`,
//! ingested by negative-log-fidelity scaling — see
//! [`qxmap_arch::calibration`]). Any calibration switches the request
//! onto an explicit hardware-derived [`DeviceModel`].
//!
//! Successful maps answer `{"type": "result", ...}` carrying the
//! [`MapReport`] (cost breakdown, layouts, winner, `served_from_cache`,
//! elapsed/runtime in microseconds, the mapped circuit as QASM);
//! failures answer `{"type": "error", "code": ..., "message": ...}`
//! with one stable code per [`MapperError`] variant plus the transport
//! codes `parse`, `bad_request`, `overloaded`, `deadline_expired` (the
//! job's deadline ran out while it waited in the admission queue — it
//! was shed, never dispatched) and `shutting_down`.
//! QASM syntax and conversion rejections additionally carry a `"line"`
//! field when the parser attributed the defect to a source line.
//!
//! Parsing a `map` request is deliberately *lazy about the circuit*: the
//! payload is validated and its canonical
//! [`CircuitSkeleton`] computed in one
//! pass, but the [`qxmap_circuit::Circuit`] itself is only materialized
//! by [`MapJob::materialize`] — after the server's skeleton-first
//! [`MapJob::cache_probe`] has missed the solve cache.

use std::time::Duration;

use qxmap_arch::{calibration, devices, CouplingMap, DeviceModel, Layout};
use qxmap_circuit::CircuitSkeleton;
use qxmap_core::{Strategy, MAX_EXACT_QUBITS};
use qxmap_map::{CacheProbe, Guarantee, MapReport, MapRequest, MapperError, WindowCertificate};
use qxmap_window::WindowOptions;

use crate::json::Json;

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// A mapping job, ready to enqueue.
    Map(Box<MapJob>),
    /// An immediate metrics read.
    Metrics {
        /// The request's `id`, echoed in the response.
        id: Option<Json>,
        /// `"format": "prometheus"` asks for text exposition instead of
        /// the structured JSON snapshot.
        prometheus: bool,
    },
    /// A dump of the slow-request ring: the N slowest completed solves,
    /// with their traces when the request carried `"trace": true`.
    Slowlog {
        /// The request's `id`, echoed in the response.
        id: Option<Json>,
    },
    /// A graceful-shutdown demand.
    Shutdown {
        /// The request's `id`, echoed in the response.
        id: Option<Json>,
    },
}

/// A fully validated mapping job.
///
/// The circuit payload is held in its ingest form (a parsed QASM
/// statement stream, or raw QXBC bytes) alongside its canonical
/// skeleton; the [`qxmap_circuit::Circuit`] is only built by
/// [`MapJob::materialize`], so a solve-cache hit on
/// [`MapJob::cache_probe`] answers without ever constructing one.
#[derive(Debug)]
pub struct MapJob {
    /// The request's `id` field, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The validated-but-unmaterialized circuit payload.
    ingest: Ingest,
    /// The canonical skeleton, computed in the same pass that validated
    /// the payload.
    skeleton: CircuitSkeleton,
    /// The validated device.
    device: ParsedDevice,
    /// The request options, applied identically to the cache probe and
    /// the materialized request.
    options: MapOptions,
    /// The request's window-decomposition choice; resolved against the
    /// device and guarantee by [`MapJob::windowed_options`].
    pub windowed: WindowedChoice,
}

/// How a map request chose (or declined to choose) the window-decomposed
/// engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowedChoice {
    /// No `windowed` field was sent: the server auto-selects — windowed
    /// with default options for best-effort requests on devices beyond
    /// the exact regime, monolithic otherwise.
    Auto,
    /// `"windowed": false` — an explicit veto; always monolithic, even
    /// out of regime.
    Off,
    /// `"windowed": true` or an options object — always windowed.
    On(WindowOptions),
}

/// The circuit payload after validation, before materialization.
#[derive(Debug)]
enum Ingest {
    /// A parsed QASM statement stream (conversion already validated).
    Text(qxmap_qasm::Program),
    /// Checksummed QXBC bytes (framing and records already validated).
    Qxbc(Vec<u8>),
}

/// Request options in wire form. `None` means "not sent" — both the
/// probe and the materialized request then keep the library defaults,
/// which [`CacheProbe`] and [`MapRequest`] pin to the same values.
#[derive(Debug, Default)]
struct MapOptions {
    guarantee: Option<Guarantee>,
    strategy: Option<Strategy>,
    subsets: Option<bool>,
    deadline: Option<Duration>,
    conflict_budget: Option<u64>,
    upper_bound: Option<u64>,
    seed: Option<u64>,
    trace: bool,
}

impl MapJob {
    /// The per-request deadline, if one was sent.
    pub fn deadline(&self) -> Option<Duration> {
        self.options.deadline
    }

    /// Whether the request asked for a `trace` timeline (`"trace": true`).
    ///
    /// Deliberately *not* part of [`MapJob::cache_probe`]: tracing never
    /// affects cache identity, so a traced request still hits the warm
    /// path (and gets a timeline of the lookup itself).
    pub fn wants_trace(&self) -> bool {
        self.options.trace
    }

    /// The payload's canonical skeleton.
    pub fn skeleton(&self) -> &CircuitSkeleton {
        &self.skeleton
    }

    /// Resolves the job's [`WindowedChoice`] against the device and
    /// guarantee: `Some(options)` answers through the window-decomposed
    /// engine, `None` through the monolithic portfolio. An explicit
    /// choice always wins; [`WindowedChoice::Auto`] selects windowed
    /// exactly when the device is beyond the exact regime
    /// ([`MAX_EXACT_QUBITS`]) *and* the request does not demand
    /// [`Guarantee::Optimal`] (the windowed engine cannot certify
    /// whole-circuit optimality, so optimal requests keep the portfolio
    /// and its honest `optimality_unavailable` answer).
    pub fn windowed_options(&self) -> Option<WindowOptions> {
        match self.windowed {
            WindowedChoice::On(options) => Some(options),
            WindowedChoice::Off => None,
            WindowedChoice::Auto => {
                let qubits = match &self.device {
                    ParsedDevice::Named(cm) => cm.num_qubits(),
                    ParsedDevice::Model(model) => model.num_qubits(),
                };
                let optimal = self.options.guarantee == Some(Guarantee::Optimal);
                (qubits > MAX_EXACT_QUBITS && !optimal).then(WindowOptions::default)
            }
        }
    }

    /// The solve-cache probe for the skeleton-first warm path, or `None`
    /// for jobs that resolve windowed (the windowed engine caches
    /// per-window results under its own keys, not whole-circuit ones).
    pub fn cache_probe(&self) -> Option<CacheProbe> {
        if self.windowed_options().is_some() {
            return None;
        }
        let mut probe = match &self.device {
            ParsedDevice::Named(cm) => CacheProbe::new(self.skeleton.clone(), cm),
            ParsedDevice::Model(model) => CacheProbe::for_model(self.skeleton.clone(), model),
        };
        if let Some(g) = self.options.guarantee {
            probe = probe.with_guarantee(g);
        }
        if let Some(s) = &self.options.strategy {
            probe = probe.with_strategy(s.clone());
        }
        if let Some(on) = self.options.subsets {
            probe = probe.with_subsets(on);
        }
        if let Some(d) = self.options.deadline {
            probe = probe.with_deadline(d);
        }
        if let Some(b) = self.options.conflict_budget {
            probe = probe.with_conflict_budget(Some(b));
        }
        if let Some(b) = self.options.upper_bound {
            probe = probe.with_upper_bound(Some(b));
        }
        if let Some(s) = self.options.seed {
            probe = probe.with_seed(s);
        }
        Some(probe)
    }

    /// Builds the engine-ready [`MapRequest`] — the first (and only)
    /// point the circuit is materialized.
    ///
    /// # Errors
    ///
    /// Parsing already validated the payload, so failure here means the
    /// job was tampered with between parse and materialize; it is still
    /// reported as a structured rejection rather than a panic.
    pub fn materialize(&self) -> Result<MapRequest, Rejection> {
        let circuit = match &self.ingest {
            Ingest::Text(program) => {
                qxmap_qasm::to_circuit(program).map_err(|e| invalid_qasm(self.id.clone(), &e))?
            }
            Ingest::Qxbc(bytes) => qxmap_qasm::decode_qxbc(bytes).map_err(|e| {
                Rejection::bad_request(self.id.clone(), format!("invalid QXBC payload: {e}"))
            })?,
        };
        let mut request = match &self.device {
            ParsedDevice::Named(cm) => MapRequest::new(circuit, cm.clone()),
            ParsedDevice::Model(model) => MapRequest::for_model(circuit, model.clone()),
        };
        if let Some(g) = self.options.guarantee {
            request = request.with_guarantee(g);
        }
        if let Some(s) = &self.options.strategy {
            request = request.with_strategy(s.clone());
        }
        if let Some(on) = self.options.subsets {
            request = request.with_subsets(on);
        }
        if let Some(d) = self.options.deadline {
            request = request.with_deadline(d);
        }
        if let Some(b) = self.options.conflict_budget {
            request = request.with_conflict_budget(Some(b));
        }
        if let Some(b) = self.options.upper_bound {
            request = request.with_upper_bound(Some(b));
        }
        if let Some(s) = self.options.seed {
            request = request.with_seed(s);
        }
        Ok(request)
    }
}

/// A structured protocol-level rejection (before any engine ran).
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// The offending request's `id`, echoed when it was recoverable.
    pub id: Option<Json>,
    /// The 1-based source line a QASM parse defect was attributed to.
    pub line: Option<usize>,
}

impl Rejection {
    fn bad_request(id: Option<Json>, message: impl Into<String>) -> Rejection {
        Rejection {
            code: "bad_request",
            message: message.into(),
            id,
            line: None,
        }
    }
}

/// A QASM parse/conversion rejection, carrying the parser's line
/// attribution as a structured field (clients should not have to scrape
/// it out of the message text).
fn invalid_qasm(id: Option<Json>, error: &qxmap_qasm::ParseQasmError) -> Rejection {
    Rejection {
        line: error.line(),
        ..Rejection::bad_request(id, format!("invalid QASM: {error}"))
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// Returns a [`Rejection`] (code `parse` for malformed JSON, otherwise
/// `bad_request`) describing the first defect.
pub fn parse_request(line: &str) -> Result<Request, Rejection> {
    let value = Json::parse(line).map_err(|e| Rejection {
        code: "parse",
        message: format!("malformed JSON: {e}"),
        id: None,
        line: None,
    })?;
    if value.as_object().is_none() {
        return Err(Rejection::bad_request(
            None,
            "request must be a JSON object",
        ));
    }
    let id = value.get("id").cloned();
    let Some(kind) = value.get("type").and_then(Json::as_str) else {
        return Err(Rejection::bad_request(
            id,
            "missing request field \"type\" (one of \"map\", \"metrics\", \"slowlog\", \"shutdown\")",
        ));
    };
    match kind {
        "metrics" => {
            reject_unknown_keys(&value, &["type", "id", "format"], id.clone())?;
            let prometheus = match value.get("format") {
                None => false,
                Some(f) => match f.as_str() {
                    Some("json") => false,
                    Some("prometheus") => true,
                    _ => {
                        return Err(Rejection::bad_request(
                            id,
                            "metrics \"format\" must be \"json\" or \"prometheus\"",
                        ))
                    }
                },
            };
            Ok(Request::Metrics { id, prometheus })
        }
        "slowlog" => {
            reject_unknown_keys(&value, &["type", "id"], id.clone())?;
            Ok(Request::Slowlog { id })
        }
        "shutdown" => {
            reject_unknown_keys(&value, &["type", "id"], id.clone())?;
            Ok(Request::Shutdown { id })
        }
        "map" => parse_map(&value, id).map(|job| Request::Map(Box::new(job))),
        other => Err(Rejection::bad_request(
            id,
            format!("unknown request type {other:?}"),
        )),
    }
}

/// Unknown keys are rejected rather than ignored: a production client
/// typo-ing `"deadine_ms"` should hear about it, not silently run
/// without a deadline.
fn reject_unknown_keys(value: &Json, allowed: &[&str], id: Option<Json>) -> Result<(), Rejection> {
    let Some(pairs) = value.as_object() else {
        return Err(Rejection::bad_request(id, "request must be a JSON object"));
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(Rejection::bad_request(
                id,
                format!("unknown field {key:?} (allowed: {allowed:?})"),
            ));
        }
    }
    Ok(())
}

const MAP_KEYS: &[&str] = &[
    "type",
    "id",
    "format",
    "qasm",
    "qxbc",
    "device",
    "guarantee",
    "strategy",
    "subsets",
    "deadline_ms",
    "conflict_budget",
    "upper_bound",
    "seed",
    "windowed",
    "trace",
];

fn parse_map(value: &Json, id: Option<Json>) -> Result<MapJob, Rejection> {
    reject_unknown_keys(value, MAP_KEYS, id.clone())?;
    let bad = |message: String| Rejection::bad_request(id.clone(), message);

    let (ingest, skeleton) = parse_payload(value, &id)?;

    let Some(device) = value.get("device") else {
        return Err(bad("missing field \"device\"".to_string()));
    };
    let device = parse_device(device).map_err(&bad)?;

    let mut options = MapOptions::default();
    if let Some(guarantee) = value.get("guarantee") {
        options.guarantee = Some(match guarantee.as_str() {
            Some("optimal") => Guarantee::Optimal,
            Some("best_effort") => Guarantee::BestEffort,
            _ => {
                return Err(bad(
                    "\"guarantee\" must be \"optimal\" or \"best_effort\"".to_string()
                ))
            }
        });
    }
    if let Some(strategy) = value.get("strategy") {
        options.strategy = Some(parse_strategy(strategy).map_err(&bad)?);
    }
    if let Some(subsets) = value.get("subsets") {
        let on = subsets
            .as_bool()
            .ok_or_else(|| bad("\"subsets\" must be a boolean".to_string()))?;
        options.subsets = Some(on);
    }
    if let Some(deadline) = value.get("deadline_ms") {
        let ms = deadline
            .as_u64()
            .filter(|&ms| ms > 0)
            .ok_or_else(|| bad("\"deadline_ms\" must be a positive integer".to_string()))?;
        options.deadline = Some(Duration::from_millis(ms));
    }
    if let Some(budget) = value.get("conflict_budget") {
        let conflicts = budget
            .as_u64()
            .ok_or_else(|| bad("\"conflict_budget\" must be a non-negative integer".to_string()))?;
        options.conflict_budget = Some(conflicts);
    }
    if let Some(bound) = value.get("upper_bound") {
        let bound = bound
            .as_u64()
            .ok_or_else(|| bad("\"upper_bound\" must be a non-negative integer".to_string()))?;
        options.upper_bound = Some(bound);
    }
    if let Some(seed) = value.get("seed") {
        let seed = seed
            .as_u64()
            .ok_or_else(|| bad("\"seed\" must be a non-negative integer".to_string()))?;
        options.seed = Some(seed);
    }
    if let Some(trace) = value.get("trace") {
        options.trace = trace
            .as_bool()
            .ok_or_else(|| bad("\"trace\" must be a boolean".to_string()))?;
    }
    let windowed = match value.get("windowed") {
        Some(w) => parse_windowed(w).map_err(&bad)?,
        None => WindowedChoice::Auto,
    };
    Ok(MapJob {
        id,
        ingest,
        skeleton,
        device,
        options,
        windowed,
    })
}

/// Validates the circuit payload (`"qasm"` text by default, base64 QXBC
/// bytes under `"format": "qxbc"`) and computes its canonical skeleton
/// in the same pass — without materializing a circuit.
fn parse_payload(value: &Json, id: &Option<Json>) -> Result<(Ingest, CircuitSkeleton), Rejection> {
    let bad = |message: String| Rejection::bad_request(id.clone(), message);
    let format = match value.get("format") {
        None => "qasm",
        Some(f) => f
            .as_str()
            .filter(|f| ["qasm", "qxbc"].contains(f))
            .ok_or_else(|| bad("\"format\" must be \"qasm\" or \"qxbc\"".to_string()))?,
    };
    if format == "qxbc" {
        if value.get("qasm").is_some() {
            return Err(bad(
                "\"qasm\" and \"format\": \"qxbc\" are mutually exclusive".to_string(),
            ));
        }
        let Some(encoded) = value.get("qxbc").and_then(Json::as_str) else {
            return Err(bad(
                "missing string field \"qxbc\" (base64 QXBC bytes)".to_string()
            ));
        };
        let bytes = crate::base64::decode(encoded)
            .map_err(|e| bad(format!("invalid \"qxbc\" base64: {e}")))?;
        let skeleton = qxmap_qasm::decode_qxbc_skeleton(&bytes)
            .map_err(|e| bad(format!("invalid QXBC payload: {e}")))?;
        Ok((Ingest::Qxbc(bytes), skeleton))
    } else {
        if value.get("qxbc").is_some() {
            return Err(bad(
                "field \"qxbc\" requires \"format\": \"qxbc\"".to_string()
            ));
        }
        let Some(qasm) = value.get("qasm").and_then(Json::as_str) else {
            return Err(bad("missing string field \"qasm\"".to_string()));
        };
        let program =
            qxmap_qasm::parse_program_fast(qasm).map_err(|e| invalid_qasm(id.clone(), &e))?;
        let skeleton =
            qxmap_qasm::to_skeleton(&program).map_err(|e| invalid_qasm(id.clone(), &e))?;
        Ok((Ingest::Text(program), skeleton))
    }
}

/// `true`, `false`, or `{"max_window_qubits": k, "sat_bridges": b}` —
/// an *absent* field never reaches here (it parses to
/// [`WindowedChoice::Auto`]), so `false` is a recorded veto, not a
/// default.
fn parse_windowed(value: &Json) -> Result<WindowedChoice, String> {
    if let Some(on) = value.as_bool() {
        return Ok(if on {
            WindowedChoice::On(WindowOptions::default())
        } else {
            WindowedChoice::Off
        });
    }
    let Some(pairs) = value.as_object() else {
        return Err("\"windowed\" must be a boolean or an options object".to_string());
    };
    for (key, _) in pairs {
        if !["max_window_qubits", "sat_bridges"].contains(&key.as_str()) {
            return Err(format!("unknown windowed field {key:?}"));
        }
    }
    let mut options = WindowOptions::default();
    if let Some(k) = value.get("max_window_qubits") {
        options.max_window_qubits = k
            .as_usize()
            .filter(|k| (2..=MAX_EXACT_QUBITS).contains(k))
            .ok_or(format!(
                "\"max_window_qubits\" must be an integer in 2..={MAX_EXACT_QUBITS}"
            ))?;
    }
    if let Some(b) = value.get("sat_bridges") {
        options.sat_bridges = b.as_bool().ok_or("\"sat_bridges\" must be a boolean")?;
    }
    Ok(WindowedChoice::On(options))
}

#[derive(Debug)]
enum ParsedDevice {
    /// A named library device with no calibration: the request keeps the
    /// library's uniform paper cost model.
    Named(CouplingMap),
    /// An explicit edge list and/or calibration: the request answers
    /// under a hardware-derived [`DeviceModel`] with the overrides
    /// applied.
    Model(DeviceModel),
}

fn parse_device(device: &Json) -> Result<ParsedDevice, String> {
    // A bare name: `"device": "qx4"`.
    if let Some(name) = device.as_str() {
        return named(name).map(ParsedDevice::Named);
    }
    let Some(pairs) = device.as_object() else {
        return Err("\"device\" must be a name or an object".to_string());
    };
    for (key, _) in pairs {
        if !["name", "qubits", "edges", "calibration"].contains(&key.as_str()) {
            return Err(format!("unknown device field {key:?}"));
        }
    }
    let cm = match (
        device.get("name"),
        device.get("qubits"),
        device.get("edges"),
    ) {
        (Some(name), None, None) => {
            let name = name.as_str().ok_or("device \"name\" must be a string")?;
            named(name)?
        }
        (None, Some(qubits), Some(edges)) => {
            let m = qubits
                .as_usize()
                .ok_or("device \"qubits\" must be a non-negative integer")?;
            let edges = parse_pairs(edges, "edges")?;
            CouplingMap::from_edges(m, edges).map_err(|e| format!("invalid edge list: {e}"))?
        }
        _ => {
            return Err(
                "device must carry either \"name\" or both \"qubits\" and \"edges\"".to_string(),
            )
        }
    };
    let Some(cal) = device.get("calibration") else {
        return Ok(match device.get("name") {
            Some(_) => ParsedDevice::Named(cm),
            None => ParsedDevice::Model(DeviceModel::new(cm)),
        });
    };
    Ok(ParsedDevice::Model(apply_calibration(cm, cal)?))
}

fn named(name: &str) -> Result<CouplingMap, String> {
    devices::by_name(name).ok_or_else(|| {
        format!("unknown device {name:?} (try \"qx4\", \"tokyo\", \"ring-6\", \"heavy-hex-1\", …)")
    })
}

/// `[[a, b], ...]` → pairs.
fn parse_pairs(value: &Json, field: &str) -> Result<Vec<(usize, usize)>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("\"{field}\" must be an array of [a, b] pairs"))?
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2);
            match pair {
                Some([a, b]) => match (a.as_usize(), b.as_usize()) {
                    (Some(a), Some(b)) => Ok((a, b)),
                    _ => Err(format!("\"{field}\" entries must hold qubit indices")),
                },
                _ => Err(format!("\"{field}\" must be an array of [a, b] pairs")),
            }
        })
        .collect()
}

/// `[[a, b, v], ...]` → triples, with the third element read by `third`.
fn parse_triples<T>(
    value: &Json,
    field: &str,
    third: impl Fn(&Json) -> Option<T>,
) -> Result<Vec<(usize, usize, T)>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("\"{field}\" must be an array of [a, b, value] triples"))?
        .iter()
        .map(|item| {
            let triple = item.as_array().filter(|t| t.len() == 3);
            match triple {
                Some([a, b, v]) => match (a.as_usize(), b.as_usize(), third(v)) {
                    (Some(a), Some(b), Some(v)) => Ok((a, b, v)),
                    _ => Err(format!("invalid \"{field}\" entry")),
                },
                _ => Err(format!(
                    "\"{field}\" must be an array of [a, b, value] triples"
                )),
            }
        })
        .collect()
}

/// Applies a calibration object onto the hardware-derived model for
/// `cm`, validating every referenced edge up front (the model's own
/// builders panic on unknown edges — the protocol must reject instead).
fn apply_calibration(cm: CouplingMap, cal: &Json) -> Result<DeviceModel, String> {
    let Some(pairs) = cal.as_object() else {
        return Err("\"calibration\" must be an object".to_string());
    };
    for (key, _) in pairs {
        if !["swap", "reversal", "cnot", "swap_errors"].contains(&key.as_str()) {
            return Err(format!("unknown calibration field {key:?}"));
        }
    }
    let cost = |v: &Json| v.as_u64().and_then(|c| u32::try_from(c).ok());
    let mut model = DeviceModel::new(cm);
    if let Some(errors) = cal.get("swap_errors") {
        let rates = parse_triples(errors, "swap_errors", Json::as_f64)?;
        model = calibration::with_swap_error_rates(model, rates)
            .map_err(|e| format!("invalid \"swap_errors\": {e}"))?;
    }
    if let Some(swaps) = cal.get("swap") {
        let overrides = parse_triples(swaps, "swap", cost)?;
        for &(a, b, _) in &overrides {
            if model.swap_cost(a, b).is_none() {
                return Err(format!("\"swap\" override on uncoupled pair ({a}, {b})"));
            }
        }
        model = model.with_swap_costs(overrides);
    }
    if let Some(reversals) = cal.get("reversal") {
        let overrides = parse_triples(reversals, "reversal", cost)?;
        for &(c, t, _) in &overrides {
            if !model.coupling_map().requires_reversal(c, t) {
                return Err(format!(
                    "\"reversal\" override on ({c}, {t}), which needs no reversal"
                ));
            }
        }
        model = model.with_reversal_costs(overrides);
    }
    if let Some(cnots) = cal.get("cnot") {
        let overrides = parse_triples(cnots, "cnot", cost)?;
        for &(c, t, _) in &overrides {
            if !model.coupling_map().has_edge(c, t) {
                return Err(format!("\"cnot\" override on missing edge ({c}, {t})"));
            }
        }
        model = model.with_cnot_costs(overrides);
    }
    Ok(model)
}

fn parse_strategy(value: &Json) -> Result<Strategy, String> {
    if let Some(name) = value.as_str() {
        return match name {
            "before_every_gate" => Ok(Strategy::BeforeEveryGate),
            "disjoint_qubits" => Ok(Strategy::DisjointQubits),
            "odd_gates" => Ok(Strategy::OddGates),
            "qubit_triangle" => Ok(Strategy::QubitTriangle),
            _ => Err(format!("unknown strategy {name:?}")),
        };
    }
    if let Some(k) = value.get("window") {
        let k = k
            .as_usize()
            .filter(|&k| k > 0)
            .ok_or("\"window\" must be a positive integer")?;
        return Ok(Strategy::Window(k));
    }
    if let Some(points) = value.get("custom") {
        let points = points
            .as_array()
            .ok_or("\"custom\" must be an array of gate indices")?
            .iter()
            .map(|p| {
                p.as_usize()
                    .ok_or("\"custom\" entries must be gate indices")
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Strategy::Custom(points));
    }
    Err("strategy must be a name, {\"window\": k} or {\"custom\": [...]}".to_string())
}

// ---------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------

/// Prepends the echoed `id` when the request carried one.
fn with_id(id: Option<Json>, mut pairs: Vec<(String, Json)>) -> Json {
    if let Some(id) = id {
        pairs.insert(1, ("id".to_string(), id));
    }
    Json::Obj(pairs)
}

fn layout_json(layout: &Layout) -> Json {
    Json::Arr(
        layout
            .as_log2phys()
            .iter()
            .map(|slot| match slot {
                Some(p) => Json::num(*p as u64),
                None => Json::Null,
            })
            .collect(),
    )
}

/// Microseconds, saturating — the protocol's duration unit.
fn micros(d: Duration) -> Json {
    Json::num(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// Renders a [`SolveTrace`] as the wire `trace` object: its own
/// `elapsed_us` (measured from the trace origin — line receipt for
/// server-side traces, so it covers ingest and queue wait on top of the
/// report's solve-only `elapsed_us`) plus every closed span in start
/// order.
pub fn trace_json(trace: &qxmap_core::trace::SolveTrace) -> Json {
    let spans = trace
        .spans
        .iter()
        .map(|s| {
            let mut pairs = vec![
                ("path".to_string(), Json::str(&s.path)),
                ("start_us".to_string(), Json::num(s.start_us)),
                ("duration_us".to_string(), Json::num(s.duration_us)),
            ];
            if !s.counters.is_empty() {
                pairs.push((
                    "counters".to_string(),
                    Json::Obj(
                        s.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::num(*v)))
                            .collect(),
                    ),
                ));
            }
            Json::Obj(pairs)
        })
        .collect();
    Json::obj([
        ("elapsed_us", Json::num(trace.elapsed_us)),
        ("spans", Json::Arr(spans)),
    ])
}

/// One per-window optimality certificate of a windowed result.
fn window_json(w: &WindowCertificate) -> Json {
    let slots = |ps: &[usize]| Json::Arr(ps.iter().map(|&p| Json::num(p as u64)).collect());
    Json::obj([
        ("index", Json::num(w.index as u64)),
        ("qubits", slots(&w.qubits)),
        ("region", slots(&w.region)),
        ("gates", Json::num(w.gates as u64)),
        ("objective", Json::num(w.objective)),
        ("proved_optimal", Json::Bool(w.proved_optimal)),
        ("served_from_cache", Json::Bool(w.served_from_cache)),
        ("engine", Json::str(&w.engine)),
        ("bridge_swaps", Json::num(u64::from(w.bridge_swaps))),
        ("bridge_cost", Json::num(w.bridge_cost)),
    ])
}

/// Builds the `result` response for a completed mapping job.
pub fn result_response(id: Option<Json>, report: &MapReport) -> Json {
    let mut pairs = vec![
        ("type".to_string(), Json::str("result")),
        ("engine".to_string(), Json::str(&report.engine)),
        ("winner".to_string(), Json::str(&report.winner)),
        (
            "served_from_cache".to_string(),
            Json::Bool(report.served_from_cache),
        ),
        (
            "proved_optimal".to_string(),
            Json::Bool(report.proved_optimal),
        ),
        (
            "cost".to_string(),
            Json::obj([
                ("objective", Json::num(report.cost.objective)),
                ("swaps", Json::num(u64::from(report.cost.swaps))),
                ("reversals", Json::num(u64::from(report.cost.reversals))),
                ("added_gates", Json::num(report.cost.added_gates)),
            ]),
        ),
        ("elapsed_us".to_string(), micros(report.elapsed)),
        ("runtime_us".to_string(), micros(report.runtime)),
        (
            "initial_layout".to_string(),
            layout_json(&report.initial_layout),
        ),
        (
            "final_layout".to_string(),
            layout_json(&report.final_layout),
        ),
        (
            "mapped_qasm".to_string(),
            Json::str(qxmap_qasm::to_qasm(&report.mapped)),
        ),
    ];
    if let Some(windows) = &report.windows {
        pairs.push((
            "windows".to_string(),
            Json::Arr(windows.iter().map(window_json).collect()),
        ));
    }
    if let Some(trace) = &report.trace {
        pairs.push(("trace".to_string(), trace_json(trace)));
    }
    with_id(id, pairs)
}

/// Builds an `error` response from a structured engine error, with one
/// stable code per [`MapperError`] variant and the variant's fields
/// carried alongside.
pub fn error_response(id: Option<Json>, error: &MapperError) -> Json {
    let (code, extra): (&str, Vec<(&'static str, Json)>) = match error {
        MapperError::TooManyQubits { logical, physical } => (
            "too_many_qubits",
            vec![
                ("logical", Json::num(*logical as u64)),
                ("physical", Json::num(*physical as u64)),
            ],
        ),
        MapperError::Infeasible => ("infeasible", vec![]),
        MapperError::BudgetExhausted => ("budget_exhausted", vec![]),
        MapperError::DeviceTooLarge { qubits, max } => (
            "device_too_large",
            vec![
                ("qubits", Json::num(*qubits as u64)),
                ("max", Json::num(*max as u64)),
            ],
        ),
        MapperError::Unroutable => ("unroutable", vec![]),
        MapperError::BoundUnmet { bound } => ("bound_unmet", vec![("bound", Json::num(*bound))]),
        MapperError::OptimalityUnavailable { .. } => ("optimality_unavailable", vec![]),
    };
    let mut pairs = vec![
        ("type".to_string(), Json::str("error")),
        ("code".to_string(), Json::str(code)),
        ("message".to_string(), Json::str(error.to_string())),
    ];
    pairs.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
    with_id(id, pairs)
}

/// Builds an `error` response from a protocol-level rejection, with the
/// parser's source-line attribution as a structured `"line"` field when
/// one exists.
pub fn rejection_response(rejection: &Rejection) -> Json {
    let mut pairs = vec![
        ("type".to_string(), Json::str("error")),
        ("code".to_string(), Json::str(rejection.code)),
        ("message".to_string(), Json::str(&rejection.message)),
    ];
    if let Some(line) = rejection.line {
        pairs.push(("line".to_string(), Json::num(line as u64)));
    }
    with_id(rejection.id.clone(), pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const QASM: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
cx q[0], q[1];
cx q[1], q[2];
"#;

    fn map_line(extra: &str) -> String {
        format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\"{extra}}}",
            Json::str(QASM)
        )
    }

    #[test]
    fn minimal_map_request_parses() {
        let Request::Map(job) = parse_request(&map_line("")).unwrap() else {
            panic!("not a map request");
        };
        let request = job.materialize().unwrap();
        assert_eq!(request.circuit().num_cnots(), 2);
        assert_eq!(request.device().num_qubits(), 5);
        assert_eq!(request.guarantee(), Guarantee::BestEffort);
        assert!(job.id.is_none());
        assert_eq!(job.windowed, WindowedChoice::Auto);
        // qx4 is inside the exact regime, so auto resolves monolithic.
        assert!(job.windowed_options().is_none());
    }

    #[test]
    fn qxbc_payloads_parse_to_the_same_job() {
        let Request::Map(text_job) = parse_request(&map_line("")).unwrap() else {
            panic!("not a map request");
        };
        let circuit = qxmap_qasm::parse(QASM).unwrap();
        let encoded = crate::base64::encode(&qxmap_qasm::encode_qxbc(&circuit));
        let line = format!(
            "{{\"type\":\"map\",\"format\":\"qxbc\",\"qxbc\":\"{encoded}\",\"device\":\"qx4\"}}"
        );
        let Request::Map(job) = parse_request(&line).unwrap() else {
            panic!("not a map request");
        };
        assert_eq!(job.skeleton(), text_job.skeleton());
        assert_eq!(
            job.materialize().unwrap().circuit().gates(),
            text_job.materialize().unwrap().circuit().gates()
        );
    }

    #[test]
    fn qxbc_payload_defects_reject_structurally() {
        let circuit = qxmap_qasm::parse(QASM).unwrap();
        let bytes = qxmap_qasm::encode_qxbc(&circuit);
        let mut corrupted = bytes.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x10;
        let request = |payload: &str, extra: &str| {
            format!("{{\"type\":\"map\",\"format\":\"qxbc\"{extra},\"qxbc\":\"{payload}\",\"device\":\"qx4\"}}")
        };
        for (line, needle) in [
            (request("!!!not base64!!!", ""), "base64"),
            (request(&crate::base64::encode(&corrupted), ""), "QXBC"),
            (request(&crate::base64::encode(&bytes[..9]), ""), "QXBC"),
            (
                request(&crate::base64::encode(&bytes), ",\"qasm\":\"x\""),
                "mutually exclusive",
            ),
            (
                "{\"type\":\"map\",\"format\":\"qxbc\",\"device\":\"qx4\"}".to_string(),
                "missing string field \"qxbc\"",
            ),
            (
                "{\"type\":\"map\",\"format\":\"elf\",\"qasm\":\"\",\"device\":\"qx4\"}"
                    .to_string(),
                "\"format\"",
            ),
            (map_line(",\"qxbc\":\"AAAA\"").to_string(), "requires"),
        ] {
            let e = parse_request(&line).unwrap_err();
            assert_eq!(e.code, "bad_request", "{line}");
            assert!(e.message.contains(needle), "{line} -> {}", e.message);
            assert!(e.line.is_none());
        }
    }

    #[test]
    fn qasm_parse_rejections_carry_the_source_line() {
        let line = format!(
            "{{\"type\":\"map\",\"id\":4,\"qasm\":{},\"device\":\"qx4\"}}",
            Json::str("qreg q[2];\nnope q[0];\n")
        );
        let e = parse_request(&line).unwrap_err();
        assert_eq!(e.code, "bad_request");
        assert_eq!(e.line, Some(2));
        assert!(e.message.contains("unknown gate"));
        let r = rejection_response(&e);
        assert_eq!(r.get("line").and_then(Json::as_u64), Some(2));
        assert_eq!(r.get("id").and_then(Json::as_u64), Some(4));
        // Non-parse rejections carry no line field.
        let r = rejection_response(&parse_request("{\"type\":\"map\"}").unwrap_err());
        assert!(r.get("line").is_none());
    }

    #[test]
    fn cache_probe_mirrors_the_materialized_request() {
        let line = map_line(",\"deadline_ms\":250,\"seed\":3,\"guarantee\":\"optimal\"");
        let Request::Map(job) = parse_request(&line).unwrap() else {
            panic!("not a map request");
        };
        let probe = job.cache_probe().unwrap();
        let request = job.materialize().unwrap();
        // Solve through the request, then the skeleton-only probe must
        // hit the entry the solve inserted — the fields agree.
        let report = qxmap_map::map_one(&request).unwrap();
        let hit = qxmap_map::probe_one(&probe).expect("probe key matches request key");
        assert_eq!(hit.cost, report.cost);
        // Windowed jobs never probe whole-circuit.
        let Request::Map(job) = parse_request(&map_line(",\"windowed\":true")).unwrap() else {
            panic!("not a map request");
        };
        assert!(job.cache_probe().is_none());
    }

    #[test]
    fn windowed_options_parse_and_validate() {
        let Request::Map(job) = parse_request(&map_line(",\"windowed\":true")).unwrap() else {
            panic!("not a map request");
        };
        assert_eq!(job.windowed, WindowedChoice::On(WindowOptions::default()));
        assert_eq!(job.windowed_options(), Some(WindowOptions::default()));
        let Request::Map(job) = parse_request(&map_line(",\"windowed\":false")).unwrap() else {
            panic!("not a map request");
        };
        assert_eq!(job.windowed, WindowedChoice::Off);
        assert!(job.windowed_options().is_none());
        let line = map_line(",\"windowed\":{\"max_window_qubits\":4,\"sat_bridges\":true}");
        let Request::Map(job) = parse_request(&line).unwrap() else {
            panic!("not a map request");
        };
        assert_eq!(
            job.windowed,
            WindowedChoice::On(WindowOptions {
                max_window_qubits: 4,
                sat_bridges: true,
            })
        );
        for (extra, needle) in [
            (",\"windowed\":7", "boolean"),
            (
                ",\"windowed\":{\"max_window_qubits\":1}",
                "max_window_qubits",
            ),
            (
                ",\"windowed\":{\"window_qubits\":4}",
                "unknown windowed field",
            ),
            (",\"windowed\":{\"sat_bridges\":3}", "sat_bridges"),
        ] {
            let e = parse_request(&map_line(extra)).unwrap_err();
            assert_eq!(e.code, "bad_request", "{extra}");
            assert!(e.message.contains(needle), "{extra} -> {}", e.message);
        }
    }

    #[test]
    fn auto_windowing_selects_out_of_regime_best_effort_requests() {
        let line = |extra: &str| {
            format!(
                "{{\"type\":\"map\",\"qasm\":{},\"device\":\"linear-12\"{extra}}}",
                Json::str(QASM)
            )
        };
        // Out of regime, best-effort, no explicit knob: auto-windowed —
        // and therefore no whole-circuit probe.
        let Request::Map(job) = parse_request(&line("")).unwrap() else {
            panic!("not a map request");
        };
        assert_eq!(job.windowed, WindowedChoice::Auto);
        assert_eq!(job.windowed_options(), Some(WindowOptions::default()));
        assert!(job.cache_probe().is_none());
        // A demanded optimality certificate keeps the portfolio (the
        // windowed engine cannot certify whole-circuit optimality).
        let Request::Map(job) = parse_request(&line(",\"guarantee\":\"optimal\"")).unwrap() else {
            panic!("not a map request");
        };
        assert!(job.windowed_options().is_none());
        assert!(job.cache_probe().is_some());
        // The explicit veto wins over the regime heuristic.
        let Request::Map(job) = parse_request(&line(",\"windowed\":false")).unwrap() else {
            panic!("not a map request");
        };
        assert!(job.windowed_options().is_none());
        assert!(job.cache_probe().is_some());
    }

    #[test]
    fn options_map_onto_the_request() {
        let line = map_line(
            ",\"id\":7,\"deadline_ms\":250,\"conflict_budget\":1000,\"guarantee\":\"optimal\",\
             \"strategy\":{\"window\":2},\"subsets\":false,\"upper_bound\":9,\"seed\":3",
        );
        let Request::Map(job) = parse_request(&line).unwrap() else {
            panic!("not a map request");
        };
        assert_eq!(job.id, Some(Json::Num(7.0)));
        assert_eq!(job.deadline(), Some(Duration::from_millis(250)));
        let request = job.materialize().unwrap();
        assert_eq!(request.deadline(), Some(Duration::from_millis(250)));
        assert_eq!(request.conflict_budget(), Some(1000));
        assert_eq!(request.guarantee(), Guarantee::Optimal);
        assert_eq!(*request.strategy(), Strategy::Window(2));
        assert!(!request.use_subsets());
        assert_eq!(request.upper_bound(), Some(9));
        assert_eq!(request.seed(), 3);
    }

    #[test]
    fn explicit_edge_lists_and_calibration_build_models() {
        let line = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":{{\"qubits\":3,\
             \"edges\":[[0,1],[1,0],[1,2],[2,1]],\
             \"calibration\":{{\"swap\":[[0,1,21]]}}}}}}",
            Json::str(QASM)
        );
        let Request::Map(job) = parse_request(&line).unwrap() else {
            panic!("not a map request");
        };
        let request = job.materialize().unwrap();
        assert_eq!(request.device_model().swap_cost(0, 1), Some(21));
        assert_eq!(request.device_model().swap_cost(1, 2), Some(3));
    }

    #[test]
    fn named_device_with_error_rates_is_calibrated() {
        let line = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":{{\"name\":\"qx4\",\
             \"calibration\":{{\"swap_errors\":[[0,1,0.05],[1,2,0.005]]}}}}}}",
            Json::str(QASM)
        );
        let Request::Map(job) = parse_request(&line).unwrap() else {
            panic!("not a map request");
        };
        let request = job.materialize().unwrap();
        let model = request.device_model();
        assert_eq!(model.swap_cost(1, 2), Some(7), "best pair keeps base");
        assert!(model.swap_cost(0, 1).unwrap() > 30, "noisy pair is dear");
    }

    #[test]
    fn defects_reject_with_bad_request() {
        for (line, needle) in [
            ("{\"type\":\"map\"}", "qasm"),
            (map_line(",\"deadine_ms\":5").as_str(), "deadine_ms"),
            (map_line(",\"deadline_ms\":0").as_str(), "deadline_ms"),
            (map_line(",\"strategy\":\"nope\"").as_str(), "strategy"),
            ("{\"type\":\"nope\"}", "unknown request type"),
            ("{}", "type"),
            ("[1]", "object"),
        ] {
            let e = parse_request(line).unwrap_err();
            assert_eq!(e.code, "bad_request", "{line}");
            assert!(e.message.contains(needle), "{line} -> {}", e.message);
        }
        assert_eq!(parse_request("not json").unwrap_err().code, "parse");
        let bad_device = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"atlantis\"}}",
            Json::str(QASM)
        );
        assert!(parse_request(&bad_device)
            .unwrap_err()
            .message
            .contains("atlantis"));
        // Calibration on a missing edge is a rejection, not a panic.
        let bad_cal = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":{{\"name\":\"qx4\",\
             \"calibration\":{{\"swap\":[[0,3,9]]}}}}}}",
            Json::str(QASM)
        );
        assert!(parse_request(&bad_cal)
            .unwrap_err()
            .message
            .contains("uncoupled"));
    }

    #[test]
    fn responses_carry_ids_and_stable_codes() {
        let rejection = Rejection {
            code: "overloaded",
            message: "queue full".to_string(),
            id: Some(Json::num(9)),
            line: None,
        };
        let r = rejection_response(&rejection);
        assert_eq!(r.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(r.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(r.get("id").and_then(Json::as_u64), Some(9));

        let e = error_response(
            None,
            &MapperError::TooManyQubits {
                logical: 6,
                physical: 5,
            },
        );
        assert_eq!(
            e.get("code").and_then(Json::as_str),
            Some("too_many_qubits")
        );
        assert_eq!(e.get("logical").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn result_response_reflects_the_report() {
        let request = MapRequest::new(qxmap_circuit::paper_example(), devices::ibm_qx4());
        let report = qxmap_map::map_one(&request).unwrap();
        let r = result_response(Some(Json::str("a")), &report);
        assert_eq!(r.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(r.get("id").and_then(Json::as_str), Some("a"));
        let cost = r.get("cost").unwrap();
        assert_eq!(cost.get("objective").and_then(Json::as_u64), Some(4));
        let qasm = r.get("mapped_qasm").and_then(Json::as_str).unwrap();
        assert!(qasm.contains("OPENQASM 2.0"));
        // A monolithic report has no windows section.
        assert!(r.get("windows").is_none());
        // The response line parses back (the protocol is self-consistent).
        assert!(Json::parse(&r.to_string()).is_ok());
    }

    #[test]
    fn result_response_carries_window_certificates() {
        use qxmap_map::Engine as _;
        let mut circuit = qxmap_circuit::Circuit::new(10);
        for q in 0..9 {
            circuit.cx(q, q + 1);
        }
        let request = MapRequest::new(circuit, devices::linear(12));
        let report = qxmap_window::WindowedEngine::new().run(&request).unwrap();
        let r = result_response(None, &report);
        assert_eq!(r.get("engine").and_then(Json::as_str), Some("windowed"));
        let windows = r.get("windows").and_then(Json::as_array).unwrap();
        assert!(windows.len() >= 2, "{} windows", windows.len());
        let gates: u64 = windows
            .iter()
            .map(|w| w.get("gates").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(gates, 9, "every gate is certified by exactly one window");
        for w in windows {
            assert_eq!(w.get("proved_optimal"), Some(&Json::Bool(true)));
            assert!(w.get("engine").and_then(Json::as_str).is_some());
            assert!(w.get("region").and_then(Json::as_array).is_some());
        }
        assert!(Json::parse(&r.to_string()).is_ok());
    }
}
