//! # qxmap-serve — the production serving tier
//!
//! Everything before this crate is a library: [`qxmap_map::map_one`]
//! answers one request in one process. This crate is the subsystem that
//! turns it into a service — a long-running mapping daemon speaking
//! line-delimited JSON over stdin/stdout or TCP, with:
//!
//! * a **wire protocol** ([`proto`]): `map` requests carrying OpenQASM
//!   source, a device (library name or explicit edge list, either with
//!   optional per-edge calibration including measured error rates),
//!   strategy/guarantee options and a per-request deadline; `metrics`
//!   and `shutdown` requests; structured error responses with stable
//!   codes (no serde is vendored, so [`json`] ships a small
//!   self-contained JSON encode/decode module);
//! * a **server core** ([`server`]): a bounded, earliest-deadline-first
//!   admission queue feeding a fixed worker pool over
//!   [`qxmap_map::map_many`]-style batching, with explicit `overloaded`
//!   rejection instead of unbounded queueing, `deadline_expired`
//!   shedding of jobs whose deadline ran out while they waited,
//!   pipelined connections (many tagged requests in flight, responses
//!   in completion order), graceful shutdown that drains admitted work,
//!   and a `metrics` surface exposing [`qxmap_map::SolveCacheStats`],
//!   queue depth, queue-wait/slack distributions and request latency
//!   counters;
//! * **cache persistence**: the daemon snapshots the process-wide
//!   [`qxmap_map::SolveCache`] on shutdown, warm-starts from the
//!   snapshot on boot (the entry keys are stable across processes —
//!   canonical circuit skeletons × device-model fingerprints), and can
//!   additionally append every solve to a crash-safe
//!   [`qxmap_map::Journal`] so even a `kill -9` loses only the unsynced
//!   tail — restarts and replicas answer repeated requests in
//!   microseconds.
//!
//! The `qxmap-serve` binary wires these together; see the repository
//! `GUIDE.md` ("Running the server") for protocol examples.
//!
//! ```
//! use qxmap_serve::{Handled, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default());
//! let response = server.handle_line(
//!     r#"{"type":"map","id":1,
//!         "qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0], q[1];\n",
//!         "device":"qx4"}"#,
//! );
//! let text = response.response().to_string();
//! assert!(text.contains("\"type\":\"result\""));
//! assert!(text.contains("\"id\":1"));
//! server.finish().unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod base64;
pub mod json;
pub mod proto;
pub mod server;

pub use json::{Json, JsonError};
pub use proto::{MapJob, Rejection, Request};
pub use server::{load_snapshot, save_snapshot, Handled, Server, ServerConfig, WarmStart};
