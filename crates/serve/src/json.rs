//! A small, self-contained JSON value type with a parser and a
//! serializer — the wire format of the serving tier.
//!
//! The workspace vendors no serde (the build environment has no
//! crates.io access), and the protocol needs nothing beyond RFC 8259
//! values: this module is the whole dependency. Numbers are carried as
//! `f64`, which represents every integer the protocol exchanges exactly
//! (ids, costs, counters — all far below 2^53); [`Json::as_u64`]
//! rejects anything non-integral rather than rounding silently.

use std::fmt;

/// Any JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs for integer fidelity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on serialization.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the defect.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integer number.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// The value under `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer; `None` for non-numbers,
    /// negatives, and non-integral values (never rounds).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // Exclusive 2^53 bound: at exactly 2^53, f64 can no longer
        // distinguish neighboring integers (2^53 + 1 parses to the same
        // float), so accepting the boundary would silently alter values
        // — the one thing this accessor promises not to do.
        if n.fract() != 0.0 || !(0.0..9_007_199_254_740_992.0).contains(&n) {
            return None;
        }
        Some(n as u64)
    }

    /// The number as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        usize::try_from(self.as_u64()?).ok()
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one JSON value from `input`, requiring it to span the
    /// whole string (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first defect.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(value)
    }
}

/// Objects and arrays deeper than this are rejected: the protocol never
/// nests past ~4 levels, and a recursion bound turns stack exhaustion
/// from hostile input into a clean parse error.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u', "expected '\\u' low surrogate")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid; find the next one).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input came from a &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("unterminated \\u escape"))?;
            let digit = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse_and_print() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
        assert_eq!(Json::num(42).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"type":"map","ids":[1,2,3],"opts":{"deep":null,"on":true}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("map"));
        assert_eq!(
            v.get("ids").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.to_string(), text);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé😀");
        let printed = Json::str("tab\there\n\"quoted\"").to_string();
        assert_eq!(
            Json::parse(&printed).unwrap(),
            Json::str("tab\there\n\"quoted\"")
        );
        // Unicode passes through unescaped.
        assert_eq!(Json::str("é😀").to_string(), "\"é😀\"");
    }

    #[test]
    fn defects_are_located() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800\"",
            "nan",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
        let e = Json::parse("[1, oops]").unwrap_err();
        assert!(e.offset >= 4, "{e}");
    }

    #[test]
    fn deep_nesting_is_rejected_cleanly() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn u64_accessor_never_rounds() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::str("7").as_u64(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
    }
}
