//! The server core: a deadline-aware admission queue feeding a fixed
//! worker pool, pipelined connections, explicit overload and deadline
//! shedding, graceful shutdown, metrics, and crash-safe solve-cache
//! persistence (snapshot plus append-only journal).
//!
//! ## Request lifecycle
//!
//! A connection thread parses each line into a [`crate::proto::Request`]
//! and — for mapping jobs — *submits* it to the admission queue without
//! waiting for the answer: connections are **pipelined**. Up to
//! [`ServerConfig::pipeline_depth`] mapping jobs per connection may be
//! in flight at once (matched to their requests by `id`), and responses
//! are written by a dedicated per-connection writer thread in
//! *completion* order, not submission order — a microsecond warm hit
//! queued behind an expensive cold solve no longer waits for it. When
//! the in-flight cap is reached the reader stops consuming input, which
//! backpressures the client through TCP instead of buffering
//! unboundedly. Stdio mode stays strictly request/response.
//!
//! The admission queue is bounded and **earliest-deadline-first**: jobs
//! carrying a `deadline_ms` dispatch in deadline order, deadline-less
//! jobs rank last, and ties (including all deadline-less jobs among
//! themselves) break FIFO by admission sequence. When `queue_depth`
//! jobs are already waiting, a submission is rejected immediately with
//! a structured `overloaded` error instead of blocking the client
//! behind an unbounded backlog. A job whose deadline has already
//! expired when a worker dequeues it is *shed* with a structured
//! `deadline_expired` rejection — it never reaches a solver, so a
//! loaded queue spends its workers only on jobs that can still answer
//! in time.
//!
//! Admitted jobs are drained by a fixed pool of worker threads, each
//! pulling up to `batch_max` jobs at a time and solving them through one
//! [`qxmap_map::map_many`] call — so a burst of identical requests
//! landing together is deduplicated into one solve *before* the
//! process-wide solve cache even sees it, exactly like a library-side
//! batch. Jobs that opted into window decomposition (`"windowed"`)
//! run through [`qxmap_window::WindowedEngine`] instead — the engine
//! probes the same solve cache per window and parallelizes internally,
//! so batch deduplication adds nothing there.
//!
//! ## Shutdown and persistence
//!
//! A `shutdown` request (or stdin EOF in stdio mode) begins a graceful
//! wind-down: admission closes (`shutting_down` rejections), workers
//! drain every already-admitted job, and [`Server::finish`] snapshots
//! the solve cache to the configured path — so the next boot (or a
//! replica seeded from the same file) starts warm and answers repeated
//! requests in microseconds. Snapshots are written to a temporary file
//! and renamed into place, so a crash mid-write never corrupts the
//! previous good snapshot; corrupted or version-mismatched snapshots
//! are rejected at boot and the daemon starts cold.
//!
//! Snapshots only cover *graceful* exits. With a journal configured
//! ([`ServerConfig::journal`]), every solve admitted to the
//! process-wide cache is also appended to a crash-safe
//! [`qxmap_map::Journal`] by a background thread off the response path:
//! a `kill -9` loses at most the unsynced tail of the file, and the
//! next boot replays it record by record — rejecting torn or corrupt
//! records individually, keeping everything intact — on top of whatever
//! the snapshot recovered. A replica may warm-share by tail-following
//! the same file with [`qxmap_map::replay_records`].

use std::collections::{BTreeMap, BinaryHeap};
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qxmap_core::trace::{SolveTrace, SpanRecorder};
use qxmap_map::{
    Engine as _, Journal, JournalReplay, JournalStats, MapReport, MapRequest, MapperError,
    SolveCache,
};
use qxmap_window::{WindowOptions, WindowedEngine};

use crate::json::Json;
use crate::proto::{self, Rejection, Request};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads solving admitted jobs. Defaults to the machine's
    /// available parallelism.
    pub workers: usize,
    /// Most jobs allowed to *wait* for a worker; submissions beyond this
    /// are rejected as `overloaded`. Defaults to 64.
    pub queue_depth: usize,
    /// Most jobs one worker drains into a single [`qxmap_map::map_many`]
    /// batch. Defaults to 8.
    pub batch_max: usize,
    /// Most mapping jobs one pipelined connection may have in flight at
    /// once; at the cap the connection's reader stops consuming input
    /// (TCP backpressure). Defaults to 32.
    pub pipeline_depth: usize,
    /// Snapshot file for warm starts: imported by
    /// [`Server::warm_start`], written by [`Server::finish`].
    pub snapshot: Option<PathBuf>,
    /// Append-only cache journal for crash-safe warm state: replayed and
    /// attached by [`Server::warm_start`], drained by [`Server::finish`].
    pub journal: Option<PathBuf>,
    /// Journal records appended between snapshot compactions of the
    /// journal file. Defaults to 1024.
    pub journal_compact_after: usize,
    /// Entries kept in the slow-request ring — the N slowest completed
    /// solves, with their traces when the request carried
    /// `"trace": true`; dumped by `{"type": "slowlog"}`. Defaults to 8;
    /// 0 disables the ring (and the trace log).
    pub slowlog_capacity: usize,
    /// Append slowlog admissions as JSONL to this file (one JSON object
    /// per line, same shape as the `slowlog` response entries).
    pub trace_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_depth: 64,
            batch_max: 8,
            pipeline_depth: 32,
            snapshot: None,
            journal: None,
            journal_compact_after: 1024,
            slowlog_capacity: 8,
            trace_log: None,
        }
    }
}

/// How one request line was handled, and what the connection should do
/// after delivering the response.
#[derive(Debug)]
pub enum Handled {
    /// Write the response line; keep serving the connection.
    Reply(String),
    /// Write the response line, flush it, then call
    /// [`Server::begin_shutdown`] — the acknowledgement must reach the
    /// client before the daemon starts winding down.
    ReplyAndShutdown(String),
}

impl Handled {
    /// The response line, whichever variant.
    pub fn response(&self) -> &str {
        match self {
            Handled::Reply(r) | Handled::ReplyAndShutdown(r) => r,
        }
    }
}

/// What [`Server::warm_start`] recovered before serving.
#[derive(Debug, Default, Clone, Copy)]
pub struct WarmStart {
    /// Entries admitted from the snapshot file.
    pub snapshot_entries: usize,
    /// Journal replay summary, when a journal is configured.
    pub journal: Option<JournalReplay>,
}

/// How an admitted job left the queue: solved (or failed) by a worker,
/// or shed because its deadline had already expired at dequeue.
enum JobOutcome {
    /// A worker dispatched the job and this is its result (boxed to
    /// keep the enum small next to `Shed`).
    Done(Box<Result<MapReport, MapperError>>),
    /// The job's deadline expired while it waited; it was shed without
    /// ever reaching a solver, after `waited` in the queue.
    Shed { waited: Duration },
}

/// An admitted job's continuation: invoked exactly once, on the worker
/// thread that dequeued it (pipelined connections render and forward
/// the response to their writer thread; the synchronous path relays the
/// outcome over a channel to the blocked caller).
type Complete = Box<dyn FnOnce(JobOutcome) + Send>;

/// One admitted mapping job, ranked earliest-deadline-first in the
/// admission heap.
struct QueuedJob {
    request: MapRequest,
    /// When set, the job answers through the window-decomposed engine
    /// with these options instead of the batch solver.
    windowed: Option<WindowOptions>,
    /// Absolute point the client's `deadline_ms` runs out; `None` ranks
    /// after every deadlined job.
    deadline: Option<Instant>,
    /// When the job entered the queue (feeds the queue-wait counters
    /// and the shed rejection's message).
    enqueued: Instant,
    /// Admission sequence number: the FIFO tiebreak among equal
    /// deadlines, and what keeps deadline-less traffic in order.
    seq: u64,
    complete: Complete,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &QueuedJob) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &QueuedJob) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &QueuedJob) -> std::cmp::Ordering {
        // BinaryHeap pops its *greatest* element, so "greater" must mean
        // "dispatch sooner": an earlier deadline outranks a later one,
        // any deadline outranks none, and a lower admission sequence
        // wins ties (FIFO among equals).
        let by_deadline = match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => std::cmp::Ordering::Greater,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (None, None) => std::cmp::Ordering::Equal,
        };
        by_deadline.then_with(|| other.seq.cmp(&self.seq))
    }
}

struct QueueState {
    jobs: BinaryHeap<QueuedJob>,
    in_flight: usize,
    shutdown: bool,
    next_seq: u64,
}

/// Cumulative request counters (see the `metrics` response).
#[derive(Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    /// Lines rejected as malformed JSON (code `parse`).
    rejected_parse: AtomicU64,
    /// Structurally valid requests rejected for a semantic defect —
    /// unknown fields, bad payloads, invalid devices (code
    /// `bad_request`).
    rejected_bad_request: AtomicU64,
    rejected_overload: AtomicU64,
    /// Submissions refused because shutdown had begun (code
    /// `shutting_down`).
    rejected_shutdown: AtomicU64,
    /// Jobs shed at dequeue because their deadline had already expired
    /// while they waited — answered with `deadline_expired`, never
    /// dispatched to a solver.
    rejected_deadline: AtomicU64,
    served_from_cache: AtomicU64,
    /// Mapping jobs that carried a `deadline_ms` and whose end-to-end
    /// latency (admission wait + solve) exceeded it — the serving tier's
    /// broken-promise counter. The engines wind down *near* a deadline,
    /// so a loaded queue, not the solver, is the usual culprit.
    deadline_misses: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
    /// Time dispatched jobs spent waiting for a worker (shed jobs are
    /// excluded; their wait is reported in the rejection itself).
    queue_wait_total_us: AtomicU64,
    queue_wait_max_us: AtomicU64,
}

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// whose end-to-end latency was below `2^i` microseconds (and at or
/// above the previous bound), spanning 1 µs .. ~2¹⁴ s before the
/// overflow bucket — bounded, allocation-free, and wide enough that no
/// real request lands in overflow.
const LATENCY_BUCKETS: usize = 32;

/// A bounded, lock-free latency histogram: fixed power-of-two buckets
/// over microseconds, recorded with relaxed atomic increments. The
/// `metrics` response renders it as `[upper_bound_us, count]` pairs plus
/// derived p50/p95/p99 (each reported as its bucket's upper bound — a
/// ≤2× overestimate, which is the right rounding direction for a
/// latency promise).
#[derive(Default)]
struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    /// Sum of every recorded sample (µs) — the `_sum` series of the
    /// Prometheus histogram exposition.
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    fn bucket_of(micros: u64) -> usize {
        // Bucket i covers [2^(i-1), 2^i) µs (bucket 0 covers {0}); the
        // last bucket absorbs overflow.
        ((64 - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    fn record(&self, micros: u64) {
        self.buckets[LatencyHistogram::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let mut counts = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        counts
    }

    /// The upper bound (µs) of the bucket containing the `p`-quantile
    /// sample, from an immutable snapshot so one `metrics` response is
    /// internally consistent.
    fn percentile(counts: &[u64; LATENCY_BUCKETS], p: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return LatencyHistogram::upper_bound_us(i);
            }
        }
        LatencyHistogram::upper_bound_us(LATENCY_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i`, in microseconds.
    fn upper_bound_us(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// `{"count", "p50_us", "p95_us", "p99_us", "buckets": [[upper, n], ...]}`
    /// with zero buckets elided (the shape stays bounded either way).
    fn to_json(&self) -> Json {
        let counts = self.snapshot();
        let buckets: Vec<Json> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                Json::Arr(vec![
                    Json::num(LatencyHistogram::upper_bound_us(i)),
                    Json::num(n),
                ])
            })
            .collect();
        Json::obj([
            ("count", Json::num(counts.iter().sum::<u64>())),
            ("p50_us", Json::num(Self::percentile(&counts, 0.50))),
            ("p95_us", Json::num(Self::percentile(&counts, 0.95))),
            ("p99_us", Json::num(Self::percentile(&counts, 0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// The batch solver workers run admitted jobs through — injectable so
/// tests can pin down timing-sensitive behavior (overload, shutdown
/// draining, dispatch order) with a deterministic solver. Production
/// uses [`qxmap_map::map_many`].
type BatchSolver = Box<dyn Fn(&[MapRequest]) -> Vec<Result<MapReport, MapperError>> + Send + Sync>;

/// A mapping job after parsing and cache probing: either the response
/// is already in hand, or the job is ready for the admission queue.
enum Prepared {
    /// The response line is ready now (warm probe hit or a structured
    /// rejection) — nothing entered the queue.
    Immediate(String),
    /// The job must go through [`Server::submit`]. The request is
    /// boxed to keep the enum small next to `Immediate`.
    Job {
        request: Box<MapRequest>,
        windowed: Option<WindowOptions>,
        id: Option<Json>,
        start: Instant,
        deadline: Option<Duration>,
    },
}

/// One completed solve in the slow-request ring.
#[derive(Debug, Clone)]
struct SlowEntry {
    /// End-to-end latency (parse excluded for queued jobs, included for
    /// warm hits' ingest), in microseconds.
    latency_us: u64,
    /// The request's `id`, when it carried one.
    id: Option<Json>,
    engine: String,
    winner: String,
    served_from_cache: bool,
    /// The full timeline, when the request asked for `"trace": true`.
    trace: Option<SolveTrace>,
}

/// Renders one slowlog entry — the `slowlog` response's element shape,
/// and the trace log's JSONL line shape.
fn slow_entry_json(entry: &SlowEntry) -> Json {
    let mut pairs = vec![("latency_us".to_string(), Json::num(entry.latency_us))];
    if let Some(id) = &entry.id {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.extend([
        ("engine".to_string(), Json::str(&entry.engine)),
        ("winner".to_string(), Json::str(&entry.winner)),
        (
            "served_from_cache".to_string(),
            Json::Bool(entry.served_from_cache),
        ),
    ]);
    if let Some(trace) = &entry.trace {
        pairs.push(("trace".to_string(), proto::trace_json(trace)));
    }
    Json::Obj(pairs)
}

/// Escapes a Prometheus label value: backslash, double quote and
/// newline, per the text exposition format.
fn prom_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Writes a metric's `# HELP` / `# TYPE` preamble.
fn prom_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Writes one sample line, escaping label values.
fn prom_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: String) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (key, val)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{key}=\"{}\"", prom_escape(val)));
        }
        out.push('}');
    }
    out.push_str(&format!(" {value}\n"));
}

/// A single-sample metric: preamble plus one line.
fn prom_scalar(
    out: &mut String,
    name: &str,
    kind: &str,
    help: &str,
    labels: &[(&str, &str)],
    value: String,
) {
    prom_header(out, name, kind, help);
    prom_sample(out, name, labels, value);
}

/// Renders a [`LatencyHistogram`] in exposition format: every
/// cumulative `_bucket` bound (zeros included — an empty histogram must
/// still scrape as a histogram, all zeros), then `_sum` and `_count`.
/// Bounds are converted from the histogram's microsecond buckets to
/// Prometheus-conventional seconds.
fn prom_histogram(out: &mut String, name: &str, help: &str, hist: &LatencyHistogram) {
    prom_header(out, name, "histogram", help);
    let counts = hist.snapshot();
    let mut cumulative = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        cumulative += n;
        let le = LatencyHistogram::upper_bound_us(i) as f64 / 1e6;
        prom_sample(
            out,
            &format!("{name}_bucket"),
            &[("le", &format!("{le}"))],
            cumulative.to_string(),
        );
    }
    prom_sample(
        out,
        &format!("{name}_bucket"),
        &[("le", "+Inf")],
        cumulative.to_string(),
    );
    let sum_s = hist.sum_us.load(Ordering::Relaxed) as f64 / 1e6;
    out.push_str(&format!("{name}_sum {sum_s}\n{name}_count {cumulative}\n"));
}

/// One batch of responses on its way out of a pipelined connection:
/// newline-terminated text (one or more whole lines — the reader corks
/// bursts of immediate answers into a single batch), how many lines it
/// holds (for the busy-lines gauge), and whether the daemon begins
/// winding down once it has been flushed (the batch ending in the
/// `shutdown` acknowledgement).
struct Outgoing {
    text: String,
    lines: usize,
    then_shutdown: bool,
}

/// The mapping daemon: admission queue, worker pool, metrics, snapshot
/// and journal persistence. Construct with [`Server::start`], feed it
/// request lines with [`Server::handle_line`] (or let
/// [`Server::serve_tcp`] / [`Server::serve_stdio`] do it), and call
/// [`Server::finish`] to drain and persist on the way out.
pub struct Server {
    config: ServerConfig,
    solver: BatchSolver,
    queue: Mutex<QueueState>,
    available: Condvar,
    counters: Counters,
    latency: LatencyHistogram,
    /// Per-phase latency histograms: warm probe hits (end-to-end),
    /// queue wait at dispatch, and engine solve time of completed jobs.
    phase_warm_hit: LatencyHistogram,
    phase_queue_wait: LatencyHistogram,
    phase_solve: LatencyHistogram,
    /// Per-engine outcome counters keyed by engine name:
    /// `(wins, cancellations)`.
    engine_stats: Mutex<BTreeMap<String, (u64, u64)>>,
    /// The N slowest completed solves (unordered; sorted at dump time).
    slowlog: Mutex<Vec<SlowEntry>>,
    /// The JSONL trace log, when configured and openable.
    trace_log: Mutex<Option<io::BufWriter<std::fs::File>>>,
    /// When the server booted (the `metrics` response's `uptime_us`).
    started: Instant,
    /// What [`Server::warm_start`] recovered, for the `metrics`
    /// response's journal-health section.
    warm: Mutex<WarmStart>,
    /// The journal writer's final counters, captured by
    /// [`Server::finish`] before detaching (so a post-drain `metrics`
    /// read still reports them).
    journal_final: Mutex<Option<JournalStats>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The attached cache journal, when configured and booted via
    /// [`Server::warm_start`]; drained and joined by [`Server::finish`].
    journal: Mutex<Option<Journal>>,
    /// Responses accepted for delivery but not yet flushed to their
    /// sockets — what [`Server::finish`] waits out so an answered job's
    /// response is not lost to process exit.
    busy_lines: AtomicU64,
}

impl Server {
    /// Boots the worker pool with the production solver
    /// ([`qxmap_map::map_many`], answering through the process-wide
    /// [`SolveCache`]).
    pub fn start(config: ServerConfig) -> Arc<Server> {
        Server::start_with_solver(config, Box::new(qxmap_map::map_many))
    }

    /// [`Server::start`] with an injected batch solver (tests).
    pub fn start_with_solver(config: ServerConfig, solver: BatchSolver) -> Arc<Server> {
        // An unopenable trace log disables the logging, never the
        // daemon: a full disk at boot should cost observability, not
        // service.
        let trace_log = config
            .trace_log
            .as_ref()
            .and_then(|path| {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .ok()
            })
            .map(io::BufWriter::new);
        let server = Arc::new(Server {
            workers: Mutex::new(Vec::new()),
            queue: Mutex::new(QueueState {
                jobs: BinaryHeap::new(),
                in_flight: 0,
                shutdown: false,
                next_seq: 0,
            }),
            available: Condvar::new(),
            counters: Counters::default(),
            latency: LatencyHistogram::default(),
            phase_warm_hit: LatencyHistogram::default(),
            phase_queue_wait: LatencyHistogram::default(),
            phase_solve: LatencyHistogram::default(),
            engine_stats: Mutex::new(BTreeMap::new()),
            slowlog: Mutex::new(Vec::new()),
            trace_log: Mutex::new(trace_log),
            started: Instant::now(),
            warm: Mutex::new(WarmStart::default()),
            journal_final: Mutex::new(None),
            journal: Mutex::new(None),
            busy_lines: AtomicU64::new(0),
            solver,
            config,
        });
        let mut workers = server.workers.lock().expect("no panics under the lock");
        for _ in 0..server.config.workers.max(1) {
            let server = Arc::clone(&server);
            workers.push(std::thread::spawn(move || server.worker_loop()));
        }
        drop(workers);
        server
    }

    /// One worker: pop up to `batch_max` jobs in deadline order —
    /// shedding any whose deadline already expired — solve the rest as
    /// one batch, deliver each outcome, repeat. Exits once shutdown has
    /// begun *and* the queue is empty — every admitted job is answered.
    fn worker_loop(&self) {
        loop {
            let (batch, shed) = {
                let mut q = self.queue.lock().expect("no panics under the lock");
                loop {
                    if !q.jobs.is_empty() {
                        break;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.available.wait(q).expect("no panics under the lock");
                }
                let now = Instant::now();
                let mut batch: Vec<QueuedJob> = Vec::new();
                let mut shed: Vec<QueuedJob> = Vec::new();
                while batch.len() < self.config.batch_max.max(1) {
                    let Some(job) = q.jobs.pop() else { break };
                    if job.deadline.is_some_and(|d| now > d) {
                        shed.push(job);
                    } else {
                        batch.push(job);
                    }
                }
                q.in_flight += batch.len();
                (batch, shed)
            };
            // Shed callbacks run outside the lock: they render and
            // deliver the `deadline_expired` rejection.
            for job in shed {
                self.count_rejection("deadline_expired");
                let waited = job.enqueued.elapsed();
                (job.complete)(JobOutcome::Shed { waited });
            }
            if batch.is_empty() {
                continue;
            }
            for job in &batch {
                let waited = job.enqueued.elapsed();
                let waited_us = u64::try_from(waited.as_micros()).unwrap_or(u64::MAX);
                self.counters
                    .queue_wait_total_us
                    .fetch_add(waited_us, Ordering::Relaxed);
                self.counters
                    .queue_wait_max_us
                    .fetch_max(waited_us, Ordering::Relaxed);
                self.phase_queue_wait.record(waited_us);
                // Traced jobs get the wait as a `queue` span, with the
                // EDF slack still on the clock at dispatch.
                let trace = job.request.trace();
                if trace.is_enabled() {
                    let slack_ms = job
                        .deadline
                        .map(|d| {
                            u64::try_from(d.saturating_duration_since(Instant::now()).as_millis())
                                .unwrap_or(u64::MAX)
                        })
                        .unwrap_or(0);
                    trace.record_with("queue", job.enqueued, waited, &[("slack_ms", slack_ms)]);
                }
            }
            // Windowed jobs run through the windowed engine one by one —
            // it does its own window-level cache probing and parallel
            // solving, so batch deduplication adds nothing there. Plain
            // jobs still go through the batch solver together.
            let mut results: Vec<Option<Result<MapReport, MapperError>>> =
                batch.iter().map(|_| None).collect();
            let mut plain: Vec<MapRequest> = Vec::new();
            let mut plain_at: Vec<usize> = Vec::new();
            for (i, job) in batch.iter().enumerate() {
                match job.windowed {
                    Some(options) => {
                        results[i] = Some(WindowedEngine::with_options(options).run(&job.request));
                    }
                    None => {
                        plain_at.push(i);
                        plain.push(job.request.clone());
                    }
                }
            }
            if !plain.is_empty() {
                let solved = (self.solver)(&plain);
                debug_assert_eq!(solved.len(), plain_at.len());
                for (i, result) in plain_at.into_iter().zip(solved) {
                    results[i] = Some(result);
                }
            }
            let n = batch.len();
            for (job, result) in batch.into_iter().zip(results) {
                (job.complete)(JobOutcome::Done(Box::new(
                    result.expect("every dispatched job was solved"),
                )));
            }
            self.queue
                .lock()
                .expect("no panics under the lock")
                .in_flight -= n;
        }
    }

    /// Admits a job or rejects it without blocking. The rejection is the
    /// protocol's `overloaded` / `shutting_down` error. On admission,
    /// `complete` is invoked exactly once — on a worker thread — with
    /// the job's outcome.
    fn submit(
        &self,
        request: MapRequest,
        windowed: Option<WindowOptions>,
        deadline: Option<Instant>,
        id: Option<Json>,
        complete: Complete,
    ) -> Result<(), Rejection> {
        let mut q = self.queue.lock().expect("no panics under the lock");
        if q.shutdown {
            self.count_rejection("shutting_down");
            return Err(Rejection {
                code: "shutting_down",
                message: "the server is shutting down and admits no new work".to_string(),
                id,
                line: None,
            });
        }
        if q.jobs.len() >= self.config.queue_depth {
            self.count_rejection("overloaded");
            return Err(Rejection {
                code: "overloaded",
                message: format!(
                    "admission queue is full ({} jobs waiting); retry later or against a replica",
                    q.jobs.len()
                ),
                id,
                line: None,
            });
        }
        let seq = q.next_seq;
        q.next_seq += 1;
        q.jobs.push(QueuedJob {
            request,
            windowed,
            deadline,
            enqueued: Instant::now(),
            seq,
            complete,
        });
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    /// Counts, probes and materializes one parsed mapping job: a warm
    /// probe hit or a malformed payload answers immediately; everything
    /// else comes back ready for [`Server::submit`].
    ///
    /// `parsed` is when the connection started parsing the line — read
    /// only for lines that mention `"trace"`, so the untraced warm path
    /// never pays the extra clock read. It becomes the trace origin
    /// (the wire trace therefore covers ingest and queue wait on top of
    /// the report's solve-only `elapsed_us`).
    fn prepare_map(&self, job: proto::MapJob, parsed: Option<Instant>) -> Prepared {
        self.counters.received.fetch_add(1, Ordering::Relaxed);
        let deadline = job.deadline();
        let start = Instant::now();
        let trace = if job.wants_trace() {
            let trace = SpanRecorder::with_origin(parsed.unwrap_or(start));
            if let Some(t0) = parsed {
                // Parse + skeleton ran before the flag was known; the
                // connection timed them from line receipt.
                trace.record("ingest/parse", t0, start.saturating_duration_since(t0));
            }
            trace
        } else {
            SpanRecorder::disabled()
        };
        // Skeleton-first warm path: the parser already computed the
        // payload's canonical skeleton, so probe the solve cache before
        // materializing a circuit or touching the admission queue. A
        // miss falls through to exactly the path a probe-less request
        // would take (and the solve's own cache lookup re-checks the
        // same key).
        let mut probe_span = trace.span("ingest/probe");
        let probed = job.cache_probe().and_then(|p| qxmap_map::probe_one(&p));
        probe_span.counter("hit", u64::from(probed.is_some()));
        probe_span.end();
        if let Some(mut report) = probed {
            let latency_us = self.observe_latency(start, deadline);
            self.phase_warm_hit.record(latency_us);
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            self.counters
                .served_from_cache
                .fetch_add(1, Ordering::Relaxed);
            self.close_ingest(&trace);
            report.trace = trace.finish();
            self.note_slow(SlowEntry {
                latency_us,
                id: job.id.clone(),
                engine: report.engine.clone(),
                winner: report.winner.clone(),
                served_from_cache: true,
                trace: report.trace.clone(),
            });
            return Prepared::Immediate(proto::result_response(job.id, &report).to_string());
        }
        let windowed = job.windowed_options();
        let mat_span = trace.span("ingest/materialize");
        let request = match job.materialize() {
            Ok(request) => request,
            Err(rejection) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                self.count_rejection(rejection.code);
                return Prepared::Immediate(proto::rejection_response(&rejection).to_string());
            }
        };
        mat_span.end();
        self.close_ingest(&trace);
        Prepared::Job {
            request: Box::new(request.with_trace(trace)),
            windowed,
            id: job.id,
            start,
            deadline,
        }
    }

    /// Seals the `ingest` parent span — trace origin (line receipt) to
    /// now, covering parse, probe and materialization.
    fn close_ingest(&self, trace: &SpanRecorder) {
        if let Some(origin) = trace.origin() {
            trace.record("ingest", origin, origin.elapsed());
        }
    }

    /// Bumps the per-reason rejection counter for a structured
    /// rejection code (unknown codes only feed the aggregate `errors`).
    fn count_rejection(&self, code: &str) {
        let cell = match code {
            "parse" => &self.counters.rejected_parse,
            "bad_request" => &self.counters.rejected_bad_request,
            "overloaded" => &self.counters.rejected_overload,
            "deadline_expired" => &self.counters.rejected_deadline,
            "shutting_down" => &self.counters.rejected_shutdown,
            _ => return,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Feeds the per-engine win/cancel counters from a completed
    /// (non-cached) report. The portfolio's only cancellation path is a
    /// zero-cost win racing the other engine down, so that is what the
    /// cancel counter records.
    fn note_engine(&self, report: &MapReport) {
        let mut stats = self.engine_stats.lock().expect("no panics under the lock");
        stats.entry(report.winner.clone()).or_default().0 += 1;
        if report.engine.starts_with("portfolio") && report.cost.objective == 0 {
            let cancelled = if report.winner == "exact" {
                None // the exact engine finishing at 0 needs no cancel
            } else {
                Some("exact")
            };
            if let Some(name) = cancelled {
                stats.entry(name.to_string()).or_default().1 += 1;
            }
        }
    }

    /// Admits a completed solve to the slow-request ring when it ranks
    /// among the N slowest seen, appending admitted entries to the
    /// trace log (JSONL) when one is configured.
    fn note_slow(&self, entry: SlowEntry) {
        let cap = self.config.slowlog_capacity;
        if cap == 0 {
            return;
        }
        let line = {
            let mut ring = self.slowlog.lock().expect("no panics under the lock");
            if ring.len() < cap {
                ring.push(entry);
                ring.last().map(slow_entry_json)
            } else {
                let i = ring
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.latency_us)
                    .map(|(i, _)| i)
                    .expect("ring is non-empty at capacity");
                if entry.latency_us <= ring[i].latency_us {
                    return;
                }
                ring[i] = entry;
                Some(slow_entry_json(&ring[i]))
            }
        };
        if let Some(line) = line {
            self.append_trace_log(&line.to_string());
        }
    }

    /// Appends one line to the trace log. A failed write closes the
    /// log — observability degrades, the daemon keeps serving.
    fn append_trace_log(&self, line: &str) {
        let mut guard = self.trace_log.lock().expect("no panics under the lock");
        if let Some(log) = guard.as_mut() {
            let ok = writeln!(log, "{line}").is_ok() && log.flush().is_ok();
            if !ok {
                *guard = None;
            }
        }
    }

    /// The `slowlog` response: ring entries, slowest first.
    pub fn slowlog_json(&self, id: Option<Json>) -> Json {
        let mut entries: Vec<SlowEntry> = self
            .slowlog
            .lock()
            .expect("no panics under the lock")
            .clone();
        entries.sort_by_key(|e| std::cmp::Reverse(e.latency_us));
        let mut pairs = vec![("type".to_string(), Json::str("slowlog"))];
        if let Some(id) = id {
            pairs.push(("id".to_string(), id));
        }
        pairs.extend([
            (
                "capacity".to_string(),
                Json::num(self.config.slowlog_capacity as u64),
            ),
            (
                "entries".to_string(),
                Json::Arr(entries.iter().map(slow_entry_json).collect()),
            ),
        ]);
        Json::Obj(pairs)
    }

    /// Renders an admitted job's outcome as its response line, feeding
    /// the latency and outcome counters. Shed jobs never enter the
    /// latency histogram — they did no work and would only flatter the
    /// percentiles.
    fn render_map_outcome(
        &self,
        id: Option<Json>,
        start: Instant,
        deadline: Option<Duration>,
        outcome: JobOutcome,
    ) -> String {
        match outcome {
            JobOutcome::Done(result) => {
                let latency_us = self.observe_latency(start, deadline);
                match *result {
                    Ok(report) => {
                        self.counters.completed.fetch_add(1, Ordering::Relaxed);
                        if report.served_from_cache {
                            self.counters
                                .served_from_cache
                                .fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.note_engine(&report);
                        }
                        self.phase_solve
                            .record(u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX));
                        self.note_slow(SlowEntry {
                            latency_us,
                            id: id.clone(),
                            engine: report.engine.clone(),
                            winner: report.winner.clone(),
                            served_from_cache: report.served_from_cache,
                            trace: report.trace.clone(),
                        });
                        proto::result_response(id, &report).to_string()
                    }
                    Err(error) => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        proto::error_response(id, &error).to_string()
                    }
                }
            }
            JobOutcome::Shed { waited } => {
                let rejection = Rejection {
                    code: "deadline_expired",
                    message: format!(
                        "deadline expired after {} ms in the admission queue; \
                         the job was shed before dispatch",
                        waited.as_millis()
                    ),
                    id,
                    line: None,
                };
                proto::rejection_response(&rejection).to_string()
            }
        }
    }

    /// The `shutdown` acknowledgement line.
    fn shutdown_ack(id: Option<Json>) -> String {
        Json::Obj(
            [
                ("type".to_string(), Json::str("ok")),
                ("message".to_string(), Json::str("shutting down")),
            ]
            .into_iter()
            .chain(id.map(|id| ("id".to_string(), id)))
            .collect(),
        )
        .to_string()
    }

    /// Handles one request line end to end (parse, admit, wait, render),
    /// returning the response line to write back. Mapping jobs block the
    /// calling thread until their outcome is ready — this is the
    /// strictly request/response path used by stdio mode and tests; TCP
    /// connections go through the pipelined path instead.
    pub fn handle_line(&self, line: &str) -> Handled {
        // The extra clock read for ingest attribution is paid only by
        // lines that could be asking for a trace — the untraced warm
        // path stays as it was.
        let parsed = line.contains("\"trace\"").then(Instant::now);
        let request = match proto::parse_request(line) {
            Ok(request) => request,
            Err(rejection) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                self.count_rejection(rejection.code);
                return Handled::Reply(proto::rejection_response(&rejection).to_string());
            }
        };
        match request {
            Request::Metrics { id, prometheus } => Handled::Reply(if prometheus {
                self.metrics_prometheus(id).to_string()
            } else {
                self.metrics_json(id).to_string()
            }),
            Request::Slowlog { id } => Handled::Reply(self.slowlog_json(id).to_string()),
            Request::Shutdown { id } => Handled::ReplyAndShutdown(Server::shutdown_ack(id)),
            Request::Map(job) => Handled::Reply(match self.prepare_map(*job, parsed) {
                Prepared::Immediate(response) => response,
                Prepared::Job {
                    request,
                    windowed,
                    id,
                    start,
                    deadline,
                } => {
                    let absolute = deadline.map(|d| start + d);
                    let (outcome_tx, outcome_rx) = mpsc::channel();
                    let complete: Complete = Box::new(move |outcome| {
                        let _ = outcome_tx.send(outcome);
                    });
                    match self.submit(*request, windowed, absolute, id.clone(), complete) {
                        Err(rejection) => proto::rejection_response(&rejection).to_string(),
                        Ok(()) => {
                            let outcome = outcome_rx
                                .recv()
                                .expect("workers answer every admitted job before exiting");
                            self.render_map_outcome(id, start, deadline, outcome)
                        }
                    }
                }
            }),
        }
    }

    /// Records one finished map request's end-to-end latency, returning
    /// it in microseconds. The deadline miss is judged on what the
    /// client asked for: the wall clock against the request's own
    /// deadline, queueing included.
    fn observe_latency(&self, start: Instant, deadline: Option<Duration>) -> u64 {
        let elapsed = start.elapsed();
        let latency = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.counters
            .total_latency_us
            .fetch_add(latency, Ordering::Relaxed);
        self.counters
            .max_latency_us
            .fetch_max(latency, Ordering::Relaxed);
        self.latency.record(latency);
        if deadline.is_some_and(|d| elapsed > d) {
            self.counters
                .deadline_misses
                .fetch_add(1, Ordering::Relaxed);
        }
        latency
    }

    /// The `metrics` response: solve-cache statistics, queue state
    /// (including the waiting jobs' remaining-deadline distribution),
    /// and request/latency counters.
    pub fn metrics_json(&self, id: Option<Json>) -> Json {
        let cache = SolveCache::shared().stats();
        let (depth, in_flight, deadlined, slack_min_ms, slack_p50_ms) = {
            let q = self.queue.lock().expect("no panics under the lock");
            let now = Instant::now();
            // Remaining slack of every *deadlined* waiter, saturating at
            // zero for already-expired jobs still awaiting shedding.
            let mut slacks: Vec<u64> = q
                .jobs
                .iter()
                .filter_map(|job| job.deadline)
                .map(|d| {
                    u64::try_from(d.saturating_duration_since(now).as_millis()).unwrap_or(u64::MAX)
                })
                .collect();
            slacks.sort_unstable();
            let min = slacks.first().copied().unwrap_or(0);
            let p50 = slacks.get(slacks.len() / 2).copied().unwrap_or(0);
            (q.jobs.len(), q.in_flight, slacks.len(), min, p50)
        };
        let c = &self.counters;
        let get = |a: &AtomicU64| Json::num(a.load(Ordering::Relaxed));
        let mut pairs = vec![("type".to_string(), Json::str("metrics"))];
        if let Some(id) = id {
            pairs.push(("id".to_string(), id));
        }
        pairs.extend([
            (
                "cache".to_string(),
                Json::obj([
                    ("hits", Json::num(cache.hits)),
                    ("misses", Json::num(cache.misses)),
                    ("evictions", Json::num(cache.evictions)),
                    ("entries", Json::num(cache.entries as u64)),
                    ("approx_bytes", Json::num(cache.approx_bytes as u64)),
                    (
                        "capacity",
                        Json::num(SolveCache::shared().capacity() as u64),
                    ),
                ]),
            ),
            (
                "queue".to_string(),
                Json::obj([
                    ("depth", Json::num(depth as u64)),
                    ("capacity", Json::num(self.config.queue_depth as u64)),
                    ("in_flight", Json::num(in_flight as u64)),
                    ("workers", Json::num(self.config.workers.max(1) as u64)),
                    ("deadlined", Json::num(deadlined as u64)),
                    ("slack_min_ms", Json::num(slack_min_ms)),
                    ("slack_p50_ms", Json::num(slack_p50_ms)),
                    ("wait_total_us", get(&c.queue_wait_total_us)),
                    ("wait_max_us", get(&c.queue_wait_max_us)),
                ]),
            ),
            (
                "requests".to_string(),
                Json::obj([
                    ("received", get(&c.received)),
                    ("completed", get(&c.completed)),
                    ("errors", get(&c.errors)),
                    ("rejected_overload", get(&c.rejected_overload)),
                    ("rejected_deadline", get(&c.rejected_deadline)),
                    (
                        "rejected",
                        Json::obj([
                            ("parse", get(&c.rejected_parse)),
                            ("bad_request", get(&c.rejected_bad_request)),
                            ("overloaded", get(&c.rejected_overload)),
                            ("deadline_expired", get(&c.rejected_deadline)),
                            ("shutting_down", get(&c.rejected_shutdown)),
                        ]),
                    ),
                    ("served_from_cache", get(&c.served_from_cache)),
                    ("deadline_misses", get(&c.deadline_misses)),
                    ("total_latency_us", get(&c.total_latency_us)),
                    ("max_latency_us", get(&c.max_latency_us)),
                ]),
            ),
            ("latency".to_string(), self.latency.to_json()),
            (
                "phases".to_string(),
                Json::obj([
                    ("warm_hit", self.phase_warm_hit.to_json()),
                    ("queue_wait", self.phase_queue_wait.to_json()),
                    ("solve", self.phase_solve.to_json()),
                ]),
            ),
            ("engines".to_string(), self.engines_json()),
            (
                "uptime_us".to_string(),
                Json::num(u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)),
            ),
            ("version".to_string(), Json::str(env!("CARGO_PKG_VERSION"))),
        ]);
        if let Some(journal) = self.journal_health() {
            pairs.push(("journal".to_string(), journal));
        }
        Json::Obj(pairs)
    }

    /// The per-engine win/cancel counters, as `{"name": {"wins": n,
    /// "cancels": m}}`.
    fn engines_json(&self) -> Json {
        let stats = self.engine_stats.lock().expect("no panics under the lock");
        Json::Obj(
            stats
                .iter()
                .map(|(name, &(wins, cancels))| {
                    (
                        name.clone(),
                        Json::obj([("wins", Json::num(wins)), ("cancels", Json::num(cancels))]),
                    )
                })
                .collect(),
        )
    }

    /// Journal health for the `metrics` response: boot-time replay
    /// numbers plus the writer's live (or, after [`Server::finish`],
    /// final) counters. `None` when no journal is configured.
    fn journal_health(&self) -> Option<Json> {
        self.config.journal.as_ref()?;
        let replay = self
            .warm
            .lock()
            .expect("no panics under the lock")
            .journal
            .unwrap_or_default();
        let stats = {
            let live = self.journal.lock().expect("no panics under the lock");
            match live.as_ref() {
                Some(journal) => journal.stats(),
                None => self
                    .journal_final
                    .lock()
                    .expect("no panics under the lock")
                    .unwrap_or_default(),
            }
        };
        Some(Json::obj([
            ("appended", Json::num(stats.appended)),
            ("compactions", Json::num(stats.compactions)),
            ("write_errors", Json::num(stats.write_errors)),
            ("replay_admitted", Json::num(replay.admitted as u64)),
            ("replay_rejected", Json::num(replay.rejected as u64)),
            ("replay_torn", Json::Bool(replay.torn)),
        ]))
    }

    /// The `{"type": "metrics", "format": "prometheus"}` response: the
    /// exposition text (see [`Server::prometheus_text`]) wrapped as the
    /// `body` of a one-line JSON envelope, keeping the wire protocol
    /// line-delimited.
    pub fn metrics_prometheus(&self, id: Option<Json>) -> Json {
        let mut pairs = vec![("type".to_string(), Json::str("metrics"))];
        if let Some(id) = id {
            pairs.push(("id".to_string(), id));
        }
        pairs.extend([
            ("format".to_string(), Json::str("prometheus")),
            ("body".to_string(), Json::str(self.prometheus_text())),
        ]);
        Json::Obj(pairs)
    }

    /// Renders the same counters the JSON `metrics` response reports as
    /// Prometheus text exposition (`# HELP`/`# TYPE` + samples;
    /// histograms as cumulative buckets in seconds).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let cache = SolveCache::shared().stats();
        let (depth, in_flight) = {
            let q = self.queue.lock().expect("no panics under the lock");
            (q.jobs.len(), q.in_flight)
        };
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        prom_scalar(
            &mut out,
            "qxmap_build_info",
            "gauge",
            "Constant 1, labeled with the daemon's crate version.",
            &[("version", env!("CARGO_PKG_VERSION"))],
            "1".to_string(),
        );
        prom_scalar(
            &mut out,
            "qxmap_uptime_seconds",
            "gauge",
            "Seconds since the daemon booted.",
            &[],
            format!("{:.6}", self.started.elapsed().as_secs_f64()),
        );
        for (name, help, value) in [
            (
                "qxmap_cache_hits_total",
                "Solve-cache lookup hits.",
                cache.hits,
            ),
            (
                "qxmap_cache_misses_total",
                "Solve-cache lookup misses.",
                cache.misses,
            ),
            (
                "qxmap_cache_evictions_total",
                "Solve-cache LRU evictions.",
                cache.evictions,
            ),
            (
                "qxmap_requests_received_total",
                "Mapping jobs received.",
                get(&c.received),
            ),
            (
                "qxmap_requests_completed_total",
                "Mapping jobs answered with a result.",
                get(&c.completed),
            ),
            (
                "qxmap_requests_errors_total",
                "Requests answered with an error.",
                get(&c.errors),
            ),
            (
                "qxmap_requests_cached_total",
                "Mapping jobs served from the solve cache.",
                get(&c.served_from_cache),
            ),
            (
                "qxmap_deadline_misses_total",
                "Completed jobs that overran their own deadline_ms.",
                get(&c.deadline_misses),
            ),
        ] {
            prom_scalar(&mut out, name, "counter", help, &[], value.to_string());
        }
        for (name, help, value) in [
            (
                "qxmap_cache_entries",
                "Solve-cache entries resident.",
                cache.entries as u64,
            ),
            (
                "qxmap_queue_depth",
                "Jobs waiting in the admission queue.",
                depth as u64,
            ),
            (
                "qxmap_queue_in_flight",
                "Jobs dispatched to workers and not yet answered.",
                in_flight as u64,
            ),
            (
                "qxmap_workers",
                "Worker threads.",
                self.config.workers.max(1) as u64,
            ),
        ] {
            prom_scalar(&mut out, name, "gauge", help, &[], value.to_string());
        }
        prom_header(
            &mut out,
            "qxmap_requests_rejected_total",
            "counter",
            "Requests rejected before any solver ran, by reason.",
        );
        for (reason, cell) in [
            ("parse", &c.rejected_parse),
            ("bad_request", &c.rejected_bad_request),
            ("overloaded", &c.rejected_overload),
            ("deadline_expired", &c.rejected_deadline),
            ("shutting_down", &c.rejected_shutdown),
        ] {
            prom_sample(
                &mut out,
                "qxmap_requests_rejected_total",
                &[("reason", reason)],
                get(cell).to_string(),
            );
        }
        {
            let stats = self.engine_stats.lock().expect("no panics under the lock");
            prom_header(
                &mut out,
                "qxmap_engine_wins_total",
                "counter",
                "Race wins by engine name.",
            );
            for (name, &(wins, _)) in stats.iter() {
                prom_sample(
                    &mut out,
                    "qxmap_engine_wins_total",
                    &[("engine", name)],
                    wins.to_string(),
                );
            }
            prom_header(
                &mut out,
                "qxmap_engine_cancels_total",
                "counter",
                "Engines cancelled mid-race by a zero-cost win.",
            );
            for (name, &(_, cancels)) in stats.iter() {
                prom_sample(
                    &mut out,
                    "qxmap_engine_cancels_total",
                    &[("engine", name)],
                    cancels.to_string(),
                );
            }
        }
        if let Some(Json::Obj(journal)) = self.journal_health() {
            for (key, value) in &journal {
                let (kind, rendered) = match value {
                    Json::Bool(b) => ("gauge", u64::from(*b).to_string()),
                    other => ("counter", other.to_string()),
                };
                prom_scalar(
                    &mut out,
                    &format!("qxmap_journal_{key}"),
                    kind,
                    "Cache-journal health (see the JSON metrics journal section).",
                    &[],
                    rendered,
                );
            }
        }
        prom_histogram(
            &mut out,
            "qxmap_request_latency_seconds",
            "End-to-end mapping-request latency.",
            &self.latency,
        );
        prom_histogram(
            &mut out,
            "qxmap_warm_hit_latency_seconds",
            "Latency of requests answered by the skeleton-first cache probe.",
            &self.phase_warm_hit,
        );
        prom_histogram(
            &mut out,
            "qxmap_queue_wait_seconds",
            "Time dispatched jobs waited in the admission queue.",
            &self.phase_queue_wait,
        );
        prom_histogram(
            &mut out,
            "qxmap_solve_seconds",
            "Engine solve time of completed jobs.",
            &self.phase_solve,
        );
        out
    }

    /// Closes admission and wakes the workers; already-admitted jobs
    /// still complete. Idempotent.
    pub fn begin_shutdown(&self) {
        self.queue
            .lock()
            .expect("no panics under the lock")
            .shutdown = true;
        self.available.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.queue
            .lock()
            .expect("no panics under the lock")
            .shutdown
    }

    /// Drains the pool (joining every worker — every admitted job is
    /// answered first), drains and detaches the cache journal, and
    /// snapshots the solve cache to the configured path. Returns the
    /// number of entries persisted, `None` when no snapshot path is
    /// configured.
    ///
    /// # Errors
    ///
    /// Propagates journal- and snapshot-write I/O errors; the drain
    /// itself cannot fail.
    pub fn finish(&self) -> io::Result<Option<usize>> {
        self.begin_shutdown();
        let workers = std::mem::take(&mut *self.workers.lock().expect("no panics under the lock"));
        for worker in workers {
            worker.join().expect("workers do not panic");
        }
        // Workers answered every admitted job; give the (detached)
        // connection threads a moment to flush those answers to their
        // sockets before the process exits. Bounded: a client that has
        // stopped reading must not be able to hold shutdown hostage
        // through a blocked TCP write.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.busy_lines.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let journal = self
            .journal
            .lock()
            .expect("no panics under the lock")
            .take();
        if let Some(journal) = journal {
            // Final counters survive the detach so a post-drain
            // `metrics` read still reports journal health.
            *self.journal_final.lock().expect("no panics under the lock") = Some(journal.stats());
            journal.finish()?;
        }
        if let Some(log) = self
            .trace_log
            .lock()
            .expect("no panics under the lock")
            .as_mut()
        {
            let _ = log.flush();
        }
        match &self.config.snapshot {
            None => Ok(None),
            Some(path) => save_snapshot(path).map(Some),
        }
    }

    /// Recovers warm state into the process-wide [`SolveCache`]: the
    /// configured snapshot first, then the configured journal — which
    /// is replayed record by record (torn or corrupt records rejected
    /// individually) and left attached, so every solve from here on is
    /// journaled by a background thread until [`Server::finish`]. A
    /// missing file is a cold start; a rejected snapshot (corrupted,
    /// truncated, version-mismatched) is reported as the error string
    /// and the cache is left untouched — the daemon should log it and
    /// start cold rather than refuse to boot.
    ///
    /// # Errors
    ///
    /// Returns a description of why the snapshot was rejected or the
    /// journal could not be attached.
    pub fn warm_start(&self) -> Result<WarmStart, String> {
        let mut warm = WarmStart::default();
        if let Some(path) = &self.config.snapshot {
            warm.snapshot_entries = load_snapshot(path)?;
        }
        if let Some(path) = &self.config.journal {
            let (journal, replay) = Journal::attach(
                SolveCache::shared(),
                path,
                self.config.journal_compact_after,
            )
            .map_err(|e| format!("attaching journal {}: {e}", path.display()))?;
            *self.journal.lock().expect("no panics under the lock") = Some(journal);
            warm.journal = Some(replay);
        }
        *self.warm.lock().expect("no panics under the lock") = warm;
        Ok(warm)
    }

    /// Accept loop: serves connections until shutdown begins, then
    /// returns (call [`Server::finish`] after). Each connection gets a
    /// reader thread and a writer thread, pipelining up to
    /// [`ServerConfig::pipeline_depth`] mapping jobs.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection I/O errors only
    /// end their connection.
    pub fn serve_tcp(self: &Arc<Server>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            // Checked every iteration, not only when accept() idles: a
            // stream of reconnecting clients (each now due a
            // shutting_down rejection) must not keep the accept loop —
            // and with it the shutdown snapshot — alive forever.
            if self.is_shutting_down() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    // The protocol is one small line each way; Nagle's
                    // algorithm would park every response behind a
                    // delayed ACK (~40 ms) — two orders of magnitude
                    // over a warm cache hit.
                    stream.set_nodelay(true)?;
                    let server = Arc::clone(self);
                    // Connection threads are detached deliberately: one
                    // may sit in a blocking read for as long as its
                    // client stays idle, and shutdown must not wait for
                    // that. Admitted work is still drained by `finish`.
                    std::thread::spawn(move || server.serve_connection(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Hands a response line to a connection's writer thread, keeping
    /// the busy-lines gauge exact: the sender accounts for the line and
    /// the writer releases it after flushing (or discarding, once the
    /// socket is dead).
    fn send_out(&self, out: &mpsc::Sender<Outgoing>, mut line: String, then_shutdown: bool) {
        line.push('\n');
        self.send_out_batch(out, line, 1, then_shutdown);
    }

    /// [`Server::send_out`] for a corked batch: `text` is one or more
    /// whole newline-terminated response lines, accounted as `lines` in
    /// the busy-lines gauge.
    fn send_out_batch(
        &self,
        out: &mpsc::Sender<Outgoing>,
        text: String,
        lines: usize,
        then_shutdown: bool,
    ) {
        self.busy_lines.fetch_add(lines as u64, Ordering::AcqRel);
        if out
            .send(Outgoing {
                text,
                lines,
                then_shutdown,
            })
            .is_err()
        {
            self.busy_lines.fetch_sub(lines as u64, Ordering::AcqRel);
        }
    }

    /// One pipelined connection. The reader (this call) parses lines,
    /// answers what it can immediately, and submits mapping jobs whose
    /// completions — possibly out of submission order — flow through a
    /// dedicated writer thread that owns the socket's write half. At
    /// `pipeline_depth` jobs in flight the reader stops consuming input
    /// until a completion frees a slot.
    fn serve_connection(self: &Arc<Server>, stream: TcpStream) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let (out_tx, out_rx) = mpsc::channel::<Outgoing>();
        let writer_thread = {
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let mut dead = false;
                while let Ok(first) = out_rx.recv() {
                    // Coalesce the backlog into one write + flush: under
                    // pipelining completions arrive in bursts, and one
                    // syscall round per burst (instead of per response)
                    // is most of the throughput win on a busy box.
                    let mut batch = vec![first];
                    while let Ok(more) = out_rx.try_recv() {
                        batch.push(more);
                    }
                    if !dead {
                        let mut buf = String::new();
                        for out in &batch {
                            buf.push_str(&out.text);
                        }
                        dead =
                            !(writer.write_all(buf.as_bytes()).is_ok() && writer.flush().is_ok());
                    }
                    for out in &batch {
                        server
                            .busy_lines
                            .fetch_sub(out.lines as u64, Ordering::AcqRel);
                        if out.then_shutdown {
                            // An undeliverable ack (client already hung
                            // up) must not cancel an accepted shutdown.
                            server.begin_shutdown();
                        }
                    }
                }
            })
        };
        let in_flight = Arc::new((Mutex::new(0usize), Condvar::new()));
        let cap = self.config.pipeline_depth.max(1);
        // A large read buffer feeds the cork below: everything the
        // kernel has for this connection arrives in one syscall, and
        // the burst of immediate answers it produces leaves as one
        // batch.
        let mut reader = BufReader::with_capacity(64 * 1024, stream);
        // Corked immediate responses: while more complete request lines
        // sit in the read buffer, answers accumulate here and the
        // writer thread is woken once per burst, not once per line. A
        // lone request still flushes immediately (its burst is one
        // line), but a pipelining client stops paying a writer wakeup —
        // and, on a saturated core, a preemption — per response.
        let mut pending = String::new();
        let mut pending_lines = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let text = line.trim_end_matches(['\n', '\r']);
            if !text.trim().is_empty() {
                let parsed = text.contains("\"trace\"").then(Instant::now);
                match proto::parse_request(text) {
                    Err(rejection) => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        self.count_rejection(rejection.code);
                        pending.push_str(&proto::rejection_response(&rejection).to_string());
                        pending.push('\n');
                        pending_lines += 1;
                    }
                    Ok(Request::Metrics { id, prometheus }) => {
                        let response = if prometheus {
                            self.metrics_prometheus(id).to_string()
                        } else {
                            self.metrics_json(id).to_string()
                        };
                        pending.push_str(&response);
                        pending.push('\n');
                        pending_lines += 1;
                    }
                    Ok(Request::Slowlog { id }) => {
                        pending.push_str(&self.slowlog_json(id).to_string());
                        pending.push('\n');
                        pending_lines += 1;
                    }
                    Ok(Request::Shutdown { id }) => {
                        // Stop reading; in-flight jobs still answer
                        // through the writer, which begins wind-down
                        // after flushing the batch ending in this ack.
                        pending.push_str(&Server::shutdown_ack(id));
                        pending.push('\n');
                        self.send_out_batch(&out_tx, pending, pending_lines + 1, true);
                        drop(out_tx);
                        let _ = writer_thread.join();
                        return;
                    }
                    Ok(Request::Map(job)) => match self.prepare_map(*job, parsed) {
                        Prepared::Immediate(response) => {
                            pending.push_str(&response);
                            pending.push('\n');
                            pending_lines += 1;
                        }
                        Prepared::Job {
                            request,
                            windowed,
                            id,
                            start,
                            deadline,
                        } => {
                            // About to (possibly) block on a slot:
                            // release anything corked first.
                            if pending_lines > 0 {
                                self.send_out_batch(
                                    &out_tx,
                                    std::mem::take(&mut pending),
                                    std::mem::replace(&mut pending_lines, 0),
                                    false,
                                );
                            }
                            // Claim an in-flight slot before submitting:
                            // the completion may fire (and release the
                            // slot) on a worker thread before submit()
                            // even returns.
                            {
                                let (count, freed) = &*in_flight;
                                let mut count = count.lock().expect("no panics under the lock");
                                while *count >= cap {
                                    count = freed.wait(count).expect("no panics under the lock");
                                }
                                *count += 1;
                            }
                            let complete: Complete = {
                                let server = Arc::clone(self);
                                let out_tx = out_tx.clone();
                                let in_flight = Arc::clone(&in_flight);
                                let id = id.clone();
                                Box::new(move |outcome| {
                                    let response =
                                        server.render_map_outcome(id, start, deadline, outcome);
                                    server.send_out(&out_tx, response, false);
                                    let (count, freed) = &*in_flight;
                                    *count.lock().expect("no panics under the lock") -= 1;
                                    freed.notify_one();
                                })
                            };
                            let absolute = deadline.map(|d| start + d);
                            if let Err(rejection) =
                                self.submit(*request, windowed, absolute, id, complete)
                            {
                                let (count, freed) = &*in_flight;
                                *count.lock().expect("no panics under the lock") -= 1;
                                freed.notify_one();
                                pending
                                    .push_str(&proto::rejection_response(&rejection).to_string());
                                pending.push('\n');
                                pending_lines += 1;
                            }
                        }
                    },
                }
            }
            // Uncork once the read buffer holds no further complete
            // request: the next read_line would block (or at least
            // syscall), so everything answered this burst ships now.
            if pending_lines > 0 && !reader.buffer().contains(&b'\n') {
                self.send_out_batch(
                    &out_tx,
                    std::mem::take(&mut pending),
                    std::mem::replace(&mut pending_lines, 0),
                    false,
                );
            }
        }
        if pending_lines > 0 {
            self.send_out_batch(&out_tx, pending, pending_lines, false);
        }
        drop(out_tx);
        // In-flight completions hold their own senders; the writer
        // drains every outstanding response before exiting.
        let _ = writer_thread.join();
    }

    /// Stdio loop: one request line per stdin line, one response line on
    /// stdout — strictly request/response, no pipelining; returns on EOF
    /// or a `shutdown` request (call [`Server::finish`] after).
    ///
    /// # Errors
    ///
    /// Propagates stdin/stdout I/O errors.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        for line in stdin.lock().lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let handled = self.handle_line(&line);
            {
                let mut out = stdout.lock();
                writeln!(out, "{}", handled.response())?;
                out.flush()?;
            }
            if matches!(handled, Handled::ReplyAndShutdown(_)) {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Writes the process-wide cache's snapshot to `path` atomically (temp
/// file + rename), returning the entry count persisted.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_snapshot(path: &Path) -> io::Result<usize> {
    let bytes = SolveCache::shared().export_snapshot();
    // Report what the file actually holds — the cache can move between
    // any two lock acquisitions, so the count comes from the exported
    // header, not a separate stats() read.
    let entries = qxmap_map::snapshot_entry_count(&bytes).unwrap_or(0);
    // The temp name is per-process: replicas legitimately share one
    // snapshot path, and concurrent shutdowns must each publish a
    // complete file (last rename wins) rather than racing on one temp.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(entries)
}

/// Imports the snapshot at `path` into the process-wide cache. A
/// missing file is a cold start (`Ok(0)`).
///
/// # Errors
///
/// Returns a description of the I/O failure or snapshot defect; the
/// cache is untouched on error.
pub fn load_snapshot(path: &Path) -> Result<usize, String> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    SolveCache::shared()
        .import_snapshot(&bytes)
        .map_err(|e| format!("rejected snapshot {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    const QASM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[1];\n";

    fn map_line() -> String {
        format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\"}}",
            Json::str(QASM)
        )
    }

    fn config(workers: usize, queue_depth: usize, batch_max: usize) -> ServerConfig {
        ServerConfig {
            workers,
            queue_depth,
            batch_max,
            ..ServerConfig::default()
        }
    }

    fn request(seed: u64) -> MapRequest {
        MapRequest::new(paper_example(), devices::ibm_qx4()).with_seed(seed)
    }

    /// Submits through a channel-backed completion, mirroring the
    /// synchronous path: the receiver yields the job's [`JobOutcome`].
    fn submit_job(
        server: &Server,
        request: MapRequest,
        deadline: Option<Instant>,
    ) -> Result<mpsc::Receiver<JobOutcome>, Rejection> {
        let (tx, rx) = mpsc::channel();
        server
            .submit(
                request,
                None,
                deadline,
                None,
                Box::new(move |outcome| {
                    let _ = tx.send(outcome);
                }),
            )
            .map(|()| rx)
    }

    fn done(outcome: JobOutcome) -> Result<MapReport, MapperError> {
        match outcome {
            JobOutcome::Done(result) => *result,
            JobOutcome::Shed { .. } => panic!("job unexpectedly shed"),
        }
    }

    /// A solver that blocks until released — pins down overload, drain
    /// and dispatch-order behavior without timing races.
    fn gated_solver() -> (BatchSolver, mpsc::Sender<()>) {
        let (release, gate) = mpsc::channel::<()>();
        let gate = Mutex::new(gate);
        let solver: BatchSolver = Box::new(move |requests| {
            gate.lock()
                .expect("no panics under the lock")
                .recv()
                .expect("the test releases the gate once per batch");
            qxmap_map::map_many(requests)
        });
        (solver, release)
    }

    /// Parks the (single) worker on a gated job so later submissions
    /// pile up in the queue deterministically.
    fn occupy_worker(server: &Server) -> mpsc::Receiver<JobOutcome> {
        let receiver = submit_job(server, request(0), None).expect("admitted");
        while server.queue.lock().unwrap().in_flight == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        receiver
    }

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        let h = LatencyHistogram::default();
        for us in [10, 10, 10, 10, 10, 10, 10, 10, 10, 2000] {
            h.record(us);
        }
        let counts = h.snapshot();
        assert_eq!(counts.iter().sum::<u64>(), 10);
        // 10 µs lands in [8, 16); the quantile reports the bucket's
        // upper bound.
        assert_eq!(LatencyHistogram::percentile(&counts, 0.50), 15);
        assert_eq!(LatencyHistogram::percentile(&counts, 0.99), 2047);
        let json = h.to_json();
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(10));
        assert_eq!(json.get("p50_us").and_then(Json::as_u64), Some(15));
        assert_eq!(json.get("p99_us").and_then(Json::as_u64), Some(2047));
        let buckets = json.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 2, "zero buckets are elided");
        // An empty histogram renders zeros, not NaNs.
        let empty = LatencyHistogram::default().to_json();
        assert_eq!(empty.get("p95_us").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn deadline_misses_and_latency_feed_metrics() {
        // A solver slower than the request's deadline: the response is
        // still delivered (the engines degrade, they don't fabricate
        // errors), but the miss is counted and the latency lands in the
        // histogram.
        let solver: BatchSolver = Box::new(|requests| {
            std::thread::sleep(Duration::from_millis(30));
            qxmap_map::map_many(requests)
        });
        let server = Server::start_with_solver(config(1, 8, 1), solver);
        let missed = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\",\"deadline_ms\":1}}",
            Json::str(QASM)
        );
        server.handle_line(&missed);
        let metrics = server.metrics_json(None);
        let requests = metrics.get("requests").unwrap();
        assert_eq!(
            requests.get("deadline_misses").and_then(Json::as_u64),
            Some(1)
        );
        let latency = metrics.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(1));
        assert!(
            latency.get("p50_us").and_then(Json::as_u64).unwrap() >= 30_000,
            "{latency}"
        );
        // A deadline-free request records latency but cannot miss.
        server.handle_line(&map_line());
        let metrics = server.metrics_json(None);
        let requests = metrics.get("requests").unwrap();
        assert_eq!(
            requests.get("deadline_misses").and_then(Json::as_u64),
            Some(1)
        );
        let latency = metrics.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(2));
        server.finish().unwrap();
    }

    #[test]
    fn overload_is_rejected_with_a_structured_error() {
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(config(1, 1, 1), solver);
        // First job: admitted, drained by the (gated) worker. Wait until
        // it actually leaves the queue so the depth accounting below is
        // deterministic.
        let first = occupy_worker(&server);
        // Second job: waits in the queue (depth 1/1). Third: overloaded.
        let _second = submit_job(&server, request(1), None).expect("queued");
        let rejected = submit_job(&server, request(2), None).unwrap_err();
        assert_eq!(rejected.code, "overloaded");
        assert!(rejected.message.contains("queue is full"));
        let metrics = server.metrics_json(None);
        let requests = metrics.get("requests").unwrap();
        assert_eq!(
            requests.get("rejected_overload").and_then(Json::as_u64),
            Some(1)
        );
        // Release both batches; graceful shutdown drains everything.
        release.send(()).unwrap();
        release.send(()).unwrap();
        assert!(done(first.recv().unwrap()).is_ok());
        server.finish().unwrap();
    }

    #[test]
    fn shutdown_drains_admitted_jobs_and_rejects_new_ones() {
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(config(1, 8, 8), solver);
        let admitted = submit_job(&server, request(0), None).expect("admitted");
        server.begin_shutdown();
        let rejected = submit_job(&server, request(0), None).unwrap_err();
        assert_eq!(rejected.code, "shutting_down");
        release.send(()).unwrap();
        let report = done(admitted.recv().unwrap()).expect("drained, not dropped");
        report
            .verify(&paper_example(), &devices::ibm_qx4())
            .unwrap();
        server.finish().unwrap();
    }

    #[test]
    fn earliest_deadline_first_dispatch_with_fifo_among_equals() {
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(config(1, 8, 1), solver);
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let tagged = |tag: &'static str| -> Complete {
            let order = Arc::clone(&order);
            Box::new(move |_| order.lock().unwrap().push(tag))
        };
        // Park the worker so the next three submissions rank against
        // each other in the queue rather than dispatching on arrival.
        server
            .submit(request(0), None, None, None, tagged("gate"))
            .unwrap();
        while server.queue.lock().unwrap().in_flight == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let now = Instant::now();
        // Submitted in the *worst* order for EDF: no deadline first,
        // loosest deadline second, tightest last.
        server
            .submit(request(1), None, None, None, tagged("none"))
            .unwrap();
        server
            .submit(
                request(2),
                None,
                Some(now + Duration::from_secs(120)),
                None,
                tagged("late"),
            )
            .unwrap();
        server
            .submit(
                request(3),
                None,
                Some(now + Duration::from_secs(30)),
                None,
                tagged("soon"),
            )
            .unwrap();
        // While they wait: the metrics queue section reports the
        // deadlined waiters' remaining-slack distribution.
        let metrics = server.metrics_json(None);
        let queue = metrics.get("queue").unwrap();
        assert_eq!(queue.get("deadlined").and_then(Json::as_u64), Some(2));
        let min = queue.get("slack_min_ms").and_then(Json::as_u64).unwrap();
        let p50 = queue.get("slack_p50_ms").and_then(Json::as_u64).unwrap();
        assert!(min > 20_000 && min <= 30_000, "{min}");
        assert!(p50 >= min && p50 <= 120_000, "{p50}");
        for _ in 0..4 {
            release.send(()).unwrap();
        }
        // finish() joins the workers, so every completion has fired.
        server.finish().unwrap();
        assert_eq!(*order.lock().unwrap(), ["gate", "soon", "late", "none"]);
        // Dispatched jobs fed the queue-wait counters.
        let metrics = server.metrics_json(None);
        let queue = metrics.get("queue").unwrap();
        assert!(queue.get("wait_total_us").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn deadline_less_jobs_keep_fifo_order() {
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(config(1, 8, 1), solver);
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let tagged = |tag: &'static str| -> Complete {
            let order = Arc::clone(&order);
            Box::new(move |_| order.lock().unwrap().push(tag))
        };
        server
            .submit(request(0), None, None, None, tagged("gate"))
            .unwrap();
        while server.queue.lock().unwrap().in_flight == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for tag in ["a", "b", "c"] {
            server
                .submit(request(0), None, None, None, tagged(tag))
                .unwrap();
        }
        for _ in 0..4 {
            release.send(()).unwrap();
        }
        server.finish().unwrap();
        assert_eq!(*order.lock().unwrap(), ["gate", "a", "b", "c"]);
    }

    #[test]
    fn expired_jobs_are_shed_at_dequeue_and_never_dispatched() {
        // A gated solver that also counts every request it is handed:
        // the shed job must never show up in it.
        let dispatched = Arc::new(AtomicU64::new(0));
        let (release, gate) = mpsc::channel::<()>();
        let gate = Mutex::new(gate);
        let counter = Arc::clone(&dispatched);
        let solver: BatchSolver = Box::new(move |requests| {
            counter.fetch_add(requests.len() as u64, Ordering::Relaxed);
            gate.lock().unwrap().recv().unwrap();
            qxmap_map::map_many(requests)
        });
        let server = Server::start_with_solver(config(1, 8, 1), solver);
        let first = occupy_worker(&server);
        // Queue a job whose deadline expires while the worker is still
        // busy: deterministic, because the worker cannot dequeue it
        // until the gate below is released — after the sleep.
        let doomed = submit_job(
            &server,
            request(1),
            Some(Instant::now() + Duration::from_millis(30)),
        )
        .expect("admitted");
        std::thread::sleep(Duration::from_millis(60));
        release.send(()).unwrap();
        let JobOutcome::Shed { waited } = doomed.recv().unwrap() else {
            panic!("the expired job must be shed, not solved");
        };
        assert!(waited >= Duration::from_millis(30), "{waited:?}");
        assert!(done(first.recv().unwrap()).is_ok());
        // The solver saw exactly the occupying job — the shed job was
        // never dispatched.
        assert_eq!(dispatched.load(Ordering::Relaxed), 1);
        let metrics = server.metrics_json(None);
        let requests = metrics.get("requests").unwrap();
        assert_eq!(
            requests.get("rejected_deadline").and_then(Json::as_u64),
            Some(1)
        );
        // Shed jobs stay out of the latency histogram and the miss
        // counter: they did no work. (Nothing here went through the
        // response renderer, so the histogram is empty.)
        assert_eq!(
            requests.get("deadline_misses").and_then(Json::as_u64),
            Some(0)
        );
        let latency = metrics.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(0));
        // The rendered rejection is the structured protocol error.
        let line = server.render_map_outcome(
            Some(Json::num(7)),
            Instant::now(),
            None,
            JobOutcome::Shed { waited },
        );
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some("deadline_expired")
        );
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(7));
        server.finish().unwrap();
    }

    #[test]
    fn handle_line_answers_map_metrics_and_shutdown() {
        let server = Server::start(config(2, 8, 4));
        let result = server.handle_line(&map_line());
        let parsed = Json::parse(result.response()).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(
            parsed
                .get("cost")
                .and_then(|c| c.get("objective"))
                .and_then(Json::as_u64),
            Some(0),
            "cx q0,q1 sits on a QX4 edge"
        );

        let metrics = server.handle_line("{\"type\":\"metrics\",\"id\":1}");
        let parsed = Json::parse(metrics.response()).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("metrics"));
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(1));
        let requests = parsed.get("requests").unwrap();
        assert_eq!(requests.get("completed").and_then(Json::as_u64), Some(1));

        let bad = server.handle_line("{\"type\":\"map\"}");
        let parsed = Json::parse(bad.response()).unwrap();
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some("bad_request")
        );

        let down = server.handle_line("{\"type\":\"shutdown\"}");
        assert!(matches!(down, Handled::ReplyAndShutdown(_)));
        server.begin_shutdown();
        server.finish().unwrap();
        assert!(server.is_shutting_down());
    }

    #[test]
    fn tcp_round_trip_overload_and_shutdown() {
        // End-to-end over a real socket, with the gated solver making
        // overload deterministic: depth 1, worker 1, so of three
        // *concurrent* map requests at most two are admitted.
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(config(1, 1, 1), solver);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve_tcp(listener).unwrap())
        };

        let request_on = |line: String| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                writeln!(writer, "{line}").unwrap();
                let mut reader = BufReader::new(stream);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                Json::parse(&response).unwrap()
            })
        };

        // Three concurrent clients; the worker is gated, so at most one
        // job is in flight and one waiting — every other submission must
        // be rejected as overloaded. (How many are admitted — one or two
        // — depends on whether the gated worker dequeued the first job
        // before the later clients arrived; both splits are correct
        // load-shedding.) The seed makes the cache key unique to this
        // test: a pre-warmed solve cache would answer from the
        // skeleton-first probe and never exercise admission at all.
        let flood = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\",\"seed\":424242}}",
            Json::str(QASM)
        );
        let clients: Vec<_> = (0..3).map(|_| request_on(flood.clone())).collect();
        let deadline = Instant::now() + Duration::from_secs(10);
        let admitted = loop {
            let rejected = server.counters.rejected_overload.load(Ordering::Relaxed) as usize;
            let queued = {
                let q = server.queue.lock().unwrap();
                q.jobs.len() + q.in_flight
            };
            if rejected >= 1 && rejected + queued == 3 {
                break queued;
            }
            assert!(Instant::now() < deadline, "admission never saturated");
            std::thread::sleep(Duration::from_millis(2));
        };
        for _ in 0..admitted {
            release.send(()).unwrap();
        }
        let responses: Vec<Json> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let codes: Vec<&str> = responses
            .iter()
            .map(|r| r.get("type").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(
            codes.iter().filter(|&&t| t == "result").count(),
            admitted,
            "{codes:?}"
        );
        let overloaded = responses
            .iter()
            .find(|r| r.get("code").and_then(Json::as_str) == Some("overloaded"))
            .expect("one structured overload rejection");
        assert!(overloaded
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("queue is full"));

        // Shutdown over the wire: acknowledged, then the accept loop
        // exits and finish() drains.
        let down = request_on("{\"type\":\"shutdown\"}".to_string())
            .join()
            .unwrap();
        assert_eq!(down.get("type").and_then(Json::as_str), Some("ok"));
        acceptor.join().unwrap();
        server.finish().unwrap();
    }

    #[test]
    fn pipelined_connections_answer_out_of_order() {
        // One connection, two requests in flight: a gated map job
        // submitted first, then a metrics request. The metrics response
        // must come back *before* the map result — proof the connection
        // does not serialize on the slow job.
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(config(1, 8, 1), solver);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve_tcp(listener).unwrap())
        };
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let slow = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\",\"seed\":555777,\"id\":1}}",
            Json::str(QASM)
        );
        writeln!(writer, "{slow}").unwrap();
        writeln!(writer, "{{\"type\":\"metrics\",\"id\":2}}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let overtaker = Json::parse(&line).unwrap();
        assert_eq!(
            overtaker.get("type").and_then(Json::as_str),
            Some("metrics"),
            "the fast response overtakes the gated one: {line}"
        );
        assert_eq!(overtaker.get("id").and_then(Json::as_u64), Some(2));
        release.send(()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let result = Json::parse(&line).unwrap();
        assert_eq!(result.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(result.get("id").and_then(Json::as_u64), Some(1));

        writeln!(writer, "{{\"type\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let down = Json::parse(&line).unwrap();
        assert_eq!(down.get("type").and_then(Json::as_str), Some("ok"));
        acceptor.join().unwrap();
        server.finish().unwrap();
    }

    #[test]
    fn journal_wiring_persists_and_replays_across_boots() {
        let dir = std::env::temp_dir().join(format!(
            "qxmap-serve-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qxj");

        let journaled = ServerConfig {
            workers: 1,
            queue_depth: 8,
            batch_max: 1,
            journal: Some(path.clone()),
            ..ServerConfig::default()
        };
        let server = Server::start(journaled.clone());
        let warm = server.warm_start().unwrap();
        let replay = warm.journal.expect("journal configured");
        assert_eq!(replay.admitted, 0, "fresh journal has nothing to replay");
        // A unique seed forces a real solve — and so a journal append.
        let unique = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\",\"seed\":31337}}",
            Json::str(QASM)
        );
        let handled = server.handle_line(&unique);
        assert!(
            handled.response().contains("\"result\""),
            "solve succeeded: {}",
            handled.response()
        );
        server.finish().unwrap();
        let written = std::fs::metadata(&path).unwrap().len();
        assert!(
            written > 12,
            "the drained journal holds at least one record"
        );

        // A second boot replays the journal; every record is already
        // live in this process's shared cache, so none are admitted —
        // and none are rejected either (the file is intact).
        let second = Server::start(journaled);
        let warm = second.warm_start().unwrap();
        let replay = warm.journal.expect("journal configured");
        assert_eq!(replay.rejected, 0);
        assert_eq!(replay.admitted, 0, "all records already live in-process");
        assert!(!replay.torn);
        assert!(!replay.reset);
        second.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_files_round_trip_and_reject_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "qxmap-serve-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qxsnap");

        // Populate the process-wide cache with one solved entry.
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let engine = qxmap_map::Portfolio::new();
        let _ = engine.run_cached(&request).unwrap();
        let persisted = save_snapshot(&path).unwrap();
        assert!(persisted >= 1);
        let imported = load_snapshot(&path).unwrap();
        // Every persisted key is already live in this process's cache.
        assert_eq!(imported, 0);

        // Corruption is rejected with a description, not a crash.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.contains("rejected snapshot"), "{err}");

        // A missing file is a cold start.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(load_snapshot(&path), Ok(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prom_escape_covers_label_specials() {
        assert_eq!(prom_escape("plain"), "plain");
        assert_eq!(prom_escape("back\\slash"), "back\\\\slash");
        assert_eq!(prom_escape("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prom_escape("two\nlines"), "two\\nlines");

        let mut out = String::new();
        prom_sample(&mut out, "m", &[("l", "a\"b\\c\nd")], "1".to_string());
        assert_eq!(out, "m{l=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn empty_histogram_renders_all_zero_buckets() {
        let mut out = String::new();
        prom_histogram(
            &mut out,
            "t_seconds",
            "help text",
            &LatencyHistogram::default(),
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "# HELP t_seconds help text");
        assert_eq!(lines[1], "# TYPE t_seconds histogram");
        let buckets: Vec<&str> = lines
            .iter()
            .filter(|l| l.starts_with("t_seconds_bucket"))
            .copied()
            .collect();
        // Every finite bound plus +Inf, all zero.
        assert_eq!(buckets.len(), LATENCY_BUCKETS + 1);
        for bucket in &buckets {
            assert!(bucket.ends_with("} 0"), "{bucket}");
        }
        assert_eq!(
            buckets[buckets.len() - 1],
            "t_seconds_bucket{le=\"+Inf\"} 0"
        );
        assert_eq!(lines[lines.len() - 2], "t_seconds_sum 0");
        assert_eq!(lines[lines.len() - 1], "t_seconds_count 0");

        // One observation lands in every cumulative bucket at or above
        // its bound, and feeds the sum.
        let hist = LatencyHistogram::default();
        hist.record(1_500); // 1.5ms
        let mut out = String::new();
        prom_histogram(&mut out, "t_seconds", "help text", &hist);
        assert!(out.contains("t_seconds_bucket{le=\"+Inf\"} 1"), "{out}");
        assert!(out.contains("t_seconds_count 1"), "{out}");
        assert!(out.contains("t_seconds_sum 0.0015"), "{out}");
    }
}
