//! The server core: a bounded admission queue feeding a fixed worker
//! pool, with explicit overload rejection, graceful shutdown, metrics,
//! and solve-cache snapshot persistence.
//!
//! ## Request lifecycle
//!
//! A connection thread parses one line into a [`crate::proto::Request`]
//! and — for mapping jobs — *submits* it to the admission queue. The
//! queue is bounded: when `queue_depth` jobs are already waiting, the
//! submission is rejected immediately with a structured `overloaded`
//! error instead of blocking the client behind an unbounded backlog
//! (load-shedding at admission keeps tail latency bounded: a client that
//! gets rejected in microseconds can retry against a replica; a client
//! stuck in an unbounded queue can only wait).
//!
//! Admitted jobs are drained by a fixed pool of worker threads, each
//! pulling up to `batch_max` jobs at a time and solving them through one
//! [`qxmap_map::map_many`] call — so a burst of identical requests
//! landing together is deduplicated into one solve *before* the
//! process-wide solve cache even sees it, exactly like a library-side
//! batch. Jobs that opted into window decomposition (`"windowed"`)
//! run through [`qxmap_window::WindowedEngine`] instead — the engine
//! probes the same solve cache per window and parallelizes internally,
//! so batch deduplication adds nothing there.
//!
//! ## Shutdown and persistence
//!
//! A `shutdown` request (or stdin EOF in stdio mode) begins a graceful
//! wind-down: admission closes (`shutting_down` rejections), workers
//! drain every already-admitted job, and [`Server::finish`] snapshots
//! the solve cache to the configured path — so the next boot (or a
//! replica seeded from the same file) starts warm and answers repeated
//! requests in microseconds. Snapshots are written to a temporary file
//! and renamed into place, so a crash mid-write never corrupts the
//! previous good snapshot; corrupted or version-mismatched snapshots
//! are rejected at boot and the daemon starts cold.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qxmap_map::{Engine as _, MapReport, MapRequest, MapperError, SolveCache};
use qxmap_window::{WindowOptions, WindowedEngine};

use crate::json::Json;
use crate::proto::{self, Rejection, Request};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads solving admitted jobs. Defaults to the machine's
    /// available parallelism.
    pub workers: usize,
    /// Most jobs allowed to *wait* for a worker; submissions beyond this
    /// are rejected as `overloaded`. Defaults to 64.
    pub queue_depth: usize,
    /// Most jobs one worker drains into a single [`qxmap_map::map_many`]
    /// batch. Defaults to 8.
    pub batch_max: usize,
    /// Snapshot file for warm starts: imported by
    /// [`Server::warm_start`], written by [`Server::finish`].
    pub snapshot: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_depth: 64,
            batch_max: 8,
            snapshot: None,
        }
    }
}

/// How one request line was handled, and what the connection should do
/// after delivering the response.
#[derive(Debug)]
pub enum Handled {
    /// Write the response line; keep serving the connection.
    Reply(String),
    /// Write the response line, flush it, then call
    /// [`Server::begin_shutdown`] — the acknowledgement must reach the
    /// client before the daemon starts winding down.
    ReplyAndShutdown(String),
}

impl Handled {
    /// The response line, whichever variant.
    pub fn response(&self) -> &str {
        match self {
            Handled::Reply(r) | Handled::ReplyAndShutdown(r) => r,
        }
    }
}

/// One admitted mapping job: the request plus the channel its result
/// travels back on.
struct QueuedJob {
    request: MapRequest,
    /// When set, the job answers through the window-decomposed engine
    /// with these options instead of the batch solver.
    windowed: Option<WindowOptions>,
    respond: mpsc::Sender<Result<MapReport, MapperError>>,
}

struct QueueState {
    jobs: VecDeque<QueuedJob>,
    in_flight: usize,
    shutdown: bool,
}

/// Cumulative request counters (see the `metrics` response).
#[derive(Default)]
struct Counters {
    received: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    rejected_overload: AtomicU64,
    served_from_cache: AtomicU64,
    /// Mapping jobs that carried a `deadline_ms` and whose end-to-end
    /// latency (admission wait + solve) exceeded it — the serving tier's
    /// broken-promise counter. The engines wind down *near* a deadline,
    /// so a loaded queue, not the solver, is the usual culprit.
    deadline_misses: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
}

/// Number of power-of-two latency buckets: bucket `i` counts requests
/// whose end-to-end latency was below `2^i` microseconds (and at or
/// above the previous bound), spanning 1 µs .. ~2¹⁴ s before the
/// overflow bucket — bounded, allocation-free, and wide enough that no
/// real request lands in overflow.
const LATENCY_BUCKETS: usize = 32;

/// A bounded, lock-free latency histogram: fixed power-of-two buckets
/// over microseconds, recorded with relaxed atomic increments. The
/// `metrics` response renders it as `[upper_bound_us, count]` pairs plus
/// derived p50/p95/p99 (each reported as its bucket's upper bound — a
/// ≤2× overestimate, which is the right rounding direction for a
/// latency promise).
#[derive(Default)]
struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    fn bucket_of(micros: u64) -> usize {
        // Bucket i covers [2^(i-1), 2^i) µs (bucket 0 covers {0}); the
        // last bucket absorbs overflow.
        ((64 - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    fn record(&self, micros: u64) {
        self.buckets[LatencyHistogram::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let mut counts = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        counts
    }

    /// The upper bound (µs) of the bucket containing the `p`-quantile
    /// sample, from an immutable snapshot so one `metrics` response is
    /// internally consistent.
    fn percentile(counts: &[u64; LATENCY_BUCKETS], p: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return LatencyHistogram::upper_bound_us(i);
            }
        }
        LatencyHistogram::upper_bound_us(LATENCY_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i`, in microseconds.
    fn upper_bound_us(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// `{"count", "p50_us", "p95_us", "p99_us", "buckets": [[upper, n], ...]}`
    /// with zero buckets elided (the shape stays bounded either way).
    fn to_json(&self) -> Json {
        let counts = self.snapshot();
        let buckets: Vec<Json> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                Json::Arr(vec![
                    Json::num(LatencyHistogram::upper_bound_us(i)),
                    Json::num(n),
                ])
            })
            .collect();
        Json::obj([
            ("count", Json::num(counts.iter().sum::<u64>())),
            ("p50_us", Json::num(Self::percentile(&counts, 0.50))),
            ("p95_us", Json::num(Self::percentile(&counts, 0.95))),
            ("p99_us", Json::num(Self::percentile(&counts, 0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// The batch solver workers run admitted jobs through — injectable so
/// tests can pin down timing-sensitive behavior (overload, shutdown
/// draining) with a deterministic solver. Production uses
/// [`qxmap_map::map_many`].
type BatchSolver = Box<dyn Fn(&[MapRequest]) -> Vec<Result<MapReport, MapperError>> + Send + Sync>;

/// The mapping daemon: admission queue, worker pool, metrics, snapshot
/// persistence. Construct with [`Server::start`], feed it request lines
/// with [`Server::handle_line`] (or let [`Server::serve_tcp`] /
/// [`Server::serve_stdio`] do it), and call [`Server::finish`] to drain
/// and persist on the way out.
pub struct Server {
    config: ServerConfig,
    solver: BatchSolver,
    queue: Mutex<QueueState>,
    available: Condvar,
    counters: Counters,
    latency: LatencyHistogram,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Connection threads currently between reading a request line and
    /// flushing its response — what [`Server::finish`] waits out so an
    /// answered job's response is not lost to process exit.
    busy_lines: AtomicU64,
}

impl Server {
    /// Boots the worker pool with the production solver
    /// ([`qxmap_map::map_many`], answering through the process-wide
    /// [`SolveCache`]).
    pub fn start(config: ServerConfig) -> Arc<Server> {
        Server::start_with_solver(config, Box::new(qxmap_map::map_many))
    }

    /// [`Server::start`] with an injected batch solver (tests).
    pub fn start_with_solver(config: ServerConfig, solver: BatchSolver) -> Arc<Server> {
        let server = Arc::new(Server {
            workers: Mutex::new(Vec::new()),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            counters: Counters::default(),
            latency: LatencyHistogram::default(),
            busy_lines: AtomicU64::new(0),
            solver,
            config,
        });
        let mut workers = server.workers.lock().expect("no panics under the lock");
        for _ in 0..server.config.workers.max(1) {
            let server = Arc::clone(&server);
            workers.push(std::thread::spawn(move || server.worker_loop()));
        }
        drop(workers);
        server
    }

    /// One worker: drain up to `batch_max` jobs, solve them as one
    /// batch, deliver each result, repeat. Exits once shutdown has begun
    /// *and* the queue is empty — every admitted job is answered.
    fn worker_loop(&self) {
        loop {
            let batch: Vec<QueuedJob> = {
                let mut q = self.queue.lock().expect("no panics under the lock");
                loop {
                    if !q.jobs.is_empty() {
                        break;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.available.wait(q).expect("no panics under the lock");
                }
                let n = q.jobs.len().min(self.config.batch_max.max(1));
                let batch: Vec<QueuedJob> = q.jobs.drain(..n).collect();
                q.in_flight += batch.len();
                batch
            };
            // Windowed jobs run through the windowed engine one by one —
            // it does its own window-level cache probing and parallel
            // solving, so batch deduplication adds nothing there. Plain
            // jobs still go through the batch solver together.
            let mut results: Vec<Option<Result<MapReport, MapperError>>> =
                batch.iter().map(|_| None).collect();
            let mut plain: Vec<MapRequest> = Vec::new();
            let mut plain_at: Vec<usize> = Vec::new();
            for (i, job) in batch.iter().enumerate() {
                match job.windowed {
                    Some(options) => {
                        results[i] = Some(WindowedEngine::with_options(options).run(&job.request));
                    }
                    None => {
                        plain_at.push(i);
                        plain.push(job.request.clone());
                    }
                }
            }
            if !plain.is_empty() {
                let solved = (self.solver)(&plain);
                debug_assert_eq!(solved.len(), plain_at.len());
                for (i, result) in plain_at.into_iter().zip(solved) {
                    results[i] = Some(result);
                }
            }
            let n = batch.len();
            for (job, result) in batch.into_iter().zip(results) {
                // A disconnected receiver just means the client went
                // away; the work still warmed the cache.
                let _ = job
                    .respond
                    .send(result.expect("every admitted job was solved"));
            }
            self.queue
                .lock()
                .expect("no panics under the lock")
                .in_flight -= n;
        }
    }

    /// Admits a job or rejects it without blocking. The rejection is the
    /// protocol's `overloaded` / `shutting_down` error.
    fn submit(
        &self,
        request: MapRequest,
        windowed: Option<WindowOptions>,
        id: Option<Json>,
    ) -> Result<mpsc::Receiver<Result<MapReport, MapperError>>, Rejection> {
        let mut q = self.queue.lock().expect("no panics under the lock");
        if q.shutdown {
            return Err(Rejection {
                code: "shutting_down",
                message: "the server is shutting down and admits no new work".to_string(),
                id,
                line: None,
            });
        }
        if q.jobs.len() >= self.config.queue_depth {
            self.counters
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            return Err(Rejection {
                code: "overloaded",
                message: format!(
                    "admission queue is full ({} jobs waiting); retry later or against a replica",
                    q.jobs.len()
                ),
                id,
                line: None,
            });
        }
        let (respond, receive) = mpsc::channel();
        q.jobs.push_back(QueuedJob {
            request,
            windowed,
            respond,
        });
        drop(q);
        self.available.notify_one();
        Ok(receive)
    }

    /// Handles one request line end to end (parse, admit, wait, render),
    /// returning the response line to write back. Mapping jobs block the
    /// calling connection thread until their result is ready — the
    /// protocol is strictly request/response per connection; concurrency
    /// comes from concurrent connections.
    pub fn handle_line(&self, line: &str) -> Handled {
        let request = match proto::parse_request(line) {
            Ok(request) => request,
            Err(rejection) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                return Handled::Reply(proto::rejection_response(&rejection).to_string());
            }
        };
        match request {
            Request::Metrics { id } => Handled::Reply(self.metrics_json(id).to_string()),
            Request::Shutdown { id } => {
                let ack = Json::Obj(
                    [
                        ("type".to_string(), Json::str("ok")),
                        ("message".to_string(), Json::str("shutting down")),
                    ]
                    .into_iter()
                    .chain(id.map(|id| ("id".to_string(), id)))
                    .collect(),
                );
                Handled::ReplyAndShutdown(ack.to_string())
            }
            Request::Map(job) => {
                self.counters.received.fetch_add(1, Ordering::Relaxed);
                let deadline = job.deadline();
                let start = Instant::now();
                // Skeleton-first warm path: the parser already computed
                // the payload's canonical skeleton, so probe the solve
                // cache before materializing a circuit or touching the
                // admission queue. A miss falls through to exactly the
                // path a probe-less request would take (and the solve's
                // own cache lookup re-checks the same key).
                if let Some(report) = job.cache_probe().and_then(|p| qxmap_map::probe_one(&p)) {
                    self.observe_latency(start, deadline);
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .served_from_cache
                        .fetch_add(1, Ordering::Relaxed);
                    return Handled::Reply(proto::result_response(job.id, &report).to_string());
                }
                let request = match job.materialize() {
                    Ok(request) => request,
                    Err(rejection) => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        return Handled::Reply(proto::rejection_response(&rejection).to_string());
                    }
                };
                let receive = match self.submit(request, job.windowed, job.id.clone()) {
                    Ok(receive) => receive,
                    Err(rejection) => {
                        return Handled::Reply(proto::rejection_response(&rejection).to_string())
                    }
                };
                let result = receive
                    .recv()
                    .expect("workers answer every admitted job before exiting");
                self.observe_latency(start, deadline);
                Handled::Reply(match result {
                    Ok(report) => {
                        self.counters.completed.fetch_add(1, Ordering::Relaxed);
                        if report.served_from_cache {
                            self.counters
                                .served_from_cache
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        proto::result_response(job.id, &report).to_string()
                    }
                    Err(error) => {
                        self.counters.errors.fetch_add(1, Ordering::Relaxed);
                        proto::error_response(job.id, &error).to_string()
                    }
                })
            }
        }
    }

    /// Records one finished map request's end-to-end latency. The
    /// deadline miss is judged on what the client asked for: the
    /// wall clock against the request's own deadline, queueing included.
    fn observe_latency(&self, start: Instant, deadline: Option<Duration>) {
        let elapsed = start.elapsed();
        let latency = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.counters
            .total_latency_us
            .fetch_add(latency, Ordering::Relaxed);
        self.counters
            .max_latency_us
            .fetch_max(latency, Ordering::Relaxed);
        self.latency.record(latency);
        if deadline.is_some_and(|d| elapsed > d) {
            self.counters
                .deadline_misses
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The `metrics` response: solve-cache statistics, queue state, and
    /// request/latency counters.
    pub fn metrics_json(&self, id: Option<Json>) -> Json {
        let cache = SolveCache::shared().stats();
        let (depth, in_flight) = {
            let q = self.queue.lock().expect("no panics under the lock");
            (q.jobs.len(), q.in_flight)
        };
        let c = &self.counters;
        let get = |a: &AtomicU64| Json::num(a.load(Ordering::Relaxed));
        let mut pairs = vec![("type".to_string(), Json::str("metrics"))];
        if let Some(id) = id {
            pairs.push(("id".to_string(), id));
        }
        pairs.extend([
            (
                "cache".to_string(),
                Json::obj([
                    ("hits", Json::num(cache.hits)),
                    ("misses", Json::num(cache.misses)),
                    ("evictions", Json::num(cache.evictions)),
                    ("entries", Json::num(cache.entries as u64)),
                    ("approx_bytes", Json::num(cache.approx_bytes as u64)),
                    (
                        "capacity",
                        Json::num(SolveCache::shared().capacity() as u64),
                    ),
                ]),
            ),
            (
                "queue".to_string(),
                Json::obj([
                    ("depth", Json::num(depth as u64)),
                    ("capacity", Json::num(self.config.queue_depth as u64)),
                    ("in_flight", Json::num(in_flight as u64)),
                    ("workers", Json::num(self.config.workers.max(1) as u64)),
                ]),
            ),
            (
                "requests".to_string(),
                Json::obj([
                    ("received", get(&c.received)),
                    ("completed", get(&c.completed)),
                    ("errors", get(&c.errors)),
                    ("rejected_overload", get(&c.rejected_overload)),
                    ("served_from_cache", get(&c.served_from_cache)),
                    ("deadline_misses", get(&c.deadline_misses)),
                    ("total_latency_us", get(&c.total_latency_us)),
                    ("max_latency_us", get(&c.max_latency_us)),
                ]),
            ),
            ("latency".to_string(), self.latency.to_json()),
        ]);
        Json::Obj(pairs)
    }

    /// Closes admission and wakes the workers; already-admitted jobs
    /// still complete. Idempotent.
    pub fn begin_shutdown(&self) {
        self.queue
            .lock()
            .expect("no panics under the lock")
            .shutdown = true;
        self.available.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.queue
            .lock()
            .expect("no panics under the lock")
            .shutdown
    }

    /// Drains the pool (joining every worker — every admitted job is
    /// answered first) and snapshots the solve cache to the configured
    /// path. Returns the number of entries persisted, `None` when no
    /// snapshot path is configured.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-write I/O errors; the drain itself cannot
    /// fail.
    pub fn finish(&self) -> io::Result<Option<usize>> {
        self.begin_shutdown();
        let workers = std::mem::take(&mut *self.workers.lock().expect("no panics under the lock"));
        for worker in workers {
            worker.join().expect("workers do not panic");
        }
        // Workers answered every admitted job; give the (detached)
        // connection threads a moment to flush those answers to their
        // sockets before the process exits. Bounded: a client that has
        // stopped reading must not be able to hold shutdown hostage
        // through a blocked TCP write.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.busy_lines.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        match &self.config.snapshot {
            None => Ok(None),
            Some(path) => save_snapshot(path).map(Some),
        }
    }

    /// Imports the configured snapshot into the process-wide
    /// [`SolveCache`], returning how many entries were admitted. A
    /// missing file is a cold start (`Ok(0)`); a rejected snapshot
    /// (corrupted, truncated, version-mismatched) is reported as the
    /// error string and the cache is left untouched — the daemon should
    /// log it and start cold rather than refuse to boot.
    ///
    /// # Errors
    ///
    /// Returns a description of why the snapshot was rejected.
    pub fn warm_start(&self) -> Result<usize, String> {
        let Some(path) = &self.config.snapshot else {
            return Ok(0);
        };
        load_snapshot(path)
    }

    /// Accept loop: serves connections until shutdown begins, then
    /// returns (call [`Server::finish`] after). Each connection gets a
    /// thread handling one request line at a time, in order.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors; per-connection I/O errors only
    /// end their connection.
    pub fn serve_tcp(self: &Arc<Server>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            // Checked every iteration, not only when accept() idles: a
            // stream of reconnecting clients (each now due a
            // shutting_down rejection) must not keep the accept loop —
            // and with it the shutdown snapshot — alive forever.
            if self.is_shutting_down() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    // The protocol is one small line each way; Nagle's
                    // algorithm would park every response behind a
                    // delayed ACK (~40 ms) — two orders of magnitude
                    // over a warm cache hit.
                    stream.set_nodelay(true)?;
                    let server = Arc::clone(self);
                    // Connection threads are detached deliberately: one
                    // may sit in a blocking read for as long as its
                    // client stays idle, and shutdown must not wait for
                    // that. Admitted work is still drained by `finish`.
                    std::thread::spawn(move || server.serve_connection(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn serve_connection(&self, stream: TcpStream) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { return };
            if line.trim().is_empty() {
                continue;
            }
            self.busy_lines.fetch_add(1, Ordering::AcqRel);
            let handled = self.handle_line(&line);
            let delivered =
                writeln!(writer, "{}", handled.response()).is_ok() && writer.flush().is_ok();
            self.busy_lines.fetch_sub(1, Ordering::AcqRel);
            if matches!(handled, Handled::ReplyAndShutdown(_)) {
                // The ack is written *before* wind-down begins so it can
                // reach the client — but an undeliverable ack (client
                // already hung up) must not cancel an accepted shutdown.
                self.begin_shutdown();
                return;
            }
            if !delivered {
                return;
            }
        }
    }

    /// Stdio loop: one request line per stdin line, one response line on
    /// stdout; returns on EOF or a `shutdown` request (call
    /// [`Server::finish`] after).
    ///
    /// # Errors
    ///
    /// Propagates stdin/stdout I/O errors.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        for line in stdin.lock().lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let handled = self.handle_line(&line);
            {
                let mut out = stdout.lock();
                writeln!(out, "{}", handled.response())?;
                out.flush()?;
            }
            if matches!(handled, Handled::ReplyAndShutdown(_)) {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Writes the process-wide cache's snapshot to `path` atomically (temp
/// file + rename), returning the entry count persisted.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_snapshot(path: &Path) -> io::Result<usize> {
    let bytes = SolveCache::shared().export_snapshot();
    // Report what the file actually holds — the cache can move between
    // any two lock acquisitions, so the count comes from the exported
    // header, not a separate stats() read.
    let entries = qxmap_map::snapshot_entry_count(&bytes).unwrap_or(0);
    // The temp name is per-process: replicas legitimately share one
    // snapshot path, and concurrent shutdowns must each publish a
    // complete file (last rename wins) rather than racing on one temp.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(entries)
}

/// Imports the snapshot at `path` into the process-wide cache. A
/// missing file is a cold start (`Ok(0)`).
///
/// # Errors
///
/// Returns a description of the I/O failure or snapshot defect; the
/// cache is untouched on error.
pub fn load_snapshot(path: &Path) -> Result<usize, String> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    SolveCache::shared()
        .import_snapshot(&bytes)
        .map_err(|e| format!("rejected snapshot {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    const QASM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[1];\n";

    fn map_line() -> String {
        format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\"}}",
            Json::str(QASM)
        )
    }

    /// A solver that blocks until released — pins down overload and
    /// drain behavior without timing races.
    fn gated_solver() -> (BatchSolver, mpsc::Sender<()>) {
        let (release, gate) = mpsc::channel::<()>();
        let gate = Mutex::new(gate);
        let solver: BatchSolver = Box::new(move |requests| {
            gate.lock()
                .expect("no panics under the lock")
                .recv()
                .expect("the test releases the gate once per batch");
            qxmap_map::map_many(requests)
        });
        (solver, release)
    }

    #[test]
    fn latency_histogram_buckets_and_percentiles() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        let h = LatencyHistogram::default();
        for us in [10, 10, 10, 10, 10, 10, 10, 10, 10, 2000] {
            h.record(us);
        }
        let counts = h.snapshot();
        assert_eq!(counts.iter().sum::<u64>(), 10);
        // 10 µs lands in [8, 16); the quantile reports the bucket's
        // upper bound.
        assert_eq!(LatencyHistogram::percentile(&counts, 0.50), 15);
        assert_eq!(LatencyHistogram::percentile(&counts, 0.99), 2047);
        let json = h.to_json();
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(10));
        assert_eq!(json.get("p50_us").and_then(Json::as_u64), Some(15));
        assert_eq!(json.get("p99_us").and_then(Json::as_u64), Some(2047));
        let buckets = json.get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 2, "zero buckets are elided");
        // An empty histogram renders zeros, not NaNs.
        let empty = LatencyHistogram::default().to_json();
        assert_eq!(empty.get("p95_us").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn deadline_misses_and_latency_feed_metrics() {
        // A solver slower than the request's deadline: the response is
        // still delivered (the engines degrade, they don't fabricate
        // errors), but the miss is counted and the latency lands in the
        // histogram.
        let solver: BatchSolver = Box::new(|requests| {
            std::thread::sleep(Duration::from_millis(30));
            qxmap_map::map_many(requests)
        });
        let server = Server::start_with_solver(
            ServerConfig {
                workers: 1,
                queue_depth: 8,
                batch_max: 1,
                snapshot: None,
            },
            solver,
        );
        let missed = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\",\"deadline_ms\":1}}",
            Json::str(QASM)
        );
        server.handle_line(&missed);
        let metrics = server.metrics_json(None);
        let requests = metrics.get("requests").unwrap();
        assert_eq!(
            requests.get("deadline_misses").and_then(Json::as_u64),
            Some(1)
        );
        let latency = metrics.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(1));
        assert!(
            latency.get("p50_us").and_then(Json::as_u64).unwrap() >= 30_000,
            "{latency}"
        );
        // A deadline-free request records latency but cannot miss.
        server.handle_line(&map_line());
        let metrics = server.metrics_json(None);
        let requests = metrics.get("requests").unwrap();
        assert_eq!(
            requests.get("deadline_misses").and_then(Json::as_u64),
            Some(1)
        );
        let latency = metrics.get("latency").unwrap();
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(2));
        server.finish().unwrap();
    }

    #[test]
    fn overload_is_rejected_with_a_structured_error() {
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                batch_max: 1,
                snapshot: None,
            },
            solver,
        );
        // First job: admitted, drained by the (gated) worker. Wait until
        // it actually leaves the queue so the depth accounting below is
        // deterministic.
        let first = server
            .submit(
                MapRequest::new(paper_example(), devices::ibm_qx4()),
                None,
                None,
            )
            .expect("admitted");
        while server.queue.lock().unwrap().in_flight == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Second job: waits in the queue (depth 1/1). Third: overloaded.
        let _second = server
            .submit(
                MapRequest::new(paper_example(), devices::ibm_qx4()).with_seed(1),
                None,
                None,
            )
            .expect("queued");
        let rejected = server
            .submit(
                MapRequest::new(paper_example(), devices::ibm_qx4()).with_seed(2),
                None,
                None,
            )
            .unwrap_err();
        assert_eq!(rejected.code, "overloaded");
        assert!(rejected.message.contains("queue is full"));
        let metrics = server.metrics_json(None);
        let requests = metrics.get("requests").unwrap();
        assert_eq!(
            requests.get("rejected_overload").and_then(Json::as_u64),
            Some(1)
        );
        // Release both batches; graceful shutdown drains everything.
        release.send(()).unwrap();
        release.send(()).unwrap();
        assert!(first.recv().unwrap().is_ok());
        server.finish().unwrap();
    }

    #[test]
    fn shutdown_drains_admitted_jobs_and_rejects_new_ones() {
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(
            ServerConfig {
                workers: 1,
                queue_depth: 8,
                batch_max: 8,
                snapshot: None,
            },
            solver,
        );
        let admitted = server
            .submit(
                MapRequest::new(paper_example(), devices::ibm_qx4()),
                None,
                None,
            )
            .expect("admitted");
        server.begin_shutdown();
        let rejected = server
            .submit(
                MapRequest::new(paper_example(), devices::ibm_qx4()),
                None,
                None,
            )
            .unwrap_err();
        assert_eq!(rejected.code, "shutting_down");
        release.send(()).unwrap();
        let report = admitted.recv().unwrap().expect("drained, not dropped");
        report
            .verify(&paper_example(), &devices::ibm_qx4())
            .unwrap();
        server.finish().unwrap();
    }

    #[test]
    fn handle_line_answers_map_metrics_and_shutdown() {
        let server = Server::start(ServerConfig {
            workers: 2,
            queue_depth: 8,
            batch_max: 4,
            snapshot: None,
        });
        let result = server.handle_line(&map_line());
        let parsed = Json::parse(result.response()).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("result"));
        assert_eq!(
            parsed
                .get("cost")
                .and_then(|c| c.get("objective"))
                .and_then(Json::as_u64),
            Some(0),
            "cx q0,q1 sits on a QX4 edge"
        );

        let metrics = server.handle_line("{\"type\":\"metrics\",\"id\":1}");
        let parsed = Json::parse(metrics.response()).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("metrics"));
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(1));
        let requests = parsed.get("requests").unwrap();
        assert_eq!(requests.get("completed").and_then(Json::as_u64), Some(1));

        let bad = server.handle_line("{\"type\":\"map\"}");
        let parsed = Json::parse(bad.response()).unwrap();
        assert_eq!(
            parsed.get("code").and_then(Json::as_str),
            Some("bad_request")
        );

        let down = server.handle_line("{\"type\":\"shutdown\"}");
        assert!(matches!(down, Handled::ReplyAndShutdown(_)));
        server.begin_shutdown();
        server.finish().unwrap();
        assert!(server.is_shutting_down());
    }

    #[test]
    fn tcp_round_trip_overload_and_shutdown() {
        // End-to-end over a real socket, with the gated solver making
        // overload deterministic: depth 1, worker 1, so of three
        // *concurrent* map requests at most two are admitted.
        let (solver, release) = gated_solver();
        let server = Server::start_with_solver(
            ServerConfig {
                workers: 1,
                queue_depth: 1,
                batch_max: 1,
                snapshot: None,
            },
            solver,
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve_tcp(listener).unwrap())
        };

        let request_on = |line: String| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                writeln!(writer, "{line}").unwrap();
                let mut reader = BufReader::new(stream);
                let mut response = String::new();
                reader.read_line(&mut response).unwrap();
                Json::parse(&response).unwrap()
            })
        };

        // Three concurrent clients; the worker is gated, so at most one
        // job is in flight and one waiting — every other submission must
        // be rejected as overloaded. (How many are admitted — one or two
        // — depends on whether the gated worker dequeued the first job
        // before the later clients arrived; both splits are correct
        // load-shedding.) The seed makes the cache key unique to this
        // test: a pre-warmed solve cache would answer from the
        // skeleton-first probe and never exercise admission at all.
        let flood = format!(
            "{{\"type\":\"map\",\"qasm\":{},\"device\":\"qx4\",\"seed\":424242}}",
            Json::str(QASM)
        );
        let clients: Vec<_> = (0..3).map(|_| request_on(flood.clone())).collect();
        let deadline = Instant::now() + Duration::from_secs(10);
        let admitted = loop {
            let rejected = server.counters.rejected_overload.load(Ordering::Relaxed) as usize;
            let queued = {
                let q = server.queue.lock().unwrap();
                q.jobs.len() + q.in_flight
            };
            if rejected >= 1 && rejected + queued == 3 {
                break queued;
            }
            assert!(Instant::now() < deadline, "admission never saturated");
            std::thread::sleep(Duration::from_millis(2));
        };
        for _ in 0..admitted {
            release.send(()).unwrap();
        }
        let responses: Vec<Json> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let codes: Vec<&str> = responses
            .iter()
            .map(|r| r.get("type").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(
            codes.iter().filter(|&&t| t == "result").count(),
            admitted,
            "{codes:?}"
        );
        let overloaded = responses
            .iter()
            .find(|r| r.get("code").and_then(Json::as_str) == Some("overloaded"))
            .expect("one structured overload rejection");
        assert!(overloaded
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("queue is full"));

        // Shutdown over the wire: acknowledged, then the accept loop
        // exits and finish() drains.
        let down = request_on("{\"type\":\"shutdown\"}".to_string())
            .join()
            .unwrap();
        assert_eq!(down.get("type").and_then(Json::as_str), Some("ok"));
        acceptor.join().unwrap();
        server.finish().unwrap();
    }

    #[test]
    fn snapshot_files_round_trip_and_reject_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "qxmap-serve-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qxsnap");

        // Populate the process-wide cache with one solved entry.
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let engine = qxmap_map::Portfolio::new();
        let _ = engine.run_cached(&request).unwrap();
        let persisted = save_snapshot(&path).unwrap();
        assert!(persisted >= 1);
        let imported = load_snapshot(&path).unwrap();
        // Every persisted key is already live in this process's cache.
        assert_eq!(imported, 0);

        // Corruption is rejected with a description, not a crash.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.contains("rejected snapshot"), "{err}");

        // A missing file is a cold start.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(load_snapshot(&path), Ok(0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
