//! Property-based validation of the CDCL solver against the brute-force
//! reference on random CNF formulas and objectives.

use proptest::prelude::*;
use qxmap_sat::{brute, minimize, Lit, MinimizeOptions, SolveResult, Solver};

/// A random clause over `num_vars` variables, as DIMACS-style integers.
fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        (1..=num_vars as i64).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
        1..=4,
    )
}

fn formula_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(clause_strategy(num_vars), 0..40)
}

fn to_lits(clause: &[i64]) -> Vec<Lit> {
    clause.iter().map(|&v| Lit::from_dimacs(v)).collect()
}

fn build_solver(num_vars: usize, clauses: &[Vec<i64>]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(to_lits(c));
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SAT/UNSAT verdicts agree with exhaustive enumeration.
    #[test]
    fn verdict_matches_brute_force(clauses in formula_strategy(10)) {
        let lit_clauses: Vec<Vec<Lit>> = clauses.iter().map(|c| to_lits(c)).collect();
        let expected = brute::is_satisfiable(10, &lit_clauses);
        let mut s = build_solver(10, &clauses);
        let got = s.solve();
        match (expected, &got) {
            (true, SolveResult::Sat(model)) => {
                // The model must actually satisfy every clause.
                for c in &lit_clauses {
                    prop_assert!(c.iter().any(|&l| model.value(l)),
                                 "model violates clause {c:?}");
                }
            }
            (false, SolveResult::Unsat) => {}
            _ => prop_assert!(false, "verdict mismatch: expected sat={expected}, got {got:?}"),
        }
    }

    /// Solving twice (incremental reuse) gives the same verdict.
    #[test]
    fn idempotent_resolve(clauses in formula_strategy(8)) {
        let mut s = build_solver(8, &clauses);
        let first = s.solve().is_sat();
        let second = s.solve().is_sat();
        prop_assert_eq!(first, second);
    }

    /// Assumptions behave like temporary unit clauses.
    #[test]
    fn assumptions_equal_units(clauses in formula_strategy(8), pol in prop::collection::vec(any::<bool>(), 8)) {
        let assumptions: Vec<Lit> = pol
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let l = Lit::from_dimacs(i as i64 + 1);
                if p { l } else { !l }
            })
            .collect();
        let mut s1 = build_solver(8, &clauses);
        let with_assumptions = s1.solve_with_assumptions(&assumptions).is_sat();
        let mut s2 = build_solver(8, &clauses);
        for &a in &assumptions {
            s2.add_clause([a]);
        }
        let with_units = s2.solve().is_sat();
        prop_assert_eq!(with_assumptions, with_units);
    }

    /// The minimizer returns the true minimum cost.
    #[test]
    fn minimize_matches_brute_force(
        clauses in formula_strategy(8),
        weights in prop::collection::vec(0u64..8, 8),
    ) {
        let lit_clauses: Vec<Vec<Lit>> = clauses.iter().map(|c| to_lits(c)).collect();
        let objective: Vec<(u64, Lit)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, Lit::from_dimacs(i as i64 + 1)))
            .collect();
        let expected = brute::minimum_cost(8, &lit_clauses, &objective);
        let mut s = build_solver(8, &clauses);
        let got = minimize(&mut s, &objective, MinimizeOptions::default());
        match (expected, got) {
            (None, Err(qxmap_sat::MinimizeError::Unsatisfiable)) => {}
            (Some(e), Ok(m)) => {
                prop_assert_eq!(e, m.cost);
                prop_assert!(m.proved_optimal);
            }
            (e, g) => prop_assert!(false, "expected {e:?}, got {g:?}"),
        }
    }
}
