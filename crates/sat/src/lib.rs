//! # qxmap-sat
//!
//! A self-contained reasoning engine: a conflict-driven clause-learning
//! (CDCL) SAT solver with cardinality / pseudo-Boolean encodings and a
//! weighted objective minimizer.
//!
//! The paper solves its symbolic mapping formulation with Z3, used purely
//! as a "satisfiability with an objective function" oracle (Definition 3).
//! This crate provides the same oracle from scratch:
//!
//! * [`Solver`] — CDCL with two-watched-literal propagation, VSIDS
//!   branching, first-UIP learning with clause minimization, phase saving,
//!   Luby restarts, activity-based learnt-clause deletion and incremental
//!   solving under assumptions. Searches are cooperatively boundable:
//!   besides the per-call conflict budget, a solver can carry a wall-clock
//!   deadline, a shared interrupt flag, and a conflict pool shared with
//!   other solvers (one atomic drawn from per conflict) — the primitives
//!   behind `qxmap`'s parallel per-subset solves and racing portfolio.
//! * [`encode`] — at-most-one / exactly-one / cardinality encodings.
//! * [`totalizer`] — a *generalized totalizer* for weighted sums, whose
//!   output literals can be assumed to bound the objective incrementally.
//! * [`optimize`] — model-improving minimization of `F = Σ wᵢ·ℓᵢ`
//!   (Definition 3's extended interpretation).
//! * [`dimacs`] — DIMACS CNF import/export.
//! * [`brute`] — an exhaustive reference solver used by the test suite.
//!
//! ## Example
//!
//! ```
//! use qxmap_sat::{Lit, SolveResult, Solver};
//!
//! // Example 4 of the paper: Φ = (x1+x2+¬x3)(¬x1+x3)(¬x2+x3).
//! let mut s = Solver::new();
//! let x1 = s.new_lit();
//! let x2 = s.new_lit();
//! let x3 = s.new_lit();
//! s.add_clause([x1, x2, !x3]);
//! s.add_clause([!x1, x3]);
//! s.add_clause([!x2, x3]);
//! let SolveResult::Sat(model) = s.solve() else { panic!("satisfiable") };
//! // any model satisfies all three clauses
//! assert!(model.value(x1) & model.value(x3) | !model.value(x1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod dimacs;
pub mod encode;
mod lit;
pub mod optimize;
mod solver;
pub mod totalizer;

pub use lit::{Lit, Var};
pub use optimize::{minimize, MinimizeError, MinimizeOptions, MinimizeStrategy, Minimum};
pub use solver::{Model, SolveResult, Solver, SolverStats, StopCause};
