//! Generalized totalizer encoding for weighted sums.
//!
//! Encodes the objective `F = Σ wᵢ·ℓᵢ` (Eq. 5 of the paper) into CNF as a
//! balanced merge tree. Each tree node carries the set of *attainable*
//! partial sums, one fresh output literal per sum with the semantics
//! "the partial sum is **at least** this value". Sums above a `cap` are
//! clamped to the cap, keeping the encoding small when only bounds below
//! the cap will ever be queried.
//!
//! The root's output literals let a caller bound the objective
//! *incrementally*: `F ≤ B` is the single assumption `¬(first output
//! literal with weight > B)`, thanks to the ordering clauses
//! `o_{w₊} → o_{w₋}` added at every node.

use crate::lit::Lit;
use crate::solver::Solver;

/// The root outputs of an encoded weighted sum.
#[derive(Debug, Clone)]
pub struct Totalizer {
    /// `(w, o_w)` sorted ascending by `w`; `o_w` means "sum ≥ w".
    outputs: Vec<(u64, Lit)>,
    cap: u64,
}

impl Totalizer {
    /// Encodes `terms` (weight, literal) into `solver`, clamping attainable
    /// sums at `cap`.
    ///
    /// Zero-weight terms are ignored. With no (non-trivial) terms the sum
    /// is constantly 0 and there are no outputs.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn encode(solver: &mut Solver, terms: &[(u64, Lit)], cap: u64) -> Totalizer {
        Totalizer::encode_impl(solver, terms, cap, false)
            .expect("uninterruptible encoding always completes")
    }

    /// [`Totalizer::encode`] with cooperative interruption: the solver's
    /// own stop state ([`Solver::stop_requested`] — its interrupt flag,
    /// deadline, and shared conflict pool) is polled between merge nodes,
    /// and `None` is returned when it fires. A large objective found just
    /// before a deadline therefore cannot overshoot it while encoding; the
    /// caller keeps the model it has, honestly unproved.
    ///
    /// Clauses added before the interruption stay in the solver; they are
    /// sound (pure implications over fresh literals) and harmless without
    /// the bound assumptions that would have used them.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn encode_interruptible(
        solver: &mut Solver,
        terms: &[(u64, Lit)],
        cap: u64,
    ) -> Option<Totalizer> {
        Totalizer::encode_impl(solver, terms, cap, true)
    }

    fn encode_impl(
        solver: &mut Solver,
        terms: &[(u64, Lit)],
        cap: u64,
        interruptible: bool,
    ) -> Option<Totalizer> {
        assert!(cap > 0, "cap must be positive");
        let mut leaves: Vec<Vec<(u64, Lit)>> = terms
            .iter()
            .filter(|(w, _)| *w > 0)
            .map(|&(w, l)| vec![(w.min(cap), l)])
            .collect();
        if leaves.is_empty() {
            return Some(Totalizer {
                outputs: Vec::new(),
                cap,
            });
        }
        // Balanced bottom-up merge. The per-node work is bounded by the
        // cap-clamped sum count, so the per-merge stop check bounds the
        // overshoot to one node's clauses.
        while leaves.len() > 1 {
            let mut next = Vec::with_capacity(leaves.len().div_ceil(2));
            let mut it = leaves.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        if interruptible && solver.stop_requested() {
                            return None;
                        }
                        next.push(merge(solver, &a, &b, cap));
                    }
                    None => next.push(a),
                }
            }
            leaves = next;
        }
        Some(Totalizer {
            outputs: leaves.pop().expect("one root remains"),
            cap,
        })
    }

    /// The literal to *refute* in order to assert `sum ≤ bound`:
    /// the output literal of the smallest attainable sum exceeding `bound`.
    /// Returns `None` if no attainable sum exceeds `bound` (the constraint
    /// is vacuous).
    ///
    /// # Panics
    ///
    /// Panics if `bound >= cap` would make the clamped encoding unsound —
    /// i.e. `bound` must be `< cap`.
    pub fn bound_literal(&self, bound: u64) -> Option<Lit> {
        assert!(
            bound < self.cap,
            "bound {bound} not representable under cap {}",
            self.cap
        );
        self.outputs
            .iter()
            .find(|(w, _)| *w > bound)
            .map(|&(_, l)| l)
    }

    /// All `(w, o_w)` outputs, ascending.
    pub fn outputs(&self) -> &[(u64, Lit)] {
        &self.outputs
    }

    /// The clamp value used at encoding time.
    pub fn cap(&self) -> u64 {
        self.cap
    }
}

/// Merges two children, producing the parent's `(sum, literal)` list with
/// implication clauses:
/// `a_w → o_w`, `b_w → o_w`, `a_u ∧ b_v → o_{min(u+v, cap)}`, plus ordering
/// clauses `o_{wᵢ₊₁} → o_{wᵢ}`.
fn merge(solver: &mut Solver, a: &[(u64, Lit)], b: &[(u64, Lit)], cap: u64) -> Vec<(u64, Lit)> {
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<u64, Lit> = BTreeMap::new();
    let fresh = |solver: &mut Solver, sums: &mut BTreeMap<u64, Lit>, w: u64| -> Lit {
        *sums.entry(w).or_insert_with(|| solver.new_lit())
    };
    // Collect all attainable sums first.
    let mut wanted: Vec<u64> = Vec::new();
    for &(u, _) in a {
        wanted.push(u.min(cap));
    }
    for &(v, _) in b {
        wanted.push(v.min(cap));
    }
    for &(u, _) in a {
        for &(v, _) in b {
            wanted.push((u + v).min(cap));
        }
    }
    wanted.sort_unstable();
    wanted.dedup();
    for w in wanted {
        let _ = fresh(solver, &mut sums, w);
    }
    // Implications.
    for &(u, la) in a {
        let o = sums[&u.min(cap)];
        solver.add_clause([!la, o]);
    }
    for &(v, lb) in b {
        let o = sums[&v.min(cap)];
        solver.add_clause([!lb, o]);
    }
    for &(u, la) in a {
        for &(v, lb) in b {
            let o = sums[&(u + v).min(cap)];
            solver.add_clause([!la, !lb, o]);
        }
    }
    let out: Vec<(u64, Lit)> = sums.into_iter().collect();
    // Ordering: sum ≥ w₊ implies sum ≥ w₋.
    for pair in out.windows(2) {
        solver.add_clause([!pair[1].1, pair[0].1]);
    }
    out
}

/// Evaluates `Σ wᵢ·ℓᵢ` under a model.
pub fn evaluate(terms: &[(u64, Lit)], model: &crate::solver::Model) -> u64 {
    terms
        .iter()
        .filter(|(_, l)| model.value(*l))
        .map(|(w, _)| *w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_lit()).collect()
    }

    /// Exhaustively verify: for every assignment of the term literals, the
    /// formula with assumption `sum ≤ bound` is satisfiable extending that
    /// assignment iff the true weighted sum is ≤ bound.
    fn check_bounds_exhaustively(weights: &[u64]) {
        let cap: u64 = weights.iter().sum::<u64>() + 1;
        for bound in 0..weights.iter().sum::<u64>() {
            let mut s = Solver::new();
            let v = lits(&mut s, weights.len());
            let terms: Vec<(u64, Lit)> = weights.iter().copied().zip(v.iter().copied()).collect();
            let tot = Totalizer::encode(&mut s, &terms, cap);
            let bound_lit = tot.bound_literal(bound);
            for mask in 0..(1u32 << weights.len()) {
                let mut assumptions: Vec<Lit> = (0..weights.len())
                    .map(|i| if mask & (1 << i) != 0 { v[i] } else { !v[i] })
                    .collect();
                if let Some(bl) = bound_lit {
                    assumptions.push(!bl);
                }
                let sum: u64 = (0..weights.len())
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| weights[i])
                    .sum();
                let res = s.solve_with_assumptions(&assumptions);
                if sum <= bound {
                    assert!(
                        res.is_sat(),
                        "weights={weights:?} mask={mask:b} bound={bound}"
                    );
                } else {
                    assert_eq!(
                        res,
                        SolveResult::Unsat,
                        "weights={weights:?} mask={mask:b} bound={bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn unit_weights_behave_like_cardinality() {
        check_bounds_exhaustively(&[1, 1, 1, 1]);
    }

    #[test]
    fn paper_weights_seven_and_four() {
        // The actual weight profile of Eq. 5: multiples of 7 plus 4s.
        check_bounds_exhaustively(&[7, 7, 14, 4, 4]);
    }

    #[test]
    fn mixed_weights() {
        check_bounds_exhaustively(&[3, 5, 2]);
        check_bounds_exhaustively(&[10, 1, 1, 1]);
    }

    #[test]
    fn zero_weight_terms_are_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let tot = Totalizer::encode(&mut s, &[(0, v[0]), (5, v[1])], 10);
        assert_eq!(tot.outputs().len(), 1);
    }

    #[test]
    fn empty_objective_has_no_outputs() {
        let mut s = Solver::new();
        let tot = Totalizer::encode(&mut s, &[], 10);
        assert!(tot.outputs().is_empty());
        assert_eq!(tot.bound_literal(3), None);
        assert_eq!(tot.cap(), 10);
    }

    #[test]
    fn cap_clamps_large_sums() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let terms = vec![(100u64, v[0]), (100, v[1]), (100, v[2])];
        let tot = Totalizer::encode(&mut s, &terms, 150);
        // Attainable clamped sums: 100, 150.
        let ws: Vec<u64> = tot.outputs().iter().map(|(w, _)| *w).collect();
        assert_eq!(ws, vec![100, 150]);
        // Bound 99 refutes "≥ 100": no term may be true.
        let bl = tot.bound_literal(99).unwrap();
        let m = s.solve_with_assumptions(&[!bl]).model().cloned().unwrap();
        assert!(!m.value(v[0]) && !m.value(v[1]) && !m.value(v[2]));
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn bound_at_or_above_cap_panics() {
        let mut s = Solver::new();
        let v = s.new_lit();
        let tot = Totalizer::encode(&mut s, &[(5, v)], 6);
        let _ = tot.bound_literal(6);
    }

    #[test]
    fn interrupted_encoding_returns_none_and_plain_encode_ignores_stops() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let terms: Vec<(u64, Lit)> = v.iter().map(|&l| (1, l)).collect();
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert!(s.stop_requested());
        // The interruptible form winds down at the first merge node...
        assert!(Totalizer::encode_interruptible(&mut s, &terms, 5).is_none());
        // ... the plain form completes regardless (it promises a result).
        let tot = Totalizer::encode(&mut s, &terms, 5);
        assert_eq!(tot.outputs().len(), 4);
        // With the flag cleared, the interruptible form completes too.
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        let tot = Totalizer::encode_interruptible(&mut s, &terms, 5).expect("not stopped");
        assert_eq!(tot.outputs().len(), 4);
    }

    #[test]
    fn single_term_encoding_survives_interruption() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // One leaf means no merge: nothing to interrupt.
        let mut s = Solver::new();
        let v = s.new_lit();
        s.set_interrupt(Some(Arc::new(AtomicBool::new(true))));
        let tot = Totalizer::encode_interruptible(&mut s, &[(3, v)], 5).expect("no merges");
        assert_eq!(tot.outputs().len(), 1);
    }

    #[test]
    fn evaluate_sums_true_terms() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0]]);
        s.add_clause([!v[1]]);
        s.add_clause([v[2]]);
        let m = s.solve().model().cloned().unwrap();
        let terms = vec![(7u64, v[0]), (4, v[1]), (9, v[2])];
        assert_eq!(evaluate(&terms, &m), 16);
    }
}
