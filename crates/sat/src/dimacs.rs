//! DIMACS CNF import/export.

use std::error::Error;
use std::fmt;

use crate::lit::Lit;
use crate::solver::Solver;

/// A parsed DIMACS CNF instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Declared variable count.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the instance into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }
}

/// Error parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, literals out of the
/// declared range, or clauses missing their `0` terminator.
///
/// ```
/// let cnf = qxmap_sat::dimacs::parse("p cnf 3 2\n1 -2 0\n2 3 0\n")?;
/// assert_eq!(cnf.num_vars, 3);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok::<(), qxmap_sat::dimacs::ParseDimacsError>(())
/// ```
pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(ParseDimacsError {
                    line: lineno,
                    message: format!("malformed problem line `{line}`"),
                });
            }
            num_vars = Some(parts[1].parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: "bad variable count".into(),
            })?);
            declared_clauses = parts[2].parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: "bad clause count".into(),
            })?;
            continue;
        }
        let nv = num_vars.ok_or(ParseDimacsError {
            line: lineno,
            message: "clause before problem line".into(),
        })?;
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                message: format!("bad literal `{tok}`"),
            })?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if v.unsigned_abs() as usize > nv {
                    return Err(ParseDimacsError {
                        line: lineno,
                        message: format!("literal {v} out of range (max {nv})"),
                    });
                }
                current.push(Lit::from_dimacs(v));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "last clause not terminated by 0".into(),
        });
    }
    let num_vars = num_vars.ok_or(ParseDimacsError {
        line: 0,
        message: "missing problem line".into(),
    })?;
    let _ = declared_clauses; // informative only; actual count may differ
    Ok(Cnf { num_vars, clauses })
}

/// Serializes an instance to DIMACS CNF text.
pub fn write(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for l in c {
            out.push_str(&l.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parse_simple() {
        let cnf = parse("c comment\np cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
        let mut s = cnf.to_solver();
        let m = s.solve().model().cloned().unwrap();
        assert!(m.value(Lit::from_dimacs(2)));
    }

    #[test]
    fn multiline_clause() {
        let cnf = parse("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn roundtrip() {
        let text = "p cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(write(&cnf), text);
    }

    #[test]
    fn error_cases() {
        assert!(parse("1 2 0\n").is_err()); // clause before header
        assert!(parse("p cnf x 1\n").is_err());
        assert!(parse("p cnf 1 1\n2 0\n").is_err()); // out of range
        assert!(parse("p cnf 1 1\n1\n").is_err()); // unterminated
        assert!(parse("").is_err()); // no header
        let err = parse("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unsat_instance() {
        let mut s = parse("p cnf 1 2\n1 0\n-1 0\n").unwrap().to_solver();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
