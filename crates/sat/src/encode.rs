//! Cardinality and gate encodings.
//!
//! The symbolic formulation needs *exactly-one* constraints (Eq. 1's
//! well-defined-mapping condition, the permutation selectors of footnote 5)
//! and *at-most-one* / *at-most-k* constraints. Small constraints use the
//! pairwise encoding; larger ones the sequential (ladder) encoding, which
//! is linear in clauses and auxiliary variables.

use crate::lit::Lit;
use crate::solver::Solver;

/// Above this size, [`at_most_one`] switches from pairwise to sequential.
const PAIRWISE_LIMIT: usize = 6;

/// Adds `ℓ₁ + … + ℓₙ ≥ 1` (a single clause).
pub fn at_least_one(solver: &mut Solver, lits: &[Lit]) {
    solver.add_clause(lits.iter().copied());
}

/// Adds `ℓ₁ + … + ℓₙ ≤ 1`, choosing pairwise or sequential encoding by
/// size.
pub fn at_most_one(solver: &mut Solver, lits: &[Lit]) {
    if lits.len() <= PAIRWISE_LIMIT {
        at_most_one_pairwise(solver, lits);
    } else {
        at_most_one_sequential(solver, lits);
    }
}

/// Pairwise at-most-one: `O(n²)` binary clauses, no auxiliary variables.
pub fn at_most_one_pairwise(solver: &mut Solver, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            solver.add_clause([!lits[i], !lits[j]]);
        }
    }
}

/// Sequential (ladder/commander-free) at-most-one: `O(n)` clauses and
/// `n − 1` auxiliary variables `sᵢ` meaning "some literal among the first
/// `i+1` is true".
pub fn at_most_one_sequential(solver: &mut Solver, lits: &[Lit]) {
    if lits.len() <= 1 {
        return;
    }
    let n = lits.len();
    let s: Vec<Lit> = (0..n - 1).map(|_| solver.new_lit()).collect();
    solver.add_clause([!lits[0], s[0]]);
    for i in 1..n - 1 {
        solver.add_clause([!lits[i], s[i]]);
        solver.add_clause([!s[i - 1], s[i]]);
        solver.add_clause([!lits[i], !s[i - 1]]);
    }
    solver.add_clause([!lits[n - 1], !s[n - 2]]);
}

/// Adds `ℓ₁ + … + ℓₙ = 1`.
pub fn exactly_one(solver: &mut Solver, lits: &[Lit]) {
    at_least_one(solver, lits);
    at_most_one(solver, lits);
}

/// Commander at-most-one (Klieber & Kwon 2007): split into groups of
/// `group` literals, pairwise-encode each group, introduce one commander
/// literal per group ("some member is true"), and recurse on the
/// commanders. `O(n)` clauses with small constants; often the best
/// encoding between the pairwise and sequential extremes.
pub fn at_most_one_commander(solver: &mut Solver, lits: &[Lit], group: usize) {
    let group = group.max(2);
    if lits.len() <= group + 1 {
        at_most_one_pairwise(solver, lits);
        return;
    }
    let mut commanders = Vec::with_capacity(lits.len().div_ceil(group));
    for chunk in lits.chunks(group) {
        at_most_one_pairwise(solver, chunk);
        let commander = solver.new_lit();
        // commander ↔ (some member true): both directions keep the
        // commander honest so the recursion's AMO is exact.
        for &l in chunk {
            solver.add_clause([!l, commander]);
        }
        let mut clause: Vec<Lit> = chunk.to_vec();
        clause.push(!commander);
        solver.add_clause(clause);
        commanders.push(commander);
    }
    at_most_one_commander(solver, &commanders, group);
}

/// Adds `ℓ₁ + … + ℓₙ ≤ k` via the sequential counter encoding
/// (Sinz 2005): `O(n·k)` auxiliary variables and clauses.
pub fn at_most_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    let n = lits.len();
    if n <= k {
        return; // trivially satisfied
    }
    if k == 0 {
        for &l in lits {
            solver.add_clause([!l]);
        }
        return;
    }
    // r[i][j]: among lits[0..=i] at least j+1 are true (j < k).
    let mut r: Vec<Vec<Lit>> = Vec::with_capacity(n);
    for _ in 0..n {
        r.push((0..k).map(|_| solver.new_lit()).collect());
    }
    solver.add_clause([!lits[0], r[0][0]]);
    for &rj in &r[0][1..k] {
        solver.add_clause([!rj]);
    }
    for i in 1..n {
        solver.add_clause([!lits[i], r[i][0]]);
        solver.add_clause([!r[i - 1][0], r[i][0]]);
        for j in 1..k {
            solver.add_clause([!lits[i], !r[i - 1][j - 1], r[i][j]]);
            solver.add_clause([!r[i - 1][j], r[i][j]]);
        }
        solver.add_clause([!lits[i], !r[i - 1][k - 1]]);
    }
}

/// Tseitin AND: returns a literal `g` with `g ↔ (ℓ₁ ∧ … ∧ ℓₙ)`.
pub fn and_gate(solver: &mut Solver, lits: &[Lit]) -> Lit {
    let g = solver.new_lit();
    for &l in lits {
        solver.add_clause([!g, l]);
    }
    let mut clause: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    clause.push(g);
    solver.add_clause(clause);
    g
}

/// Tseitin OR: returns a literal `g` with `g ↔ (ℓ₁ ∨ … ∨ ℓₙ)`.
pub fn or_gate(solver: &mut Solver, lits: &[Lit]) -> Lit {
    let g = solver.new_lit();
    for &l in lits {
        solver.add_clause([!l, g]);
    }
    let mut clause: Vec<Lit> = lits.to_vec();
    clause.push(!g);
    solver.add_clause(clause);
    g
}

/// Adds `a → b`.
pub fn implies(solver: &mut Solver, a: Lit, b: Lit) {
    solver.add_clause([!a, b]);
}

/// Adds `a ↔ b`.
pub fn iff(solver: &mut Solver, a: Lit, b: Lit) {
    solver.add_clause([!a, b]);
    solver.add_clause([a, !b]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_lit()).collect()
    }

    /// Count models of the current formula over the first `n` vars by
    /// blocking clauses (small n only).
    fn count_models(s: &mut Solver, over: &[Lit]) -> usize {
        let mut count = 0;
        while let SolveResult::Sat(m) = s.solve() {
            count += 1;
            let block: Vec<Lit> = over
                .iter()
                .map(|&l| if m.value(l) { !l } else { l })
                .collect();
            if !s.add_clause(block) {
                break;
            }
        }
        count
    }

    #[test]
    fn exactly_one_has_n_models() {
        for n in 1..=8 {
            let mut s = Solver::new();
            let v = lits(&mut s, n);
            exactly_one(&mut s, &v);
            assert_eq!(count_models(&mut s, &v), n, "n={n}");
        }
    }

    #[test]
    fn at_most_one_model_count() {
        // n + 1 models: all-false plus each singleton.
        for n in [2, 5, 9] {
            let mut s = Solver::new();
            let v = lits(&mut s, n);
            at_most_one(&mut s, &v);
            assert_eq!(count_models(&mut s, &v), n + 1, "n={n}");
        }
    }

    #[test]
    fn sequential_amo_matches_pairwise() {
        for n in 2..=7 {
            let mut s1 = Solver::new();
            let v1 = lits(&mut s1, n);
            at_most_one_pairwise(&mut s1, &v1);
            let mut s2 = Solver::new();
            let v2 = lits(&mut s2, n);
            at_most_one_sequential(&mut s2, &v2);
            assert_eq!(
                count_models(&mut s1, &v1),
                count_models(&mut s2, &v2),
                "n={n}"
            );
        }
    }

    #[test]
    fn commander_amo_matches_pairwise() {
        for n in [3usize, 7, 12, 20] {
            for group in [2usize, 3, 4] {
                let mut s1 = Solver::new();
                let v1 = lits(&mut s1, n);
                at_most_one_pairwise(&mut s1, &v1);
                let mut s2 = Solver::new();
                let v2 = lits(&mut s2, n);
                at_most_one_commander(&mut s2, &v2, group);
                assert_eq!(
                    count_models(&mut s1, &v1),
                    count_models(&mut s2, &v2),
                    "n={n} group={group}"
                );
            }
        }
    }

    #[test]
    fn at_most_k_model_counts() {
        // Sum over i ≤ k of C(n, i).
        fn binom(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
        }
        for (n, k) in [(4, 2), (5, 1), (5, 3), (6, 0), (3, 3)] {
            let mut s = Solver::new();
            let v = lits(&mut s, n);
            at_most_k(&mut s, &v, k);
            let expected: usize = (0..=k).map(|i| binom(n, i)).sum();
            assert_eq!(count_models(&mut s, &v), expected, "n={n} k={k}");
        }
    }

    #[test]
    fn at_most_k_forces_unsat_when_k_exceeded() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        at_most_k(&mut s, &v, 2);
        for &l in &v[0..3] {
            s.add_clause([l]);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn and_gate_truth_table() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let g = and_gate(&mut s, &v.clone());
        // g true forces both.
        let m = s.solve_with_assumptions(&[g]).model().cloned().unwrap();
        assert!(m.value(v[0]) && m.value(v[1]));
        // both true forces g.
        let m = s
            .solve_with_assumptions(&[v[0], v[1]])
            .model()
            .cloned()
            .unwrap();
        assert!(m.value(g));
        // one false forces ¬g.
        let m = s.solve_with_assumptions(&[!v[0]]).model().cloned().unwrap();
        assert!(!m.value(g));
    }

    #[test]
    fn or_gate_truth_table() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let g = or_gate(&mut s, &v.clone());
        let m = s
            .solve_with_assumptions(&[!v[0], !v[1], !v[2]])
            .model()
            .cloned()
            .unwrap();
        assert!(!m.value(g));
        let m = s.solve_with_assumptions(&[v[1]]).model().cloned().unwrap();
        assert!(m.value(g));
    }

    #[test]
    fn iff_and_implies() {
        let mut s = Solver::new();
        let a = s.new_lit();
        let b = s.new_lit();
        let c = s.new_lit();
        iff(&mut s, a, b);
        implies(&mut s, b, c);
        let m = s.solve_with_assumptions(&[a]).model().cloned().unwrap();
        assert!(m.value(b) && m.value(c));
        let m = s.solve_with_assumptions(&[!b]).model().cloned().unwrap();
        assert!(!m.value(a));
    }

    #[test]
    fn empty_constraints_are_noops() {
        let mut s = Solver::new();
        at_most_one(&mut s, &[]);
        at_most_k(&mut s, &[], 0);
        assert!(s.solve().is_sat());
    }
}
