//! Objective minimization (the "extended interpretation" of Definition 3).
//!
//! Given a satisfiable formula and an objective `F = Σ wᵢ·ℓᵢ`, find a model
//! minimizing `F`. Two complementary search schedules are provided, both
//! driven by [`Totalizer`] bound literals assumed incrementally (the clause
//! database, including everything learnt, is reused across iterations):
//!
//! * **linear descent** (default): solve, read off the model cost `C`,
//!   assume `F ≤ C − 1`, repeat until unsatisfiable — matching the paper's
//!   "add the objective min: F" usage where each improving model tightens
//!   the bound;
//! * **binary search**: bisect on `F ≤ mid` between 0 and the first model's
//!   cost (the paper's footnote alternative).

use crate::lit::Lit;
use crate::solver::{Model, SolveResult, Solver};
use crate::totalizer::{evaluate, Totalizer};

/// Search schedule for [`minimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinimizeStrategy {
    /// Model-improving linear descent from the first model's cost.
    #[default]
    LinearDescent,
    /// Binary search on the bound.
    BinarySearch,
}

/// Options for [`minimize`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimizeOptions {
    /// Search schedule.
    pub strategy: MinimizeStrategy,
    /// Total conflict budget shared by the whole minimization
    /// (`None` = unlimited). When it runs out, the best model found so
    /// far is returned with `proved_optimal = false`.
    pub conflict_budget: Option<u64>,
    /// An externally known achievable cost (e.g. from a heuristic run):
    /// the search only looks for models with cost **strictly below** this
    /// bound, pruning from the very first solve. When no such model
    /// exists, [`MinimizeError::Unsatisfiable`] is returned — which then
    /// certifies the external solution as optimal.
    pub initial_upper_bound: Option<u64>,
}

impl MinimizeOptions {
    /// Sets the search schedule (builder style).
    pub fn with_strategy(mut self, strategy: MinimizeStrategy) -> MinimizeOptions {
        self.strategy = strategy;
        self
    }

    /// Sets the total conflict budget (builder style).
    pub fn with_conflict_budget(mut self, budget: Option<u64>) -> MinimizeOptions {
        self.conflict_budget = budget;
        self
    }

    /// Sets the externally known achievable cost the search stays
    /// strictly below (builder style). Callers typically derive the bound
    /// from a result priced under the same device cost model as the
    /// objective weights — mixing models breaks the certificate.
    pub fn with_initial_upper_bound(mut self, bound: Option<u64>) -> MinimizeOptions {
        self.initial_upper_bound = bound;
        self
    }
}

/// Why a minimization produced no model at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinimizeError {
    /// The hard clauses are unsatisfiable.
    Unsatisfiable,
    /// The conflict budget ran out before any model was found.
    BudgetExhausted,
}

impl std::fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizeError::Unsatisfiable => write!(f, "hard clauses are unsatisfiable"),
            MinimizeError::BudgetExhausted => {
                write!(f, "conflict budget exhausted before a first model")
            }
        }
    }
}

impl std::error::Error for MinimizeError {}

/// Result of a successful minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// The minimal objective value found.
    pub cost: u64,
    /// A model attaining [`Minimum::cost`].
    pub model: Model,
    /// Whether optimality was proved (always true without a budget).
    pub proved_optimal: bool,
    /// Number of `solve` calls performed.
    pub iterations: u32,
}

/// Minimizes `Σ wᵢ·ℓᵢ` subject to the clauses already in `solver`.
///
/// The solver is left with only the original clauses plus consequences
/// (bounds are applied via assumptions, never as permanent clauses), so it
/// can be reused.
///
/// # Errors
///
/// [`MinimizeError::Unsatisfiable`] if the hard clauses have no model;
/// [`MinimizeError::BudgetExhausted`] if the conflict budget ran out before
/// the first model was found (with a budget, a *found* model that merely
/// could not be proved optimal is still returned, flagged
/// `proved_optimal: false`).
///
/// ```
/// use qxmap_sat::{minimize, MinimizeOptions, Solver};
///
/// // Example 4 of the paper: minimize F = x1 + x2 + x3 subject to
/// // (x1 ∨ x2 ∨ ¬x3)(¬x1 ∨ x3)(¬x2 ∨ x3): minimum is all-false, F = 0.
/// let mut s = Solver::new();
/// let x1 = s.new_lit();
/// let x2 = s.new_lit();
/// let x3 = s.new_lit();
/// s.add_clause([x1, x2, !x3]);
/// s.add_clause([!x1, x3]);
/// s.add_clause([!x2, x3]);
/// let min = minimize(&mut s, &[(1, x1), (1, x2), (1, x3)],
///                    MinimizeOptions::default()).expect("satisfiable");
/// assert_eq!(min.cost, 0);
/// assert!(min.proved_optimal);
/// ```
pub fn minimize(
    solver: &mut Solver,
    objective: &[(u64, Lit)],
    options: MinimizeOptions,
) -> Result<Minimum, MinimizeError> {
    // The budget is shared by the *whole* minimization: each solve call
    // receives what remains.
    let mut remaining = options.conflict_budget;
    let mut budgeted_solve = |solver: &mut Solver, assumptions: &[Lit]| -> SolveResult {
        if remaining == Some(0) {
            return SolveResult::Unknown;
        }
        solver.set_conflict_budget(remaining);
        let before = solver.stats().conflicts;
        let result = solver.solve_with_assumptions(assumptions);
        if let Some(rem) = remaining.as_mut() {
            *rem = rem.saturating_sub(solver.stats().conflicts - before);
        }
        result
    };

    // With an external upper bound, encode the objective up front and
    // assume `F ≤ ub − 1` from the very first solve: the solver propagates
    // the bound instead of rediscovering it model by model. The encoding
    // itself observes the solver's deadline/interrupt/pool state, so a
    // budget that fires mid-encoding surfaces as exhaustion, not overrun.
    let mut totalizer: Option<Totalizer> = None;
    let mut base_assumptions: Vec<Lit> = Vec::new();
    if let Some(ub) = options.initial_upper_bound {
        if ub == 0 {
            // Nothing can cost strictly less than 0.
            return Err(MinimizeError::Unsatisfiable);
        }
        let Some(t) = Totalizer::encode_interruptible(solver, objective, ub) else {
            return Err(MinimizeError::BudgetExhausted);
        };
        if let Some(bl) = t.bound_literal(ub - 1) {
            base_assumptions.push(!bl);
        }
        totalizer = Some(t);
    }

    let first = budgeted_solve(solver, &base_assumptions);
    let mut iterations = 1;
    let mut best = match first {
        SolveResult::Sat(m) => m,
        SolveResult::Unsat => {
            solver.set_conflict_budget(None);
            return Err(MinimizeError::Unsatisfiable);
        }
        SolveResult::Unknown => {
            solver.set_conflict_budget(None);
            return Err(MinimizeError::BudgetExhausted);
        }
    };
    let mut best_cost = evaluate(objective, &best);
    if best_cost == 0 {
        solver.set_conflict_budget(None);
        return Ok(Minimum {
            cost: 0,
            model: best,
            proved_optimal: true,
            iterations,
        });
    }

    // Encode the objective once (unless the upper bound already did),
    // clamped at the first model's cost: all future bounds are strictly
    // below it. On a large objective this encoding can dwarf a deadline
    // that the first model only just beat — when the solver's stop state
    // fires mid-encoding, the first model is returned, honestly unproved,
    // instead of overshooting the budget.
    let totalizer = match totalizer {
        Some(t) => t,
        None => match Totalizer::encode_interruptible(solver, objective, best_cost) {
            Some(t) => t,
            None => {
                solver.set_conflict_budget(None);
                return Ok(Minimum {
                    cost: best_cost,
                    model: best,
                    proved_optimal: false,
                    iterations,
                });
            }
        },
    };
    let mut proved = false;

    match options.strategy {
        MinimizeStrategy::LinearDescent => {
            loop {
                let target = best_cost - 1;
                let Some(bl) = totalizer.bound_literal(target) else {
                    // No attainable sum exceeds target — cost can't be
                    // bounded further by this encoding; best is optimal
                    // among attainable sums.
                    proved = true;
                    break;
                };
                match budgeted_solve(solver, &[!bl]) {
                    SolveResult::Sat(m) => {
                        iterations += 1;
                        let c = evaluate(objective, &m);
                        debug_assert!(c < best_cost);
                        best = m;
                        best_cost = c;
                        if best_cost == 0 {
                            proved = true;
                            break;
                        }
                    }
                    SolveResult::Unsat => {
                        iterations += 1;
                        proved = true;
                        break;
                    }
                    SolveResult::Unknown => {
                        iterations += 1;
                        break;
                    }
                }
            }
        }
        MinimizeStrategy::BinarySearch => {
            let mut lo = 0u64; // F ≥ lo is known possible-optimal region floor
            let mut hi = best_cost; // best known achievable
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let Some(bl) = totalizer.bound_literal(mid) else {
                    // Nothing attainable above mid: any model has cost ≤ mid.
                    hi = mid.min(hi);
                    if hi == 0 {
                        break;
                    }
                    // Without a literal we cannot query below; fall back to
                    // linear reasoning: attainable sums ≤ mid only.
                    proved = true;
                    break;
                };
                match budgeted_solve(solver, &[!bl]) {
                    SolveResult::Sat(m) => {
                        iterations += 1;
                        let c = evaluate(objective, &m);
                        debug_assert!(c <= mid);
                        best = m;
                        best_cost = c;
                        hi = c;
                    }
                    SolveResult::Unsat => {
                        iterations += 1;
                        lo = mid + 1;
                    }
                    SolveResult::Unknown => {
                        iterations += 1;
                        lo = hi; // abandon: return best so far, unproved
                        break;
                    }
                }
            }
            if lo >= best_cost {
                proved = true;
            }
        }
    }

    solver.set_conflict_budget(None);
    Ok(Minimum {
        cost: best_cost,
        model: best,
        proved_optimal: proved,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::exactly_one;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_lit()).collect()
    }

    #[test]
    fn unsat_formula_returns_none() {
        let mut s = Solver::new();
        let a = s.new_lit();
        s.add_clause([a]);
        s.add_clause([!a]);
        assert_eq!(
            minimize(&mut s, &[(1, a)], MinimizeOptions::default()),
            Err(MinimizeError::Unsatisfiable)
        );
    }

    #[test]
    fn picks_cheapest_of_exactly_one() {
        for strategy in [
            MinimizeStrategy::LinearDescent,
            MinimizeStrategy::BinarySearch,
        ] {
            let mut s = Solver::new();
            let v = lits(&mut s, 4);
            exactly_one(&mut s, &v);
            let obj = vec![(9u64, v[0]), (2, v[1]), (5, v[2]), (7, v[3])];
            let min = minimize(
                &mut s,
                &obj,
                MinimizeOptions {
                    strategy,
                    ..Default::default()
                },
            )
            .expect("sat");
            assert_eq!(min.cost, 2, "{strategy:?}");
            assert!(min.model.value(v[1]));
            assert!(min.proved_optimal);
        }
    }

    #[test]
    fn forced_positive_cost() {
        // x1 ∨ x2 with weights 7 and 4: minimum 4.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let min = minimize(&mut s, &[(7, v[0]), (4, v[1])], MinimizeOptions::default()).unwrap();
        assert_eq!(min.cost, 4);
        assert!(!min.model.value(v[0]) && min.model.value(v[1]));
    }

    #[test]
    fn zero_cost_shortcut() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]); // free to pick either; obj over other vars
        let w = s.new_lit();
        let min = minimize(&mut s, &[(3, w)], MinimizeOptions::default()).unwrap();
        assert_eq!(min.cost, 0);
        assert_eq!(min.iterations, 1);
    }

    #[test]
    fn upper_bound_prunes_but_preserves_the_minimum() {
        for strategy in [
            MinimizeStrategy::LinearDescent,
            MinimizeStrategy::BinarySearch,
        ] {
            let mut s = Solver::new();
            let v = lits(&mut s, 4);
            exactly_one(&mut s, &v);
            let obj = vec![(9u64, v[0]), (2, v[1]), (5, v[2]), (7, v[3])];
            let min = minimize(
                &mut s,
                &obj,
                MinimizeOptions {
                    strategy,
                    initial_upper_bound: Some(6),
                    ..Default::default()
                },
            )
            .expect("cost 2 < 6 exists");
            assert_eq!(min.cost, 2, "{strategy:?}");
            assert!(min.proved_optimal);
        }
    }

    #[test]
    fn tight_upper_bound_certifies_external_optimum() {
        // Minimum is 4; asking for strictly better must be Unsatisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let err = minimize(
            &mut s,
            &[(7, v[0]), (4, v[1])],
            MinimizeOptions {
                initial_upper_bound: Some(4),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, MinimizeError::Unsatisfiable);
        // A zero bound can never be beaten.
        let err = minimize(
            &mut s,
            &[(7, v[0]), (4, v[1])],
            MinimizeOptions {
                initial_upper_bound: Some(0),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, MinimizeError::Unsatisfiable);
        // The solver survives bound assumptions and stays reusable.
        assert!(s.solve_with_assumptions(&[v[0]]).is_sat());
    }

    #[test]
    fn interrupted_upfront_encoding_is_budget_exhaustion() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        // With an initial upper bound, the totalizer is encoded before the
        // first solve; a stop request during that encoding must surface as
        // budget exhaustion instead of a completed (overshot) encoding.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        s.set_interrupt(Some(Arc::new(AtomicBool::new(true))));
        let err = minimize(
            &mut s,
            &[(1, v[0]), (1, v[1]), (1, v[2])],
            MinimizeOptions {
                initial_upper_bound: Some(3),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, MinimizeError::BudgetExhausted);
    }

    #[test]
    fn solver_reusable_after_minimize() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        exactly_one(&mut s, &v);
        let obj: Vec<(u64, Lit)> = vec![(1, v[0]), (2, v[1]), (3, v[2])];
        let min = minimize(&mut s, &obj, MinimizeOptions::default()).unwrap();
        assert_eq!(min.cost, 1);
        // The formula is still just "exactly one": forcing v[2] must work.
        assert!(s.solve_with_assumptions(&[v[2]]).is_sat());
    }

    #[test]
    fn binary_and_linear_agree_on_random_instances() {
        let mut seed = 0x12345u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..20 {
            let n = 8;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..12 {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    cl.push(((rnd() % n as u64) as usize, rnd() % 2 == 0));
                }
                clauses.push(cl);
            }
            let weights: Vec<u64> = (0..n).map(|_| rnd() % 9 + 1).collect();

            let run = |strategy: MinimizeStrategy| {
                let mut s = Solver::new();
                let v = lits(&mut s, n);
                for cl in &clauses {
                    s.add_clause(cl.iter().map(|&(i, pos)| if pos { v[i] } else { !v[i] }));
                }
                let obj: Vec<(u64, Lit)> = weights.iter().copied().zip(v.iter().copied()).collect();
                minimize(
                    &mut s,
                    &obj,
                    MinimizeOptions {
                        strategy,
                        ..Default::default()
                    },
                )
                .ok()
                .map(|m| m.cost)
            };
            assert_eq!(
                run(MinimizeStrategy::LinearDescent),
                run(MinimizeStrategy::BinarySearch)
            );
        }
    }

    #[test]
    fn matches_brute_force_reference() {
        let mut seed = 0x777u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..15 {
            let n = 7usize;
            let mut clauses: Vec<Vec<i64>> = Vec::new();
            for _ in 0..10 {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let var = (rnd() % n as u64) as i64 + 1;
                    cl.push(if rnd() % 2 == 0 { var } else { -var });
                }
                clauses.push(cl);
            }
            let weights: Vec<u64> = (0..n).map(|_| rnd() % 6).collect();

            // Brute force.
            let mut brute_best: Option<u64> = None;
            for mask in 0..(1u32 << n) {
                let assign = |v: i64| -> bool {
                    let idx = v.unsigned_abs() as usize - 1;
                    let val = mask & (1 << idx) != 0;
                    if v > 0 {
                        val
                    } else {
                        !val
                    }
                };
                if clauses.iter().all(|cl| cl.iter().any(|&l| assign(l))) {
                    let cost: u64 = (0..n)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| weights[i])
                        .sum();
                    brute_best = Some(brute_best.map_or(cost, |b: u64| b.min(cost)));
                }
            }

            let mut s = Solver::new();
            let v = lits(&mut s, n);
            for cl in &clauses {
                s.add_clause(cl.iter().map(|&l| {
                    let idx = l.unsigned_abs() as usize - 1;
                    if l > 0 {
                        v[idx]
                    } else {
                        !v[idx]
                    }
                }));
            }
            let obj: Vec<(u64, Lit)> = weights.iter().copied().zip(v.iter().copied()).collect();
            let got = minimize(&mut s, &obj, MinimizeOptions::default())
                .ok()
                .map(|m| m.cost);
            assert_eq!(got, brute_best);
        }
    }
}
