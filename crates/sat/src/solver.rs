//! The CDCL solver.
//!
//! A conventional MiniSat-style architecture: two-watched-literal unit
//! propagation, VSIDS decision heuristic with an indexed binary heap,
//! first-UIP conflict analysis with local clause minimization, phase
//! saving, Luby restarts and activity-driven learnt-clause garbage
//! collection. Incremental use is supported through solving under
//! assumptions; the clause database persists across calls.
//!
//! Concurrent callers can bound and interrupt a search cooperatively:
//! besides the per-call conflict budget, a solver can carry a wall-clock
//! [`Solver::set_deadline`], a shared [`Solver::set_interrupt`] flag, and
//! a [`Solver::set_shared_conflict_pool`] drawn from by every solver that
//! holds it — the primitives behind `qxmap-core`'s parallel per-subset
//! solves and `qxmap-map`'s racing portfolio. All three are checked at
//! conflict granularity and surface as [`SolveResult::Unknown`].

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::lit::{Lit, Var};

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f64 = 0.999;
const RESTART_BASE: u64 = 100;

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveResult {
    /// Satisfiable, with a full model.
    Sat(Model),
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

impl SolveResult {
    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

/// A complete satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Truth value of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable is unknown to the model.
    pub fn value(&self, lit: Lit) -> bool {
        self.values[lit.var().index()] == lit.is_positive()
    }

    /// Truth value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is unknown to the model.
    pub fn var_value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Why the most recent [`Solver::solve`] call came back
/// [`SolveResult::Unknown`] — the observability counter behind
/// per-minimization-step traces, distinguishing a cooperative cancel
/// from an expired wall-clock deadline from an exhausted conflict
/// budget (per-call or shared pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The cooperative interrupt flag fired ([`Solver::set_interrupt`]).
    Interrupt,
    /// The wall-clock deadline passed ([`Solver::set_deadline`]).
    Deadline,
    /// The per-call budget ([`Solver::set_conflict_budget`]) or the
    /// shared pool ([`Solver::set_shared_conflict_pool`]) ran out.
    ConflictBudget,
}

impl StopCause {
    /// Stable label for metrics and trace counters.
    pub fn label(&self) -> &'static str {
        match self {
            StopCause::Interrupt => "interrupt",
            StopCause::Deadline => "deadline",
            StopCause::ConflictBudget => "conflict_budget",
        }
    }
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: usize,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} conflicts, {} decisions, {} propagations, {} restarts, {} learnts",
            self.conflicts, self.decisions, self.propagations, self.restarts, self.learnts
        )
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Binary max-heap over variables keyed by activity, with position index.
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<i32>, // -1 when absent
}

impl VarOrder {
    fn contains(&self, v: u32) -> bool {
        (v as usize) < self.pos.len() && self.pos[v as usize] >= 0
    }

    fn push(&mut self, v: u32, act: &[f64]) {
        while self.pos.len() <= v as usize {
            self.pos.push(-1);
        }
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn update(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            let i = self.pos[v as usize] as usize;
            self.sift_up(i, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] > act[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as i32;
        self.pos[self.heap[b] as usize] = b as i32;
    }
}

/// A CDCL SAT solver.
///
/// ```
/// use qxmap_sat::{SolveResult, Solver};
/// let mut s = Solver::new();
/// let a = s.new_lit();
/// let b = s.new_lit();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// match s.solve() {
///     SolveResult::Sat(model) => assert!(model.value(b)),
///     _ => unreachable!(),
/// }
/// // Incremental: the same instance under an assumption forcing ¬b.
/// assert_eq!(s.solve_with_assumptions(&[!b]), SolveResult::Unsat);
/// // ... which does not poison the solver.
/// assert!(s.solve().is_sat());
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    num_vars: u32,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    saved_phase: Vec<bool>,
    cla_inc: f64,
    ok: bool,
    seen: Vec<bool>,
    stats: SolverStats,
    num_learnts: usize,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    shared_conflict_pool: Option<Arc<AtomicU64>>,
    interrupt: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    last_stop: Option<StopCause>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            max_learnts: 3000.0,
            ..Solver::default()
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.order.push(v.0, &self.activity);
        v
    }

    /// Creates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        self.new_var().positive()
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of problem (non-learnt, non-deleted) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnts = self.num_learnts;
        s
    }

    /// Caps the number of conflicts per [`Solver::solve`] call; `None`
    /// removes the cap. When exhausted, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Attaches a conflict pool shared with other solvers (typically one
    /// per worker thread): every conflict consumes one unit, and a solver
    /// that finds the pool empty returns [`SolveResult::Unknown`]. Unlike
    /// [`Solver::set_conflict_budget`] this makes a *total* budget strict
    /// across concurrent searches.
    pub fn set_shared_conflict_pool(&mut self, pool: Option<Arc<AtomicU64>>) {
        self.shared_conflict_pool = pool;
    }

    /// Attaches a cooperative interrupt flag. Once another thread stores
    /// `true`, the next conflict (or the next `solve` entry) returns
    /// [`SolveResult::Unknown`]. The flag is never cleared by the solver.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Sets a wall-clock deadline; a search past it returns
    /// [`SolveResult::Unknown`] at the next conflict.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Whether an attached interrupt flag, an expired deadline, or an
    /// exhausted shared conflict pool asks work on this solver to stop.
    /// This is the same check `solve` performs at every conflict, exposed
    /// so that *encoding* work against this solver (e.g.
    /// [`crate::totalizer::Totalizer::encode_interruptible`]) can wind
    /// down under the same budgets as the search itself.
    pub fn stop_requested(&self) -> bool {
        self.interrupted()
    }

    /// Why the most recent `solve` call returned
    /// [`SolveResult::Unknown`], or `None` if it produced a verdict (or
    /// no call ran yet). Refreshed at every `solve` entry.
    pub fn last_stop_cause(&self) -> Option<StopCause> {
        self.last_stop
    }

    /// Whether an attached interrupt flag, deadline, or exhausted shared
    /// pool asks this search to stop (does not consume from the pool).
    fn interrupted(&self) -> bool {
        self.stop_cause_now().is_some()
    }

    /// Which stop condition currently holds, if any — the interrupt flag
    /// is reported over the deadline over the shared pool, matching how
    /// promptly each acts on the search.
    fn stop_cause_now(&self) -> Option<StopCause> {
        if self
            .interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
        {
            return Some(StopCause::Interrupt);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopCause::Deadline);
        }
        if self
            .shared_conflict_pool
            .as_ref()
            .is_some_and(|p| p.load(Ordering::Relaxed) == 0)
        {
            return Some(StopCause::ConflictBudget);
        }
        None
    }

    /// Consumes one conflict from the shared pool; `false` if the pool is
    /// already empty.
    fn consume_shared_conflict(&self) -> bool {
        match &self.shared_conflict_pool {
            None => true,
            Some(pool) => pool
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_ok(),
        }
    }

    /// Adds a clause (an iterator of literals).
    ///
    /// Returns `false` if the solver is already in an unsatisfiable state
    /// at the root level (adding to it is then a no-op).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was never created.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at root");
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().0 < self.num_vars, "unknown variable {}", l.var());
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology or satisfied-at-root?
        let mut write = 0;
        for i in 0..lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: l and ¬l adjacent after sort
            }
            match self.lit_value(l) {
                Some(true) => return true,
                Some(false) => {}
                None => {
                    lits[write] = l;
                    write += 1;
                }
            }
        }
        lits.truncate(write);
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        self.watches[(!lits[0]).code()].push(Watcher {
            clause: idx,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            clause: idx,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.num_learnts += 1;
        }
        idx
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|v| v == l.is_positive())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), None);
        let v = l.var().index();
        self.assign[v] = Some(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                i += 1;
                // Fast path: blocker already true.
                if self.lit_value(w.blocker) == Some(true) {
                    watchers[kept] = w;
                    kept += 1;
                    continue;
                }
                let ci = w.clause as usize;
                if self.clauses[ci].deleted {
                    continue; // drop watcher
                }
                // Normalize: the false literal (== !p) at position 1.
                if self.clauses[ci].lits[0] == !p {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], !p);
                let first = self.clauses[ci].lits[0];
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    watchers[kept] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[(!new_watch).code()].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Unit or conflict.
                watchers[kept] = Watcher {
                    clause: w.clause,
                    blocker: first,
                };
                kept += 1;
                if self.lit_value(first) == Some(false) {
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    // Keep the remaining watchers.
                    while i < watchers.len() {
                        watchers[kept] = watchers[i];
                        kept += 1;
                        i += 1;
                    }
                    break;
                }
                self.unchecked_enqueue(first, Some(w.clause));
            }
            watchers.truncate(kept);
            self.watches[p.code()] = watchers;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v as u32, &self.activity);
    }

    fn bump_clause(&mut self, ci: usize) {
        let c = &mut self.clauses[ci];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<usize> = Vec::new();

        loop {
            self.bump_clause(confl as usize);
            let lits = self.clauses[confl as usize].lits.clone();
            let skip_first = p.is_some();
            for (pos, &q) in lits.iter().enumerate() {
                if skip_first && pos == 0 {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal on the trail that is marked.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            self.seen[pl.var().index()] = false;
            confl = self.reason[pl.var().index()].expect("non-decision has a reason");
        }

        // Local clause minimization: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        'lits: for &q in &learnt[1..] {
            let v = q.var().index();
            match self.reason[v] {
                None => minimized.push(q), // decision: keep
                Some(r) => {
                    for &x in &self.clauses[r as usize].lits {
                        let xv = x.var().index();
                        if xv != v && !self.seen[xv] && self.level[xv] > 0 {
                            minimized.push(q);
                            continue 'lits;
                        }
                    }
                    // all antecedents already in the clause (or level 0): drop
                }
            }
        }
        let mut learnt = minimized;

        // Backjump level: second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        for v in to_clear {
            self.seen[v] = false;
        }
        (learnt, bt)
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.saved_phase[v] = l.is_positive();
            self.assign[v] = None;
            self.reason[v] = None;
            self.order.push(v as u32, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v as usize].is_none() {
                return Some(Var(v));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Collect learnt clause indices sorted by activity ascending.
        let mut learnts: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && c.lits.len() > 2 && !self.is_locked(i)
            })
            .collect();
        learnts.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .expect("activities are finite")
        });
        for &i in learnts.iter().take(learnts.len() / 2) {
            self.clauses[i].deleted = true;
            self.num_learnts -= 1;
        }
    }

    fn is_locked(&self, ci: usize) -> bool {
        let first = self.clauses[ci].lits[0];
        self.lit_value(first) == Some(true) && self.reason[first.var().index()] == Some(ci as u32)
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumptions: the formula is checked for
    /// satisfiability with every assumption literal forced true. The
    /// clause database (including learnt clauses) persists across calls.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.last_stop = None;
        if !self.ok {
            return SolveResult::Unsat;
        }
        if let Some(cause) = self.stop_cause_now() {
            self.last_stop = Some(cause);
            return SolveResult::Unknown;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let budget_start = self.stats.conflicts;
        let mut restart_idx = 0u64;
        let mut conflicts_until_restart = luby(restart_idx) * RESTART_BASE;
        let mut conflicts_this_restart = 0u64;

        let result = loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack_to(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.unchecked_enqueue(asserting, None);
                } else {
                    let ci = self.attach_clause(learnt, true);
                    self.unchecked_enqueue(asserting, Some(ci));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLAUSE_DECAY;
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        self.last_stop = Some(StopCause::ConflictBudget);
                        break SolveResult::Unknown;
                    }
                }
                if !self.consume_shared_conflict() {
                    self.last_stop = Some(StopCause::ConflictBudget);
                    break SolveResult::Unknown;
                }
                if let Some(cause) = self.stop_cause_now() {
                    self.last_stop = Some(cause);
                    break SolveResult::Unknown;
                }
                if self.num_learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.5;
                }
            } else {
                if conflicts_this_restart >= conflicts_until_restart
                    && self.decision_level() > assumptions.len() as u32
                {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_until_restart = luby(restart_idx) * RESTART_BASE;
                    conflicts_this_restart = 0;
                    self.backtrack_to(assumptions.len() as u32);
                }
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    // Establish the next assumption as a pseudo-decision.
                    let p = assumptions[dl];
                    assert!(p.var().0 < self.num_vars, "unknown assumption variable");
                    match self.lit_value(p) {
                        Some(true) => {
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            break SolveResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                } else if let Some(v) = self.pick_branch_var() {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let phase = self.saved_phase[v.index()];
                    let lit = if phase { v.positive() } else { v.negative() };
                    self.unchecked_enqueue(lit, None);
                } else {
                    // All variables assigned: SAT.
                    let values = self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                    break SolveResult::Sat(Model { values });
                }
            }
        };
        self.backtrack_to(0);
        result
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, … (0-based index).
fn luby(i: u64) -> u64 {
    let mut x = i + 1; // 1-based position
    loop {
        let bits = 64 - u64::leading_zeros(x) as u64; // 2^(bits-1) ≤ x < 2^bits
        if x == (1u64 << bits) - 1 {
            return 1u64 << (bits - 1);
        }
        x = x - (1u64 << (bits - 1)) + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_lit()).collect()
    }

    #[test]
    fn stop_cause_names_the_budget() {
        let mut s = pigeonhole(8);
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop_cause(), Some(StopCause::ConflictBudget));
        // Lifting the budget clears the cause along with the verdict.
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.last_stop_cause(), None);
    }

    #[test]
    fn stop_cause_names_the_interrupt_and_deadline() {
        let mut s = Solver::new();
        let a = s.new_lit();
        s.add_clause([a]);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop_cause(), Some(StopCause::Interrupt));
        assert_eq!(s.last_stop_cause().unwrap().label(), "interrupt");
        flag.store(false, Ordering::Relaxed);
        s.set_deadline(Some(Instant::now()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop_cause(), Some(StopCause::Deadline));
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit() {
        let mut s = Solver::new();
        let a = s.new_lit();
        s.add_clause([a]);
        let m = match s.solve() {
            SolveResult::Sat(m) => m,
            other => panic!("expected sat, got {other:?}"),
        };
        assert!(m.value(a));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let a = s.new_lit();
        s.add_clause([a]);
        assert!(!s.add_clause([!a]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let v = lits(&mut s, 10);
        s.add_clause([v[0]]);
        for w in v.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        let m = s.solve().model().cloned().expect("sat");
        for l in v {
            assert!(m.value(l));
        }
    }

    #[test]
    fn example4_of_paper() {
        // Φ = (x1 + x2 + ¬x3)(¬x1 + x3)(¬x2 + x3): satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], !v[2]]);
        s.add_clause([!v[0], v[2]]);
        s.add_clause([!v[1], v[2]]);
        let m = s.solve().model().cloned().expect("sat");
        // Verify the model satisfies the formula.
        assert!(m.value(v[0]) || m.value(v[1]) || !m.value(v[2]));
        assert!(!m.value(v[0]) || m.value(v[2]));
        assert!(!m.value(v[1]) || m.value(v[2]));
    }

    /// Pigeonhole principle PHP(h+1, h): unsatisfiable, requires real search.
    fn pigeonhole(holes: usize) -> Solver {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let var: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_lit()).collect())
            .collect();
        for row in &var {
            s.add_clause(row.clone());
        }
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                for (&a, &b) in var[p1].iter().zip(&var[p2]) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=5 {
            let mut s = pigeonhole(holes);
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({holes})");
            assert!(s.stats().conflicts > 0);
        }
    }

    #[test]
    fn assumptions_do_not_poison_solver() {
        let mut s = Solver::new();
        let a = s.new_lit();
        let b = s.new_lit();
        s.add_clause([a, b]);
        assert_eq!(s.solve_with_assumptions(&[!a, !b]), SolveResult::Unsat);
        let m = s.solve_with_assumptions(&[!a]).model().cloned().unwrap();
        assert!(m.value(b));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumption_of_fixed_lit() {
        let mut s = Solver::new();
        let a = s.new_lit();
        s.add_clause([a]);
        assert!(s.solve_with_assumptions(&[a]).is_sat());
        assert_eq!(s.solve_with_assumptions(&[!a]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        let mut s = pigeonhole(7);
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn shared_pool_is_a_strict_total_budget() {
        let pool = Arc::new(AtomicU64::new(5));
        let mut a = pigeonhole(7);
        let mut b = pigeonhole(7);
        a.set_shared_conflict_pool(Some(pool.clone()));
        b.set_shared_conflict_pool(Some(pool.clone()));
        assert_eq!(a.solve(), SolveResult::Unknown);
        // The first solver drained the pool; the second cannot even start.
        assert_eq!(pool.load(Ordering::Relaxed), 0);
        assert_eq!(b.solve(), SolveResult::Unknown);
        // Detaching the pool restores unbounded search.
        b.set_shared_conflict_pool(None);
        assert_eq!(b.solve(), SolveResult::Unsat);
    }

    #[test]
    fn interrupt_flag_stops_before_and_during_search() {
        let flag = Arc::new(AtomicBool::new(true));
        let mut s = pigeonhole(7);
        s.set_interrupt(Some(flag.clone()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn expired_deadline_returns_unknown() {
        let mut s = pigeonhole(7);
        s.set_deadline(Some(Instant::now()));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_deadline(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_and_duplicates_are_handled() {
        let mut s = Solver::new();
        let a = s.new_lit();
        let b = s.new_lit();
        s.add_clause([a, !a, b]); // tautology: ignored
        s.add_clause([b, b, b]); // collapses to unit
        let m = s.solve().model().cloned().unwrap();
        assert!(m.value(b));
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = pigeonhole(4);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.propagations > 0);
        assert!(st.to_string().contains("conflicts"));
    }

    #[test]
    fn many_vars_stress_random_3sat_sat_instances() {
        // Deterministic LCG-generated planted-solution instances.
        let mut seed = 0xdeadbeefu64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..10 {
            let n = 40;
            let mut s = Solver::new();
            let vars: Vec<Lit> = (0..n).map(|_| s.new_lit()).collect();
            let planted: Vec<bool> = (0..n).map(|_| rnd() % 2 == 0).collect();
            for _ in 0..160 {
                // Build a clause satisfied by the planted assignment.
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = rnd() % n;
                    let pol = rnd() % 2 == 0;
                    clause.push(if pol { vars[v] } else { !vars[v] });
                }
                let sat_by_planted = clause
                    .iter()
                    .any(|l| planted[l.var().index()] == l.is_positive());
                if !sat_by_planted {
                    // Flip one literal to satisfy it.
                    let l = clause[0];
                    clause[0] = if planted[l.var().index()] {
                        l.var().positive()
                    } else {
                        l.var().negative()
                    };
                }
                s.add_clause(clause);
            }
            let m = s.solve().model().cloned().expect("planted instance is sat");
            assert_eq!(m.len(), n);
        }
    }
}
