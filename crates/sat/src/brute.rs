//! Exhaustive reference solver for validating the CDCL engine.
//!
//! Enumerates all `2ⁿ` assignments; usable up to roughly 25 variables.
//! The property-based tests cross-check [`crate::Solver`] against this
//! oracle on random formulas.

use crate::lit::Lit;

/// Whether `clauses` (over variables `0..num_vars`) is satisfiable, by
/// exhaustive enumeration.
///
/// # Panics
///
/// Panics if `num_vars > 25` (the search would not terminate in reasonable
/// time).
pub fn is_satisfiable(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    first_model(num_vars, clauses).is_some()
}

/// The lexicographically first satisfying assignment, if any.
///
/// # Panics
///
/// Panics if `num_vars > 25`.
pub fn first_model(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    assert!(num_vars <= 25, "brute force limited to 25 variables");
    'outer: for mask in 0u64..(1u64 << num_vars) {
        for clause in clauses {
            let sat = clause.iter().any(|l| {
                let val = mask & (1 << l.var().index()) != 0;
                val == l.is_positive()
            });
            if !sat {
                continue 'outer;
            }
        }
        return Some((0..num_vars).map(|i| mask & (1 << i) != 0).collect());
    }
    None
}

/// The minimal value of `Σ wᵢ·ℓᵢ` over all satisfying assignments, or
/// `None` if unsatisfiable.
///
/// # Panics
///
/// Panics if `num_vars > 25`.
pub fn minimum_cost(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    objective: &[(u64, Lit)],
) -> Option<u64> {
    assert!(num_vars <= 25, "brute force limited to 25 variables");
    let mut best: Option<u64> = None;
    'outer: for mask in 0u64..(1u64 << num_vars) {
        for clause in clauses {
            let sat = clause.iter().any(|l| {
                let val = mask & (1 << l.var().index()) != 0;
                val == l.is_positive()
            });
            if !sat {
                continue 'outer;
            }
        }
        let cost: u64 = objective
            .iter()
            .filter(|(_, l)| (mask & (1 << l.var().index()) != 0) == l.is_positive())
            .map(|(w, _)| *w)
            .sum();
        best = Some(best.map_or(cost, |b| b.min(cost)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn l(v: i64) -> Lit {
        Lit::from_dimacs(v)
    }

    #[test]
    fn simple_sat_and_unsat() {
        assert!(is_satisfiable(2, &[vec![l(1), l(2)]]));
        assert!(!is_satisfiable(1, &[vec![l(1)], vec![l(-1)]]));
        assert!(is_satisfiable(0, &[]));
        assert!(!is_satisfiable(0, &[vec![]]));
    }

    #[test]
    fn first_model_is_lexicographic() {
        // x1 ∨ x2: first model (counting masks upward) is x1=true, x2=false.
        let m = first_model(2, &[vec![l(1), l(2)]]).unwrap();
        assert_eq!(m, vec![true, false]);
    }

    #[test]
    fn minimum_cost_basic() {
        let clauses = vec![vec![l(1), l(2)]];
        let obj = vec![
            (7, Var::from_index(0).positive()),
            (4, Var::from_index(1).positive()),
        ];
        assert_eq!(minimum_cost(2, &clauses, &obj), Some(4));
        assert_eq!(minimum_cost(1, &[vec![l(1)], vec![l(-1)]], &[]), None);
    }
}
