//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, indexed from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's 0-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a variable from its 0-based index.
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index fits in u32"))
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
///
/// ```
/// use qxmap_sat::{Lit, Var};
/// let v = Var::from_index(3);
/// let l = v.positive();
/// assert_eq!(!l, v.negative());
/// assert_eq!((!l).var(), v);
/// assert!(l.is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code (`2·var` for positive, `2·var+1` for negative), used to
    /// index watch lists.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub fn from_code(code: usize) -> Lit {
        Lit(u32::try_from(code).expect("literal code fits in u32"))
    }

    /// Converts from DIMACS convention (non-zero, 1-based, sign = polarity).
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn from_dimacs(value: i64) -> Lit {
        assert_ne!(value, 0, "DIMACS literals are non-zero");
        let var = Var((value.unsigned_abs() - 1) as u32);
        if value > 0 {
            var.positive()
        } else {
            var.negative()
        }
    }

    /// Converts to DIMACS convention.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let l = Var::from_index(7).positive();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn codes_are_dense() {
        let v = Var::from_index(2);
        assert_eq!(v.positive().code(), 4);
        assert_eq!(v.negative().code(), 5);
        assert_eq!(Lit::from_code(5), v.negative());
    }

    #[test]
    fn dimacs_roundtrip() {
        for value in [1i64, -1, 5, -17] {
            assert_eq!(Lit::from_dimacs(value).to_dimacs(), value);
        }
        assert_eq!(Lit::from_dimacs(1), Var::from_index(0).positive());
        assert_eq!(Lit::from_dimacs(-3), Var::from_index(2).negative());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(0);
        assert_eq!(v.positive().to_string(), "x1");
        assert_eq!(v.negative().to_string(), "¬x1");
    }
}
