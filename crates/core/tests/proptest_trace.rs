//! Property-based tests for the tracing substrate: however phases and
//! sub-phases are laid out, a finished [`SolveTrace`] is sorted, its
//! siblings never overlap, and no span outlives the trace itself.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use qxmap_core::trace::SpanRecorder;

/// One synthetic top-level phase: idle gap before it, how long it ran,
/// and how many sequential children subdivide it.
fn phase_strategy() -> impl Strategy<Value = (u64, u64, usize)> {
    (0u64..500, 1u64..1_000, 0usize..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequentially laid-out phases come back sorted by start, siblings
    /// at every level stay non-overlapping, and every span (and the
    /// top-level sum) fits inside the trace's own elapsed time.
    #[test]
    fn trace_invariants_hold(phases in prop::collection::vec(phase_strategy(), 1..12)) {
        let total_us: u64 = phases.iter().map(|&(gap, duration, _)| gap + duration).sum();
        // Synthetic spans must lie in the past: `finish()` measures
        // elapsed wall-clock time from the origin, so an origin pushed
        // back past the layout's total keeps every span inside it.
        let origin = Instant::now()
            .checked_sub(Duration::from_micros(total_us + 10))
            .expect("the machine has been up longer than a few milliseconds");
        let trace = SpanRecorder::with_origin(origin);

        let mut cursor = 0u64;
        for (i, &(gap, duration, children)) in phases.iter().enumerate() {
            cursor += gap;
            let phase = format!("phase{i}");
            trace.record(
                &phase,
                origin + Duration::from_micros(cursor),
                Duration::from_micros(duration),
            );
            if children > 0 {
                // Children partition the phase into equal back-to-back
                // slices (a trailing remainder stays unattributed).
                let slice = duration / children as u64;
                for j in 0..children {
                    if slice == 0 {
                        break;
                    }
                    trace.record(
                        &format!("{phase}/step{j}"),
                        origin + Duration::from_micros(cursor + j as u64 * slice),
                        Duration::from_micros(slice),
                    );
                }
            }
            cursor += duration;
        }

        let solve = trace.finish().expect("an enabled recorder yields a trace");

        // Sorted by (start, path).
        for pair in solve.spans.windows(2) {
            let key = |s: &qxmap_core::trace::TraceSpan| (s.start_us, s.path.clone());
            prop_assert!(key(&pair[0]) <= key(&pair[1]), "unsorted: {pair:?}");
        }

        // Nothing outlives the trace.
        for span in &solve.spans {
            prop_assert!(
                span.end_us() <= solve.elapsed_us,
                "{} ends at {}us, past elapsed {}us",
                span.path, span.end_us(), solve.elapsed_us
            );
        }
        prop_assert!(solve.top_level_total_us() <= solve.elapsed_us);

        // Siblings never overlap: top level, then under each phase.
        let mut parents: Vec<Option<String>> = vec![None];
        parents.extend((0..phases.len()).map(|i| Some(format!("phase{i}"))));
        for parent in parents {
            let siblings = solve.children(parent.as_deref());
            for pair in siblings.windows(2) {
                prop_assert!(
                    pair[0].end_us() <= pair[1].start_us,
                    "overlap under {parent:?}: {pair:?}"
                );
            }
        }

        // Every phase and every recorded child is present exactly once.
        prop_assert_eq!(solve.children(None).len(), phases.len());
        for (i, &(_, duration, children)) in phases.iter().enumerate() {
            let expected = if children > 0 && duration / children as u64 > 0 {
                children
            } else {
                0
            };
            prop_assert_eq!(
                solve.children(Some(&format!("phase{i}"))).len(),
                expected
            );
        }
    }
}
