//! Pins the disabled-recorder fast path: a [`SpanRecorder::disabled`]
//! span is a pointer check — no allocation, no clock read — so the
//! untraced warm serving path pays (close to) nothing for the
//! instrumentation being compiled in.

use std::time::Instant;

use qxmap_core::trace::SpanRecorder;

const ITERS: u32 = 100_000;
const RUNS: usize = 5;

/// Nanoseconds per span+event pair, minimum over [`RUNS`] runs (the
/// minimum filters scheduler noise better than the mean). A fresh
/// recorder per run keeps the enabled timeline's memory bounded.
fn ns_per_op(make: impl Fn() -> SpanRecorder) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..RUNS {
        let trace = make();
        let started = Instant::now();
        for i in 0..ITERS {
            let span = trace.span("bench/section");
            trace.event("bench/section", "tick", u64::from(i));
            span.end();
        }
        best = best.min(started.elapsed().as_nanos() as u64 / u64::from(ITERS));
    }
    best
}

#[test]
fn disabled_recorder_costs_nothing_measurable() {
    let disabled = ns_per_op(SpanRecorder::disabled);
    let enabled = ns_per_op(SpanRecorder::new);
    // The enabled path allocates a path string and reads the clock;
    // the disabled path must be well under it, and cheap in absolute
    // terms (bounds are generous: the real gap is orders of magnitude).
    assert!(
        disabled * 2 <= enabled.max(1),
        "disabled span ({disabled}ns/op) is not clearly cheaper than enabled ({enabled}ns/op)"
    );
    assert!(
        disabled < 1_000,
        "disabled span costs {disabled}ns/op — the no-op path regressed"
    );
}

#[test]
fn disabled_recorder_yields_no_trace() {
    let trace = SpanRecorder::disabled();
    let span = trace.span("anything");
    span.end();
    trace.event("anything", "n", 1);
    assert!(!trace.is_enabled());
    assert!(trace.origin().is_none());
    assert!(trace.finish().is_none());
}
