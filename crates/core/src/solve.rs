//! The end-to-end exact mapper.

use std::collections::BTreeMap;
use std::time::Instant;

use qxmap_arch::{connected_subsets, CouplingMap, Layout, SwapTable};
use qxmap_circuit::Circuit;
use qxmap_sat::{minimize, MinimizeError, MinimizeOptions};

use crate::config::{MapError, MapperConfig};
use crate::encoding::Encoding;
use crate::solution::{assemble, MappingResult};

/// Largest (sub)device the exhaustive permutation enumeration supports.
/// Facades (e.g. `qxmap-map`'s portfolio engine) use this to decide when
/// exact mapping is in regime and when to fall back to heuristics.
pub const MAX_EXACT_QUBITS: usize = 8;

/// Maps circuits to a device with the minimal number of SWAP and H
/// operations (or close-to-minimal under the Section 4 performance
/// options).
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::Circuit;
/// use qxmap_core::{ExactMapper, MapperConfig, Strategy};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// let mapper = ExactMapper::with_config(
///     devices::ibm_qx4(),
///     MapperConfig::minimal().with_subsets(true),
/// );
/// let result = mapper.map(&c)?;
/// assert_eq!(result.cost, 0); // both CNOTs fit the coupling directly
/// # Ok::<(), qxmap_core::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExactMapper {
    cm: CouplingMap,
    config: MapperConfig,
}

impl ExactMapper {
    /// A mapper for `cm` with the guaranteed-minimal default
    /// configuration.
    pub fn new(cm: CouplingMap) -> ExactMapper {
        ExactMapper {
            cm,
            config: MapperConfig::minimal(),
        }
    }

    /// A mapper with an explicit configuration.
    pub fn with_config(cm: CouplingMap, config: MapperConfig) -> ExactMapper {
        ExactMapper { cm, config }
    }

    /// The device being mapped to.
    pub fn coupling_map(&self) -> &CouplingMap {
        &self.cm
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Builds (without solving) the SAT instance for `circuit` on the full
    /// device and reports its size — the paper's search-space discussion
    /// (Examples 5 and 8) made measurable. Subset restriction is ignored
    /// here; per-subset instances are strictly smaller.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExactMapper::map`], except that infeasibility
    /// cannot be detected without solving.
    pub fn encoding_stats(
        &self,
        circuit: &Circuit,
    ) -> Result<crate::encoding::EncodingStats, MapError> {
        let n = circuit.num_qubits();
        let m = self.cm.num_qubits();
        if n > m {
            return Err(MapError::TooManyQubits {
                logical: n,
                physical: m,
            });
        }
        if m > MAX_EXACT_QUBITS {
            return Err(MapError::DeviceTooLarge {
                qubits: m,
                max: MAX_EXACT_QUBITS,
            });
        }
        let circuit = circuit.decompose_swaps();
        let skeleton = circuit.cnot_skeleton();
        if skeleton.is_empty() {
            return Ok(crate::encoding::EncodingStats {
                variables: 0,
                clauses: 0,
                mapping_variables: 0,
                change_points: 0,
                permutations: 0,
                objective_terms: 0,
            });
        }
        let table = SwapTable::new(&self.cm);
        let change_points = self.config.strategy.change_points(&skeleton);
        let enc = Encoding::build(
            &skeleton,
            n,
            &self.cm,
            &table,
            &change_points,
            self.config.cost_model,
        );
        Ok(enc.stats())
    }

    /// Maps `circuit`, returning the minimal (or close-to-minimal, per the
    /// configuration) realization.
    ///
    /// Input SWAP gates are decomposed into CNOTs first; barriers and
    /// measurements are carried through.
    ///
    /// # Errors
    ///
    /// * [`MapError::TooManyQubits`] if `n > m`;
    /// * [`MapError::DeviceTooLarge`] if the (sub)instance would need
    ///   permutations of more than 8 qubits;
    /// * [`MapError::Infeasible`] if no valid mapping exists under the
    ///   configured restrictions;
    /// * [`MapError::BudgetExhausted`] if a conflict budget ran out before
    ///   any mapping was found.
    pub fn map(&self, circuit: &Circuit) -> Result<MappingResult, MapError> {
        let start = Instant::now();
        let n = circuit.num_qubits();
        let m = self.cm.num_qubits();
        if n > m {
            return Err(MapError::TooManyQubits {
                logical: n,
                physical: m,
            });
        }
        let circuit = circuit.decompose_swaps();
        let skeleton = circuit.cnot_skeleton();

        if skeleton.is_empty() {
            // The trivial mapping costs 0; only a demand for strictly
            // below 0 can rule it out.
            if self.config.minimize.initial_upper_bound == Some(0) {
                return Err(MapError::Infeasible);
            }
            return Ok(self.trivial(&circuit, start));
        }

        // Section 4.1: subsets of physical qubits.
        let subsets: Vec<Vec<usize>> = if self.config.use_subsets && n < m {
            connected_subsets(&self.cm, n)
        } else {
            vec![(0..m).collect()]
        };
        if subsets.is_empty() {
            return Err(MapError::Infeasible);
        }
        if let Some(too_big) = subsets.iter().find(|s| s.len() > MAX_EXACT_QUBITS) {
            return Err(MapError::DeviceTooLarge {
                qubits: too_big.len(),
                max: MAX_EXACT_QUBITS,
            });
        }

        let change_points = self.config.strategy.change_points(&skeleton);

        let mut best: Option<MappingResult> = None;
        let mut saw_budget_exhaustion = false;
        let mut all_proved = true;
        // The configured conflict budget is a *total*, shared across the
        // per-subset subinstances; the best cost found so far tightens the
        // upper bound for every later subinstance, so subsets that cannot
        // improve are refuted instead of re-optimized.
        let mut remaining_budget = self.config.minimize.conflict_budget;
        let mut current_ub = self.config.minimize.initial_upper_bound;
        for subset in &subsets {
            if remaining_budget == Some(0) {
                saw_budget_exhaustion = true;
                all_proved = false;
                continue;
            }
            let local = self.cm.subgraph(subset);
            let table = SwapTable::for_subset(&self.cm, subset);
            let mut enc = Encoding::build(
                &skeleton,
                n,
                &local,
                &table,
                &change_points,
                self.config.cost_model,
            );
            let objective = enc.objective.clone();
            let options = MinimizeOptions {
                conflict_budget: remaining_budget,
                initial_upper_bound: current_ub,
                ..self.config.minimize
            };
            let outcome = minimize(&mut enc.solver, &objective, options);
            if let Some(rem) = remaining_budget.as_mut() {
                // Each subset gets a fresh solver, so its total conflict
                // count is exactly what this minimization spent.
                *rem = rem.saturating_sub(enc.solver.stats().conflicts);
            }
            let minimum = match outcome {
                Ok(min) => min,
                Err(MinimizeError::Unsatisfiable) => continue,
                Err(MinimizeError::BudgetExhausted) => {
                    saw_budget_exhaustion = true;
                    all_proved = false;
                    continue;
                }
            };
            all_proved &= minimum.proved_optimal;

            let layouts = enc.extract_layouts(&minimum.model);
            let perms: BTreeMap<usize, _> = enc
                .extract_permutations(&minimum.model)
                .into_iter()
                .collect();
            let (mapped, initial_layout, final_layout, swaps, reversals, placements) =
                assemble(&circuit, &self.cm, subset, &layouts, &perms, &table);
            let added = (mapped.original_cost() - circuit.original_cost()) as u64;
            let candidate = MappingResult {
                cost: minimum.cost,
                added_gates: added,
                swaps,
                reversals,
                mapped,
                initial_layout,
                final_layout,
                subset: subset.clone(),
                num_change_points: change_points.len(),
                placements,
                proved_optimal: minimum.proved_optimal,
                iterations: minimum.iterations,
                runtime: start.elapsed(),
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.cost < b.cost,
            };
            if better {
                let zero = candidate.cost == 0;
                current_ub = Some(candidate.cost);
                best = Some(candidate);
                if zero {
                    break; // cannot improve on 0
                }
            }
        }

        match best {
            Some(mut result) => {
                // Optimal overall only if every subinstance was decided.
                result.proved_optimal &= all_proved || result.cost == 0;
                result.runtime = start.elapsed();
                Ok(result)
            }
            None if saw_budget_exhaustion => Err(MapError::BudgetExhausted),
            None => Err(MapError::Infeasible),
        }
    }

    /// A circuit with no CNOTs maps 1:1 onto the first `n` physical qubits.
    fn trivial(&self, circuit: &Circuit, start: Instant) -> MappingResult {
        let n = circuit.num_qubits();
        let m = self.cm.num_qubits();
        let layout = Layout::identity(n, m);
        let mapped = circuit.map_qubits(m, |q| q);
        MappingResult {
            cost: 0,
            added_gates: 0,
            swaps: 0,
            reversals: 0,
            mapped,
            initial_layout: layout.clone(),
            final_layout: layout,
            subset: (0..m).collect(),
            num_change_points: 0,
            placements: Vec::new(),
            proved_optimal: true,
            iterations: 0,
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::verify;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn paper_example_is_four() {
        let mapper = ExactMapper::new(devices::ibm_qx4());
        let r = mapper.map(&paper_example()).unwrap();
        assert_eq!(r.cost, 4);
        assert_eq!(r.added_gates, 4);
        assert_eq!(r.swaps, 0);
        assert_eq!(r.reversals, 1);
        assert!(r.proved_optimal);
        assert_eq!(r.mapped_cost(), 12); // 8 original + 4 H
        verify::check_coupling(&r.mapped, mapper.coupling_map()).unwrap();
    }

    #[test]
    fn paper_example_with_subsets_matches_minimum() {
        let mapper = ExactMapper::with_config(
            devices::ibm_qx4(),
            MapperConfig::minimal().with_subsets(true),
        );
        let r = mapper.map(&paper_example()).unwrap();
        assert_eq!(r.cost, 4);
        assert_eq!(r.subset.len(), 4);
        assert!(r.subset.contains(&2), "connected 4-subsets contain the hub");
    }

    #[test]
    fn strategies_are_no_better_than_minimal() {
        let circuit = paper_example();
        let minimal = ExactMapper::new(devices::ibm_qx4())
            .map(&circuit)
            .unwrap()
            .cost;
        for strategy in [
            Strategy::DisjointQubits,
            Strategy::OddGates,
            Strategy::QubitTriangle,
        ] {
            let r = ExactMapper::with_config(
                devices::ibm_qx4(),
                MapperConfig::minimal().with_strategy(strategy.clone()),
            )
            .map(&circuit)
            .unwrap();
            assert!(r.cost >= minimal, "{strategy:?} beat the proven minimum?!");
            verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
        }
    }

    #[test]
    fn example10_strategies_stay_minimal_here() {
        // The paper notes all three strategies still reach F = 4 on the
        // running example.
        let circuit = paper_example();
        for strategy in [
            Strategy::DisjointQubits,
            Strategy::OddGates,
            Strategy::QubitTriangle,
        ] {
            let r = ExactMapper::with_config(
                devices::ibm_qx4(),
                MapperConfig::minimal().with_strategy(strategy),
            )
            .map(&circuit)
            .unwrap();
            assert_eq!(r.cost, 4);
        }
    }

    #[test]
    fn window_strategy_end_to_end() {
        let circuit = paper_example();
        let minimal = ExactMapper::new(devices::ibm_qx4())
            .map(&circuit)
            .unwrap()
            .cost;
        for k in [1usize, 2, 3] {
            let r = ExactMapper::with_config(
                devices::ibm_qx4(),
                MapperConfig::minimal().with_strategy(Strategy::Window(k)),
            )
            .map(&circuit)
            .unwrap();
            assert!(r.cost >= minimal, "Window({k}) beat the minimum");
            verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
        }
        // Window(1) is the unrestricted method: exactly minimal.
        let r = ExactMapper::with_config(
            devices::ibm_qx4(),
            MapperConfig::minimal().with_strategy(Strategy::Window(1)),
        )
        .map(&circuit)
        .unwrap();
        assert_eq!(r.cost, minimal);
    }

    #[test]
    fn placements_describe_every_skeleton_gate() {
        let circuit = paper_example();
        let cm = devices::ibm_qx4();
        let r = ExactMapper::new(cm.clone()).map(&circuit).unwrap();
        let skeleton = circuit.cnot_skeleton();
        assert_eq!(r.placements.len(), skeleton.len());
        for (k, p) in r.placements.iter().enumerate() {
            assert_eq!(p.gate, k);
            assert_eq!((p.control, p.target), skeleton[k]);
            // The physical pair is a legal edge in the executed direction.
            if p.reversed {
                assert!(cm.has_edge(p.phys_target, p.phys_control));
            } else {
                assert!(cm.has_edge(p.phys_control, p.phys_target));
            }
        }
        assert_eq!(
            r.placements.iter().filter(|p| p.reversed).count() as u32,
            r.reversals
        );
    }

    #[test]
    fn encoding_stats_match_example5() {
        // Example 5: the running example has n·m·|G| = 4·5·5 = 100 mapping
        // variables on the full device.
        let mapper = ExactMapper::new(devices::ibm_qx4());
        let stats = mapper.encoding_stats(&paper_example()).unwrap();
        assert_eq!(stats.mapping_variables, 100);
        assert_eq!(stats.change_points, 4);
        assert_eq!(stats.permutations, 120);
        // Trivial circuits have empty instances.
        let mut trivial = Circuit::new(2);
        trivial.h(0);
        let stats = mapper.encoding_stats(&trivial).unwrap();
        assert_eq!(stats.variables, 0);
    }

    #[test]
    fn too_many_qubits() {
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let err = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap_err();
        assert!(matches!(
            err,
            MapError::TooManyQubits {
                logical: 6,
                physical: 5
            }
        ));
    }

    #[test]
    fn trivial_circuit_costs_zero() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).x(2);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        assert_eq!(r.cost, 0);
        assert_eq!(r.mapped_cost(), 3);
        assert!(r.proved_optimal);
    }

    #[test]
    fn input_swaps_are_decomposed() {
        let mut c = Circuit::new(2);
        c.swap_gate(0, 1);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        // Decomposed SWAP = CX(0,1) CX(1,0) CX(0,1); on QX4 one direction
        // must be repaired: minimal F = 4.
        assert_eq!(r.cost, 4);
        verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
    }

    #[test]
    fn device_too_large_without_subsets() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let err = ExactMapper::new(devices::ibm_qx5()).map(&c).unwrap_err();
        assert!(matches!(err, MapError::DeviceTooLarge { qubits: 16, .. }));
        // With subsets the same instance is fine (3-qubit subgraphs).
        let r = ExactMapper::with_config(
            devices::ibm_qx5(),
            MapperConfig::minimal().with_subsets(true),
        )
        .map(&c)
        .unwrap();
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn cost_equals_recount_on_qx4() {
        // added_gates must equal the modelled F on QX4 (7/4 cost model is
        // exact there).
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(0, 3);
        c.cx(1, 2);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        assert_eq!(r.cost, r.added_gates);
        assert_eq!(
            r.added_gates,
            7 * u64::from(r.swaps) + 4 * u64::from(r.reversals)
        );
    }

    #[test]
    fn final_layout_consistent_with_swap_count() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(0, 2);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        if r.swaps == 0 {
            assert_eq!(r.initial_layout, r.final_layout);
        }
        verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
    }
}
