//! The end-to-end exact mapper.
//!
//! The per-subset subinstances of Section 4.1 are independent
//! optimization problems, so [`ExactMapper::map`] distributes them over a
//! scoped worker pool. The workers cooperate through shared atomics:
//!
//! * the best achievable cost so far — the tighter of a call-local
//!   [`crate::SharedBound`] (this run's own candidates) and the bound of
//!   [`MapperConfig::control`], which an external racer tightens with
//!   costs whose results it holds (this run only reads it). Each
//!   subinstance starts strictly below the effective bound, so subsets
//!   that cannot improve are refuted instead of re-optimized, exactly
//!   like the sequential loop;
//! * the total conflict budget, drawn from one atomic pool so the
//!   configured total stays strict regardless of thread count;
//! * the wall-clock deadline and the cancel flag, checked at solver
//!   conflicts and between encoding phases.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use qxmap_arch::{connected_subsets, CouplingMap, DeviceModel, Layout};
use qxmap_circuit::Circuit;
use qxmap_sat::{minimize, MinimizeError, MinimizeOptions};

use crate::config::{MapError, MapperConfig};
use crate::encoding::Encoding;
use crate::solution::{assemble, MappingResult};

/// Largest (sub)device the exhaustive permutation enumeration supports.
/// Facades (e.g. `qxmap-map`'s portfolio engine) use this to decide when
/// exact mapping is in regime and when to fall back to heuristics.
pub const MAX_EXACT_QUBITS: usize = 8;

/// Maps circuits to a device with the minimal number of SWAP and H
/// operations (or close-to-minimal under the Section 4 performance
/// options).
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::Circuit;
/// use qxmap_core::{ExactMapper, MapperConfig, Strategy};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// let mapper = ExactMapper::with_config(
///     devices::ibm_qx4(),
///     MapperConfig::minimal().with_subsets(true),
/// );
/// let result = mapper.map(&c)?;
/// assert_eq!(result.cost, 0); // both CNOTs fit the coupling directly
/// # Ok::<(), qxmap_core::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExactMapper {
    model: DeviceModel,
    config: MapperConfig,
}

impl ExactMapper {
    /// A mapper for `cm` with the guaranteed-minimal default
    /// configuration (and the paper's uniform cost model).
    pub fn new(cm: CouplingMap) -> ExactMapper {
        ExactMapper::with_config(cm, MapperConfig::minimal())
    }

    /// A mapper with an explicit configuration; the device is priced
    /// uniformly under the configuration's [`MapperConfig::cost_model`]
    /// (the seed accounting). Use [`ExactMapper::for_model`] for
    /// calibration-aware per-edge costs.
    pub fn with_config(cm: CouplingMap, config: MapperConfig) -> ExactMapper {
        let model = DeviceModel::uniform(cm, config.cost_model);
        ExactMapper { model, config }
    }

    /// A mapper over an explicit [`DeviceModel`]: every objective weight —
    /// per-permutation SWAP costs and per-edge reversal surcharges — is
    /// read from the model, so calibration overrides steer the optimum.
    /// The configuration's [`MapperConfig::cost_model`] is ignored (the
    /// model *is* the cost model).
    pub fn for_model(model: DeviceModel, config: MapperConfig) -> ExactMapper {
        ExactMapper { model, config }
    }

    /// The device being mapped to.
    pub fn coupling_map(&self) -> &CouplingMap {
        self.model.coupling_map()
    }

    /// The device/cost model every objective weight is read from.
    pub fn device_model(&self) -> &DeviceModel {
        &self.model
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Builds (without solving) the SAT instance for `circuit` on the full
    /// device and reports its size — the paper's search-space discussion
    /// (Examples 5 and 8) made measurable. Subset restriction is ignored
    /// here; per-subset instances are strictly smaller.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExactMapper::map`], except that infeasibility
    /// cannot be detected without solving.
    pub fn encoding_stats(
        &self,
        circuit: &Circuit,
    ) -> Result<crate::encoding::EncodingStats, MapError> {
        let n = circuit.num_qubits();
        let m = self.model.num_qubits();
        if n > m {
            return Err(MapError::TooManyQubits {
                logical: n,
                physical: m,
            });
        }
        if m > MAX_EXACT_QUBITS {
            return Err(MapError::DeviceTooLarge {
                qubits: m,
                max: MAX_EXACT_QUBITS,
            });
        }
        let circuit = circuit.decompose_swaps();
        let skeleton = circuit.cnot_skeleton();
        if skeleton.is_empty() {
            return Ok(crate::encoding::EncodingStats {
                variables: 0,
                clauses: 0,
                mapping_variables: 0,
                change_points: 0,
                permutations: 0,
                objective_terms: 0,
                build_us: 0,
            });
        }
        let all: Vec<usize> = (0..m).collect();
        let table = self.model.costed_table(&all);
        let change_points = self.config.strategy.change_points(&skeleton);
        let enc = Encoding::build(&skeleton, n, &self.model, &table, &change_points);
        Ok(enc.stats())
    }

    /// Maps `circuit`, returning the minimal (or close-to-minimal, per the
    /// configuration) realization.
    ///
    /// Input SWAP gates are decomposed into CNOTs first; barriers and
    /// measurements are carried through.
    ///
    /// # Errors
    ///
    /// * [`MapError::TooManyQubits`] if `n > m`;
    /// * [`MapError::DeviceTooLarge`] if the (sub)instance would need
    ///   permutations of more than 8 qubits;
    /// * [`MapError::Infeasible`] if no valid mapping exists under the
    ///   configured restrictions;
    /// * [`MapError::BudgetExhausted`] if the conflict budget, the
    ///   wall-clock deadline, or an external cancellation stopped the
    ///   search before any mapping was found.
    pub fn map(&self, circuit: &Circuit) -> Result<MappingResult, MapError> {
        let start = Instant::now();
        let n = circuit.num_qubits();
        let m = self.model.num_qubits();
        if n > m {
            return Err(MapError::TooManyQubits {
                logical: n,
                physical: m,
            });
        }
        let circuit = circuit.decompose_swaps();
        let skeleton = circuit.cnot_skeleton();

        // Two "search strictly below this" bounds compose, each read at
        // every subinstance start: the *local* bound, private to this
        // call and tightened by its own candidates (so one `map` call
        // never poisons the next on a reused mapper), and the *external*
        // bound of the attached control, which a racing supervisor
        // tightens with costs whose results it holds itself — this call
        // only reads it, never writes it.
        let local_bound = crate::bound::SharedBound::new(self.config.minimize.initial_upper_bound);
        let external_bound = self.config.control.bound().clone();

        if skeleton.is_empty() {
            // The trivial mapping costs 0; only a demand for strictly
            // below 0 can rule it out.
            if opt_min(local_bound.get(), external_bound.get()) == Some(0) {
                return Err(MapError::Infeasible);
            }
            return Ok(self.trivial(&circuit, start));
        }

        // Section 4.1: subsets of physical qubits.
        let subsets: Vec<Vec<usize>> = if self.config.use_subsets && n < m {
            connected_subsets(self.model.coupling_map(), n)
        } else {
            vec![(0..m).collect()]
        };
        if subsets.is_empty() {
            return Err(MapError::Infeasible);
        }
        if let Some(too_big) = subsets.iter().find(|s| s.len() > MAX_EXACT_QUBITS) {
            return Err(MapError::DeviceTooLarge {
                qubits: too_big.len(),
                max: MAX_EXACT_QUBITS,
            });
        }

        let change_points = self.config.strategy.change_points(&skeleton);

        let shared = SharedSolveState {
            subsets: &subsets,
            next: AtomicUsize::new(0),
            undecided: AtomicBool::new(false),
            candidates: subsets.iter().map(|_| Mutex::new(None)).collect(),
            local_bound,
            external_bound,
            refutation_floor: AtomicU64::new(u64::MAX),
            // The configured total stays strict under parallelism: every
            // solver draws its conflicts from this one pool.
            budget_pool: self
                .config
                .minimize
                .conflict_budget
                .map(|b| Arc::new(AtomicU64::new(b))),
            cancel: self.config.control.cancel_handle(),
            deadline: self.config.deadline.map(|d| start + d),
            start,
        };
        let workers = self
            .config
            .solve_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .clamp(1, subsets.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.solve_subsets(&circuit, &skeleton, &change_points, &shared));
            }
        });

        let undecided = shared.undecided.into_inner();
        let refutation_floor = shared.refutation_floor.into_inner();
        let best = shared
            .candidates
            .into_iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let candidate = slot.into_inner().expect("workers have exited");
                candidate.map(|c| (i, c))
            })
            // Workers discard strictly-worse candidates, but equal-cost
            // ones can land in several slots; the lowest subset index
            // wins, matching the sequential iteration order.
            .min_by(|(i, a), (j, b)| (a.cost, i).cmp(&(b.cost, j)))
            .map(|(_, c)| c);

        match best {
            Some(mut result) => {
                // Optimal overall only if every subinstance was decided
                // *for this cost*: a subset refuted against an externally
                // tightened bound below the returned cost proves nothing
                // about the gap in between.
                result.proved_optimal &= !undecided || result.cost == 0;
                result.proved_optimal &= result.cost <= refutation_floor;
                result.runtime = start.elapsed();
                Ok(result)
            }
            None if undecided => Err(MapError::BudgetExhausted),
            None => Err(MapError::Infeasible),
        }
    }

    /// One worker of the per-subset pool: claims subset indices from the
    /// shared queue and solves each subinstance strictly below the
    /// effective (local ∧ external) bound, until the queue drains, the
    /// run cannot improve (bound 0), or a budget/deadline/cancellation
    /// stops it.
    fn solve_subsets(
        &self,
        circuit: &Circuit,
        skeleton: &[(usize, usize)],
        change_points: &std::collections::BTreeSet<usize>,
        shared: &SharedSolveState<'_>,
    ) {
        let n = circuit.num_qubits();
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            let Some(subset) = shared.subsets.get(i) else {
                return; // queue drained
            };
            if shared.stopped() {
                // This claimed subset (and whatever the other workers are
                // about to claim) stays unprocessed: the run is undecided.
                shared.undecided.store(true, Ordering::Relaxed);
                return;
            }
            // The effective bound composes the call-local and external
            // bounds, re-read at each subinstance start.
            let ub = shared.effective_bound();
            if ub == Some(0) {
                // Nothing beats 0: the remaining subsets are vacuously
                // refuted, the run stays decided.
                return;
            }

            let trace = &self.config.trace;
            let local_model = self.model.subgraph_model(subset);
            let table = self.model.costed_table(subset);
            let mut encode_span = trace.span(&format!("subset{i}/encode"));
            let Some(mut enc) = Encoding::build_interruptible(
                skeleton,
                n,
                &local_model,
                &table,
                change_points,
                &mut || shared.stopped(),
            ) else {
                encode_span.counter("interrupted", 1);
                shared.undecided.store(true, Ordering::Relaxed);
                continue; // the next claim's stop check winds the worker down
            };
            let enc_stats = enc.stats();
            encode_span.counter("variables", enc_stats.variables as u64);
            encode_span.counter("clauses", enc_stats.clauses as u64);
            encode_span.counter("build_us", enc_stats.build_us);
            encode_span.end();
            let objective = enc.objective.clone();
            enc.solver.set_interrupt(Some(Arc::clone(&shared.cancel)));
            enc.solver.set_deadline(shared.deadline);
            enc.solver
                .set_shared_conflict_pool(shared.budget_pool.clone());
            let options = MinimizeOptions {
                // The shared pool governs; no per-call cap on top of it.
                conflict_budget: None,
                initial_upper_bound: ub,
                ..self.config.minimize
            };
            let conflicts_before = enc.solver.stats().conflicts;
            let mut minimize_span = trace.span(&format!("subset{i}/minimize"));
            let outcome = minimize(&mut enc.solver, &objective, options);
            minimize_span.counter("conflicts", enc.solver.stats().conflicts - conflicts_before);
            match &outcome {
                Ok(min) => minimize_span.counter("iterations", u64::from(min.iterations)),
                Err(MinimizeError::Unsatisfiable) => minimize_span.counter("unsat", 1),
                Err(MinimizeError::BudgetExhausted) => {
                    minimize_span.counter("budget_exhausted", 1);
                }
            }
            // The interrupt cause of the *last* solver call — on a
            // budget cut, what actually stopped the search.
            if let Some(cause) = enc.solver.last_stop_cause() {
                minimize_span.counter(cause.label(), 1);
            }
            minimize_span.end();
            let minimum = match outcome {
                Ok(min) => min,
                // Refuted strictly below `ub`: decided, but only *down to
                // `ub`* — the floor records how far refutations reach, so
                // the final result can't claim a proof across the gap an
                // externally tightened bound left open.
                Err(MinimizeError::Unsatisfiable) => {
                    if let Some(b) = ub {
                        shared.refutation_floor.fetch_min(b, Ordering::Relaxed);
                    }
                    continue;
                }
                Err(MinimizeError::BudgetExhausted) => {
                    shared.undecided.store(true, Ordering::Relaxed);
                    continue;
                }
            };
            if !minimum.proved_optimal {
                shared.undecided.store(true, Ordering::Relaxed);
            }
            // Publish the cost before the (comparatively slow) circuit
            // assembly so peers prune against it as early as possible. A
            // failed tighten means a peer already holds a candidate at
            // least this good — drop ours.
            if !shared.local_bound.tighten(minimum.cost) {
                continue;
            }

            let layouts = enc.extract_layouts(&minimum.model);
            let perms: BTreeMap<usize, _> = enc
                .extract_permutations(&minimum.model)
                .into_iter()
                .collect();
            let (mapped, initial_layout, final_layout, swaps, reversals, placements) = assemble(
                circuit,
                self.model.coupling_map(),
                subset,
                &layouts,
                &perms,
                &table,
            );
            let added = (mapped.original_cost() - circuit.original_cost()) as u64;
            *shared.candidates[i]
                .lock()
                .expect("no panics under the lock") = Some(MappingResult {
                cost: minimum.cost,
                added_gates: added,
                swaps,
                reversals,
                mapped,
                initial_layout,
                final_layout,
                subset: subset.clone(),
                num_change_points: change_points.len(),
                placements,
                proved_optimal: minimum.proved_optimal,
                iterations: minimum.iterations,
                runtime: shared.start.elapsed(),
            });
        }
    }

    /// A circuit with no CNOTs maps 1:1 onto the first `n` physical qubits.
    fn trivial(&self, circuit: &Circuit, start: Instant) -> MappingResult {
        let n = circuit.num_qubits();
        let m = self.model.num_qubits();
        let layout = Layout::identity(n, m);
        let mapped = circuit.map_qubits(m, |q| q);
        MappingResult {
            cost: 0,
            added_gates: 0,
            swaps: 0,
            reversals: 0,
            mapped,
            initial_layout: layout.clone(),
            final_layout: layout,
            subset: (0..m).collect(),
            num_change_points: 0,
            placements: Vec::new(),
            proved_optimal: true,
            iterations: 0,
            runtime: start.elapsed(),
        }
    }
}

/// Everything the per-subset workers share, by reference, for one
/// [`ExactMapper::map`] call.
struct SharedSolveState<'a> {
    /// The Section 4.1 subinstances, in lexicographic order.
    subsets: &'a [Vec<usize>],
    /// Work queue: the next unclaimed subset index.
    next: AtomicUsize,
    /// Whether any subinstance went unprocessed or unproved — if so, the
    /// final result cannot claim optimality and an empty result set means
    /// budget exhaustion rather than infeasibility.
    undecided: AtomicBool,
    /// One slot per subset; workers only fill slots whose candidate
    /// tightened the local bound.
    candidates: Vec<Mutex<Option<MappingResult>>>,
    /// Best candidate cost this call has found (exclusive). Private to
    /// the call, so a reused mapper starts every `map` fresh.
    local_bound: crate::bound::SharedBound,
    /// The attached control's bound, tightened by an external racer that
    /// holds results of its own. Read-only here.
    external_bound: crate::bound::SharedBound,
    /// The lowest bound any subset was refuted against (`u64::MAX` when
    /// nothing was refuted under a bound): refutations prove nothing
    /// below this, so a final cost above it forfeits the proof.
    refutation_floor: AtomicU64,
    /// Remaining total conflicts, drawn per conflict by every solver.
    budget_pool: Option<Arc<AtomicU64>>,
    /// External cancellation, checked at conflicts and between phases.
    cancel: Arc<AtomicBool>,
    /// Wall-clock cutoff derived from [`MapperConfig::deadline`].
    deadline: Option<Instant>,
    /// When the `map` call began (for per-candidate runtimes).
    start: Instant,
}

/// `min` over optional exclusive bounds, where `None` is unbounded.
fn opt_min(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl SharedSolveState<'_> {
    /// The bound subinstances search strictly below: the tighter of the
    /// call-local and external bounds.
    fn effective_bound(&self) -> Option<u64> {
        opt_min(self.local_bound.get(), self.external_bound.get())
    }

    /// Whether the run should stop before investing in more work:
    /// cancelled, past the deadline, or out of conflicts.
    fn stopped(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
            || self
                .budget_pool
                .as_ref()
                .is_some_and(|p| p.load(Ordering::Relaxed) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::verify;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn paper_example_is_four() {
        let mapper = ExactMapper::new(devices::ibm_qx4());
        let r = mapper.map(&paper_example()).unwrap();
        assert_eq!(r.cost, 4);
        assert_eq!(r.added_gates, 4);
        assert_eq!(r.swaps, 0);
        assert_eq!(r.reversals, 1);
        assert!(r.proved_optimal);
        assert_eq!(r.mapped_cost(), 12); // 8 original + 4 H
        verify::check_coupling(&r.mapped, mapper.coupling_map()).unwrap();
    }

    #[test]
    fn paper_example_with_subsets_matches_minimum() {
        let mapper = ExactMapper::with_config(
            devices::ibm_qx4(),
            MapperConfig::minimal().with_subsets(true),
        );
        let r = mapper.map(&paper_example()).unwrap();
        assert_eq!(r.cost, 4);
        assert_eq!(r.subset.len(), 4);
        assert!(r.subset.contains(&2), "connected 4-subsets contain the hub");
    }

    #[test]
    fn strategies_are_no_better_than_minimal() {
        let circuit = paper_example();
        let minimal = ExactMapper::new(devices::ibm_qx4())
            .map(&circuit)
            .unwrap()
            .cost;
        for strategy in [
            Strategy::DisjointQubits,
            Strategy::OddGates,
            Strategy::QubitTriangle,
        ] {
            let r = ExactMapper::with_config(
                devices::ibm_qx4(),
                MapperConfig::minimal().with_strategy(strategy.clone()),
            )
            .map(&circuit)
            .unwrap();
            assert!(r.cost >= minimal, "{strategy:?} beat the proven minimum?!");
            verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
        }
    }

    #[test]
    fn example10_strategies_stay_minimal_here() {
        // The paper notes all three strategies still reach F = 4 on the
        // running example.
        let circuit = paper_example();
        for strategy in [
            Strategy::DisjointQubits,
            Strategy::OddGates,
            Strategy::QubitTriangle,
        ] {
            let r = ExactMapper::with_config(
                devices::ibm_qx4(),
                MapperConfig::minimal().with_strategy(strategy),
            )
            .map(&circuit)
            .unwrap();
            assert_eq!(r.cost, 4);
        }
    }

    #[test]
    fn window_strategy_end_to_end() {
        let circuit = paper_example();
        let minimal = ExactMapper::new(devices::ibm_qx4())
            .map(&circuit)
            .unwrap()
            .cost;
        for k in [1usize, 2, 3] {
            let r = ExactMapper::with_config(
                devices::ibm_qx4(),
                MapperConfig::minimal().with_strategy(Strategy::Window(k)),
            )
            .map(&circuit)
            .unwrap();
            assert!(r.cost >= minimal, "Window({k}) beat the minimum");
            verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
        }
        // Window(1) is the unrestricted method: exactly minimal.
        let r = ExactMapper::with_config(
            devices::ibm_qx4(),
            MapperConfig::minimal().with_strategy(Strategy::Window(1)),
        )
        .map(&circuit)
        .unwrap();
        assert_eq!(r.cost, minimal);
    }

    #[test]
    fn placements_describe_every_skeleton_gate() {
        let circuit = paper_example();
        let cm = devices::ibm_qx4();
        let r = ExactMapper::new(cm.clone()).map(&circuit).unwrap();
        let skeleton = circuit.cnot_skeleton();
        assert_eq!(r.placements.len(), skeleton.len());
        for (k, p) in r.placements.iter().enumerate() {
            assert_eq!(p.gate, k);
            assert_eq!((p.control, p.target), skeleton[k]);
            // The physical pair is a legal edge in the executed direction.
            if p.reversed {
                assert!(cm.has_edge(p.phys_target, p.phys_control));
            } else {
                assert!(cm.has_edge(p.phys_control, p.phys_target));
            }
        }
        assert_eq!(
            r.placements.iter().filter(|p| p.reversed).count() as u32,
            r.reversals
        );
    }

    #[test]
    fn encoding_stats_match_example5() {
        // Example 5: the running example has n·m·|G| = 4·5·5 = 100 mapping
        // variables on the full device.
        let mapper = ExactMapper::new(devices::ibm_qx4());
        let stats = mapper.encoding_stats(&paper_example()).unwrap();
        assert_eq!(stats.mapping_variables, 100);
        assert_eq!(stats.change_points, 4);
        assert_eq!(stats.permutations, 120);
        // Trivial circuits have empty instances.
        let mut trivial = Circuit::new(2);
        trivial.h(0);
        let stats = mapper.encoding_stats(&trivial).unwrap();
        assert_eq!(stats.variables, 0);
    }

    #[test]
    fn mapper_is_reusable_across_calls() {
        // Candidate bounds are call-local: a second map() on the same
        // mapper must not be pruned by the first call's result.
        let mapper = ExactMapper::new(devices::ibm_qx4());
        let first = mapper.map(&paper_example()).unwrap();
        let second = mapper.map(&paper_example()).unwrap();
        assert_eq!(first.cost, 4);
        assert_eq!(second.cost, 4);
        assert!(second.proved_optimal);
    }

    #[test]
    fn external_control_bound_prunes_but_is_never_written() {
        use crate::config::SolveControl;

        // A bound at the known optimum: nothing strictly better exists.
        let control = SolveControl::new();
        control.bound().tighten(4);
        let mapper = ExactMapper::with_config(
            devices::ibm_qx4(),
            MapperConfig::minimal().with_control(control.clone()),
        );
        assert!(matches!(
            mapper.map(&paper_example()),
            Err(MapError::Infeasible)
        ));
        assert_eq!(
            control.bound().get(),
            Some(4),
            "the mapper reads the external bound but never writes it"
        );

        // A looser bound admits the proven optimum — and still stays
        // untouched, whatever the per-subset interleaving.
        let control = SolveControl::new();
        control.bound().tighten(5);
        let mapper = ExactMapper::with_config(
            devices::ibm_qx4(),
            MapperConfig::minimal()
                .with_subsets(true)
                .with_control(control.clone()),
        );
        let r = mapper.map(&paper_example()).unwrap();
        assert_eq!(r.cost, 4);
        assert!(r.proved_optimal);
        assert_eq!(control.bound().get(), Some(5));
    }

    #[test]
    fn too_many_qubits() {
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let err = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap_err();
        assert!(matches!(
            err,
            MapError::TooManyQubits {
                logical: 6,
                physical: 5
            }
        ));
    }

    #[test]
    fn trivial_circuit_costs_zero() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).x(2);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        assert_eq!(r.cost, 0);
        assert_eq!(r.mapped_cost(), 3);
        assert!(r.proved_optimal);
    }

    #[test]
    fn input_swaps_are_decomposed() {
        let mut c = Circuit::new(2);
        c.swap_gate(0, 1);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        // Decomposed SWAP = CX(0,1) CX(1,0) CX(0,1); on QX4 one direction
        // must be repaired: minimal F = 4.
        assert_eq!(r.cost, 4);
        verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
    }

    #[test]
    fn device_too_large_without_subsets() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let err = ExactMapper::new(devices::ibm_qx5()).map(&c).unwrap_err();
        assert!(matches!(err, MapError::DeviceTooLarge { qubits: 16, .. }));
        // With subsets the same instance is fine (3-qubit subgraphs).
        let r = ExactMapper::with_config(
            devices::ibm_qx5(),
            MapperConfig::minimal().with_subsets(true),
        )
        .map(&c)
        .unwrap();
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn cost_equals_recount_on_qx4() {
        // added_gates must equal the modelled F on QX4 (7/4 cost model is
        // exact there).
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(0, 3);
        c.cx(1, 2);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        assert_eq!(r.cost, r.added_gates);
        assert_eq!(
            r.added_gates,
            7 * u64::from(r.swaps) + 4 * u64::from(r.reversals)
        );
    }

    #[test]
    fn final_layout_consistent_with_swap_count() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(0, 2);
        let r = ExactMapper::new(devices::ibm_qx4()).map(&c).unwrap();
        if r.swaps == 0 {
            assert_eq!(r.initial_layout, r.final_layout);
        }
        verify::check_coupling(&r.mapped, &devices::ibm_qx4()).unwrap();
    }
}
