//! Zero-dependency solve tracing: named, nestable phase spans with
//! attachable counters, recorded against one monotonic origin.
//!
//! The substrate is two types. A [`SpanRecorder`] is handed down through
//! the request lifecycle (ingest → queue → race → encode/minimize →
//! stitch) and collects closed spans; a [`SolveTrace`] is the immutable
//! snapshot it yields, ready to serialize into a wire response or a
//! slow-request log. Nesting is by path convention: a span named
//! `"race/exact/encode"` is a child of `"race/exact"`, which is a child
//! of the top-level `"race"` phase. Concurrent racers record into the
//! same recorder from their own threads; sibling spans from *sequential*
//! phases never overlap, while race-pool siblings legitimately do.
//!
//! The recorder is built for a hot path that almost never traces: a
//! disabled recorder ([`SpanRecorder::disabled`], also [`Default`]) holds
//! no allocation at all, and every recording call on it is a single
//! `Option` check — no clock read, no lock, no formatting. Callers can
//! therefore thread a recorder unconditionally and let the wire-level
//! `"trace": true` knob decide whether anything is paid.
//!
//! ```
//! use qxmap_core::trace::SpanRecorder;
//!
//! let recorder = SpanRecorder::new();
//! {
//!     let mut span = recorder.span("ingest");
//!     span.counter("gates", 12);
//! } // closed on drop
//! let trace = recorder.finish().expect("enabled recorders snapshot");
//! assert_eq!(trace.spans[0].path, "ingest");
//! assert_eq!(trace.spans[0].counters, vec![("gates".to_string(), 12)]);
//!
//! // The disabled recorder accepts the same calls for free.
//! let off = SpanRecorder::disabled();
//! off.span("ingest");
//! assert!(off.finish().is_none());
//! ```

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One closed phase of a [`SolveTrace`]: a `/`-separated path naming the
/// phase and its ancestry, offsets from the trace origin in microseconds,
/// and any counters attached while the span was open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// `/`-separated phase path, e.g. `"race/exact/minimize"`. The
    /// prefix before the last `/` names the parent phase.
    pub path: String,
    /// Start offset from the trace origin, in microseconds.
    pub start_us: u64,
    /// Span duration in microseconds. Zero-duration spans are events
    /// (bound updates, cache hits) rather than phases.
    pub duration_us: u64,
    /// Counters attached to the span, in attachment order.
    pub counters: Vec<(String, u64)>,
}

impl TraceSpan {
    /// Nesting depth: `"ingest"` is 0, `"race/exact"` is 1, …
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// The parent phase's path, or `None` for a top-level span.
    pub fn parent(&self) -> Option<&str> {
        self.path.rsplit_once('/').map(|(parent, _)| parent)
    }

    /// The span's own name, without its ancestry.
    pub fn name(&self) -> &str {
        self.path.rsplit_once('/').map_or(&self.path, |(_, n)| n)
    }

    /// End offset from the trace origin, in microseconds.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.duration_us)
    }
}

/// An immutable snapshot of a request's recorded phases: the timeline a
/// `"trace": true` request gets back on the wire, and what the serving
/// tier's slow-request log stores.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SolveTrace {
    /// Wall-clock time from the trace origin to the snapshot, in
    /// microseconds. Every span ends at or before this.
    pub elapsed_us: u64,
    /// Closed spans, ordered by start offset (ties by path).
    pub spans: Vec<TraceSpan>,
}

impl SolveTrace {
    /// The spans directly under `parent` (`None` for top-level spans),
    /// in timeline order.
    pub fn children(&self, parent: Option<&str>) -> Vec<&TraceSpan> {
        self.spans.iter().filter(|s| s.parent() == parent).collect()
    }

    /// Sum of the top-level phase durations, in microseconds. For a
    /// sequential pipeline this is at most [`SolveTrace::elapsed_us`].
    pub fn top_level_total_us(&self) -> u64 {
        self.children(None).iter().map(|s| s.duration_us).sum()
    }
}

struct Inner {
    origin: Instant,
    spans: Mutex<Vec<TraceSpan>>,
}

/// Collects [`TraceSpan`]s for one request against a monotonic origin.
///
/// Cloning shares the underlying trace: the portfolio's racer threads,
/// the windowed engine's block workers and the serving tier all record
/// into the same timeline through their own clones. A recorder is either
/// *enabled* (created by [`SpanRecorder::new`] /
/// [`SpanRecorder::with_origin`]) or *disabled*
/// ([`SpanRecorder::disabled`], the [`Default`]); on a disabled recorder
/// every method is a no-op behind one pointer-sized `Option` check, so
/// threading a recorder through a hot path costs nothing measurable when
/// tracing is off.
#[derive(Clone, Default)]
pub struct SpanRecorder {
    inner: Option<Arc<Inner>>,
    prefix: Option<Arc<str>>,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl SpanRecorder {
    /// An enabled recorder whose origin is now.
    pub fn new() -> SpanRecorder {
        SpanRecorder::with_origin(Instant::now())
    }

    /// An enabled recorder measuring offsets from `origin` — used when
    /// the timeline began before the recorder existed (the serving tier
    /// stamps a request's receipt instant first, then decides whether to
    /// trace). Spans starting before `origin` clamp to offset 0.
    pub fn with_origin(origin: Instant) -> SpanRecorder {
        SpanRecorder {
            inner: Some(Arc::new(Inner {
                origin,
                spans: Mutex::new(Vec::new()),
            })),
            prefix: None,
        }
    }

    /// The disabled recorder: no allocation, and every recording call is
    /// a no-op `Option` check.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder {
            inner: None,
            prefix: None,
        }
    }

    /// A recorder sharing this one's timeline but prefixing every path
    /// with `prefix/` — how a caller nests a whole subsystem's spans
    /// under its own phase (the serving tier scopes the engine's race
    /// spans under `solve/`) without the subsystem knowing its ancestry.
    /// Scoping a disabled recorder stays disabled and free.
    pub fn scoped(&self, prefix: &str) -> SpanRecorder {
        if self.inner.is_none() {
            return SpanRecorder::disabled();
        }
        SpanRecorder {
            inner: self.inner.clone(),
            prefix: Some(match &self.prefix {
                Some(outer) => format!("{outer}/{prefix}").into(),
                None => prefix.into(),
            }),
        }
    }

    fn full_path(&self, path: &str) -> String {
        match &self.prefix {
            Some(prefix) => format!("{prefix}/{path}"),
            None => path.to_string(),
        }
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace origin, if enabled.
    pub fn origin(&self) -> Option<Instant> {
        self.inner.as_deref().map(|i| i.origin)
    }

    /// Opens a span at `path` starting now; it closes (and records) when
    /// the returned guard drops, or explicitly via [`Span::end`]. On a
    /// disabled recorder this neither allocates nor reads the clock.
    pub fn span(&self, path: &str) -> Span {
        Span {
            inner: self.inner.as_ref().map(|inner| SpanState {
                recorder: Arc::clone(inner),
                path: self.full_path(path),
                start: Instant::now(),
                counters: Vec::new(),
            }),
        }
    }

    /// Records an already-measured span: `start` and `duration` were
    /// observed by the caller (e.g. an ingest phase timed before the
    /// recorder was constructed).
    pub fn record(&self, path: &str, start: Instant, duration: Duration) {
        self.record_with(path, start, duration, &[]);
    }

    /// [`SpanRecorder::record`] with counters attached.
    pub fn record_with(
        &self,
        path: &str,
        start: Instant,
        duration: Duration,
        counters: &[(&str, u64)],
    ) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let start_us = micros(start.saturating_duration_since(inner.origin));
        inner.push(TraceSpan {
            path: self.full_path(path),
            start_us,
            duration_us: micros(duration),
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Records a zero-duration event at `path`, now, carrying `value`
    /// under the counter name `name` — bound tightenings, cache hits,
    /// cancellations.
    pub fn event(&self, path: &str, name: &str, value: u64) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let now = Instant::now();
        let start_us = micros(now.saturating_duration_since(inner.origin));
        inner.push(TraceSpan {
            path: self.full_path(path),
            start_us,
            duration_us: 0,
            counters: vec![(name.to_string(), value)],
        });
    }

    /// Snapshots the timeline recorded so far (spans sorted by start
    /// offset, ties by path), or `None` on a disabled recorder. The
    /// recorder stays usable; later snapshots see later spans.
    pub fn finish(&self) -> Option<SolveTrace> {
        let inner = self.inner.as_deref()?;
        let elapsed_us = micros(inner.origin.elapsed());
        let mut spans = inner.spans.lock().expect("trace lock poisoned").clone();
        spans.sort_by(|a, b| {
            a.start_us
                .cmp(&b.start_us)
                .then_with(|| a.path.cmp(&b.path))
        });
        Some(SolveTrace { elapsed_us, spans })
    }
}

impl Inner {
    fn push(&self, span: TraceSpan) {
        self.spans.lock().expect("trace lock poisoned").push(span);
    }
}

fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

struct SpanState {
    recorder: Arc<Inner>,
    path: String,
    start: Instant,
    counters: Vec<(String, u64)>,
}

/// An open span from [`SpanRecorder::span`]; records itself when dropped
/// or explicitly ended. On a disabled recorder the guard is inert.
#[must_use = "a span records when it drops; binding it to _ closes it immediately"]
pub struct Span {
    inner: Option<SpanState>,
}

impl Span {
    /// Attaches (or, on repeats, appends) a counter to the span.
    pub fn counter(&mut self, name: &str, value: u64) {
        if let Some(state) = self.inner.as_mut() {
            state.counters.push((name.to_string(), value));
        }
    }

    /// Opens a child span under this one, starting now.
    pub fn child(&self, name: &str) -> Span {
        Span {
            inner: self.inner.as_ref().map(|state| SpanState {
                recorder: Arc::clone(&state.recorder),
                path: format!("{}/{}", state.path, name),
                start: Instant::now(),
                counters: Vec::new(),
            }),
        }
    }

    /// The span's full path, if recording.
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|s| s.path.as_str())
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.inner.take() else {
            return;
        };
        let duration = state.start.elapsed();
        let start_us = micros(state.start.saturating_duration_since(state.recorder.origin));
        state.recorder.push(TraceSpan {
            path: state.path,
            start_us,
            duration_us: micros(duration),
            counters: state.counters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_path_and_sort_by_start() {
        let rec = SpanRecorder::new();
        {
            let outer = rec.span("race");
            {
                let mut inner = outer.child("exact");
                inner.counter("conflicts", 41);
            }
            outer.child("sabre").end();
        }
        rec.event("race", "bound", 7);
        let trace = rec.finish().unwrap();
        let mut paths: Vec<&str> = trace.spans.iter().map(|s| s.path.as_str()).collect();
        paths.sort();
        assert_eq!(paths, vec!["race", "race", "race/exact", "race/sabre"]);
        let exact = trace.spans.iter().find(|s| s.path == "race/exact").unwrap();
        assert_eq!(exact.parent(), Some("race"));
        assert_eq!(exact.name(), "exact");
        assert_eq!(exact.depth(), 1);
        assert_eq!(exact.counters, vec![("conflicts".to_string(), 41)]);
        // The race span closed after its children, so it dominates them.
        let race = trace
            .spans
            .iter()
            .find(|s| s.path == "race" && s.duration_us >= exact.duration_us)
            .unwrap();
        assert!(race.end_us() >= exact.end_us());
        assert!(trace.elapsed_us >= race.end_us());
        assert_eq!(trace.children(Some("race")).len(), 2);
    }

    #[test]
    fn explicit_record_clamps_pre_origin_starts() {
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let rec = SpanRecorder::with_origin(Instant::now());
        rec.record("ingest", early, Duration::from_micros(250));
        let trace = rec.finish().unwrap();
        assert_eq!(trace.spans[0].start_us, 0);
        assert_eq!(trace.spans[0].duration_us, 250);
    }

    #[test]
    fn clones_share_one_timeline_across_threads() {
        let rec = SpanRecorder::new();
        std::thread::scope(|scope| {
            for name in ["a", "b", "c"] {
                let rec = rec.clone();
                scope.spawn(move || {
                    let mut span = rec.span(name);
                    span.counter("n", 1);
                });
            }
        });
        let trace = rec.finish().unwrap();
        assert_eq!(trace.spans.len(), 3);
    }

    #[test]
    fn scoped_recorders_prefix_into_the_shared_timeline() {
        let rec = SpanRecorder::new();
        let solve = rec.scoped("solve");
        let race = solve.scoped("race");
        solve.span("race").end();
        race.event("bound", "objective", 9);
        race.record("exact", Instant::now(), Duration::from_micros(5));
        let trace = rec.finish().unwrap();
        let mut paths: Vec<&str> = trace.spans.iter().map(|s| s.path.as_str()).collect();
        paths.sort();
        assert_eq!(
            paths,
            vec!["solve/race", "solve/race/bound", "solve/race/exact"]
        );
        assert!(SpanRecorder::disabled().scoped("solve").finish().is_none());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        let mut span = rec.span("race");
        span.counter("x", 1);
        let child = span.child("exact");
        assert_eq!(child.path(), None);
        drop(child);
        drop(span);
        rec.event("race", "bound", 3);
        rec.record("ingest", Instant::now(), Duration::from_secs(1));
        assert!(rec.finish().is_none());
    }

    #[test]
    fn top_level_totals_sum_only_roots() {
        let rec = SpanRecorder::new();
        rec.record("ingest", rec.origin().unwrap(), Duration::from_micros(100));
        rec.record_with(
            "solve",
            rec.origin().unwrap() + Duration::from_micros(100),
            Duration::from_micros(300),
            &[("conflicts", 9)],
        );
        rec.record(
            "solve/encode",
            rec.origin().unwrap() + Duration::from_micros(100),
            Duration::from_micros(40),
        );
        let trace = rec.finish().unwrap();
        assert_eq!(trace.top_level_total_us(), 400);
    }
}
