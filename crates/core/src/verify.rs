//! Structural verification of mapped circuits.
//!
//! Functional (unitary) equivalence is checked in the integration tests
//! with the `qxmap-sim` statevector simulator; this module provides the
//! cheap structural guarantees every mapped circuit must satisfy.

use std::error::Error;
use std::fmt;

use qxmap_arch::CouplingMap;
use qxmap_circuit::{Circuit, Gate};

use crate::solution::MappingResult;

/// A structural violation found in a mapped circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A CNOT sits on a pair that is no coupling edge (in that direction).
    IllegalCnot {
        /// Gate position in the circuit.
        position: usize,
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// A SWAP survived in the supposedly decomposed output.
    ResidualSwap {
        /// Gate position in the circuit.
        position: usize,
    },
    /// The reported cost disagrees with a recount of the circuit.
    CostMismatch {
        /// Cost reported by the solver.
        reported: u64,
        /// Cost recounted from the mapped circuit.
        recounted: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IllegalCnot {
                position,
                control,
                target,
            } => write!(
                f,
                "gate {position}: CNOT({control}, {target}) violates the coupling map"
            ),
            VerifyError::ResidualSwap { position } => {
                write!(f, "gate {position}: undecomposed SWAP in mapped circuit")
            }
            VerifyError::CostMismatch {
                reported,
                recounted,
            } => write!(
                f,
                "reported cost {reported} but the mapped circuit recounts to {recounted}"
            ),
        }
    }
}

impl Error for VerifyError {}

/// Checks that every CNOT of `circuit` lies on a directed coupling edge —
/// the CNOT-constraints of Definition 2.
///
/// # Errors
///
/// Returns the first [`VerifyError::IllegalCnot`] or
/// [`VerifyError::ResidualSwap`] found.
pub fn check_coupling(circuit: &Circuit, cm: &CouplingMap) -> Result<(), VerifyError> {
    for (position, gate) in circuit.gates().iter().enumerate() {
        match gate {
            Gate::Cnot { control, target } if !cm.has_edge(*control, *target) => {
                return Err(VerifyError::IllegalCnot {
                    position,
                    control: *control,
                    target: *target,
                });
            }
            Gate::Swap { .. } => return Err(VerifyError::ResidualSwap { position }),
            _ => {}
        }
    }
    Ok(())
}

/// Full structural check of a mapping result against the original circuit:
/// coupling legality plus cost-accounting consistency
/// (`added_gates == mapped_cost − original_cost`).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_result(
    original: &Circuit,
    result: &MappingResult,
    cm: &CouplingMap,
) -> Result<(), VerifyError> {
    check_coupling(&result.mapped, cm)?;
    let original_cost = original.decompose_swaps().original_cost() as u64;
    let recounted = result.mapped.original_cost() as u64 - original_cost;
    if recounted != result.added_gates {
        return Err(VerifyError::CostMismatch {
            reported: result.added_gates,
            recounted,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;

    #[test]
    fn legal_circuit_passes() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(5);
        c.cx(1, 0);
        c.h(3);
        c.cx(4, 2);
        assert!(check_coupling(&c, &cm).is_ok());
    }

    #[test]
    fn illegal_direction_is_flagged() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(5);
        c.cx(0, 1); // only (1,0) exists
        let err = check_coupling(&c, &cm).unwrap_err();
        assert_eq!(
            err,
            VerifyError::IllegalCnot {
                position: 0,
                control: 0,
                target: 1
            }
        );
        assert!(err.to_string().contains("violates"));
    }

    #[test]
    fn residual_swap_is_flagged() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(5);
        c.swap_gate(0, 1);
        assert_eq!(
            check_coupling(&c, &cm).unwrap_err(),
            VerifyError::ResidualSwap { position: 0 }
        );
    }

    #[test]
    fn check_result_catches_cost_drift() {
        use crate::ExactMapper;
        let cm = devices::ibm_qx4();
        let original = qxmap_circuit::paper_example();
        let mut r = ExactMapper::new(cm.clone()).map(&original).unwrap();
        assert!(check_result(&original, &r, &cm).is_ok());
        r.added_gates += 1;
        assert!(matches!(
            check_result(&original, &r, &cm),
            Err(VerifyError::CostMismatch { .. })
        ));
    }
}
