//! Permutation-site strategies (Section 4.2).
//!
//! The full method allows a layout permutation before every CNOT but the
//! first. Each strategy below restricts permutations to a subset
//! `G' ⊆ G \ {g₁}` of *change points*, trading guaranteed minimality for
//! (often dramatic) solver speedups.

use std::collections::BTreeSet;

/// Where layout permutations are allowed.
///
/// Change points are expressed as 0-based indices into the circuit's CNOT
/// skeleton; index 0 (the initial mapping, free anyway) is never a change
/// point.
///
/// ```
/// use qxmap_core::Strategy;
///
/// // Fig. 1b's skeleton (0-based qubits).
/// let skeleton = [(2, 3), (0, 1), (1, 2), (0, 2), (2, 0)];
/// // Example 10: disjoint qubits ⇒ G' = {g3, g4, g5} (0-based {2, 3, 4}).
/// let g = Strategy::DisjointQubits.change_points(&skeleton);
/// assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![2, 3, 4]);
/// // Odd gates ⇒ G' = {g3, g5} (0-based {2, 4}).
/// let g = Strategy::OddGates.change_points(&skeleton);
/// assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![2, 4]);
/// // Qubit triangle ⇒ G' = {g2} (0-based {1}).
/// let g = Strategy::QubitTriangle.change_points(&skeleton);
/// assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Permutations before every gate (except the first) — guarantees
    /// minimality (Section 3).
    #[default]
    BeforeEveryGate,
    /// Cluster maximal runs of gates on pairwise-disjoint qubit sets;
    /// permutations only between clusters.
    DisjointQubits,
    /// Permutations only before gates with an odd (1-based) index, i.e.
    /// `g₃, g₅, …`.
    OddGates,
    /// Cluster maximal runs touching at most three distinct qubits (each
    /// run fits a coupling-graph triangle); permutations only between runs.
    QubitTriangle,
    /// Permutations every `k` gates: change points `{k, 2k, 3k, …}`.
    /// Generalizes [`Strategy::OddGates`] (`Window(2)` with an offset);
    /// one of the "many more strategies … omitted due to space
    /// limitations" (footnote 6 of the paper).
    Window(usize),
    /// Explicit change points (0-based skeleton indices; index 0 and
    /// out-of-range entries are ignored).
    Custom(Vec<usize>),
}

impl Strategy {
    /// Computes the change-point set `G'` for a CNOT skeleton.
    pub fn change_points(&self, skeleton: &[(usize, usize)]) -> BTreeSet<usize> {
        let k = skeleton.len();
        match self {
            Strategy::BeforeEveryGate => (1..k).collect(),
            Strategy::DisjointQubits => cluster_starts(skeleton, |cluster, gate| {
                cluster.contains(&gate.0) || cluster.contains(&gate.1)
            }),
            Strategy::OddGates => (1..k).filter(|i| (i + 1) % 2 == 1).collect(),
            Strategy::QubitTriangle => cluster_starts(skeleton, |cluster, gate| {
                let mut extended = cluster.clone();
                extended.insert(gate.0);
                extended.insert(gate.1);
                extended.len() > 3
            }),
            Strategy::Window(size) => {
                let size = (*size).max(1);
                (1..k).filter(|i| i % size == 0).collect()
            }
            Strategy::Custom(points) => points
                .iter()
                .copied()
                .filter(|&i| i >= 1 && i < k)
                .collect(),
        }
    }

    /// Short display name matching the paper's Table 1 column headers.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::BeforeEveryGate => "minimal",
            Strategy::DisjointQubits => "disjoint qubits",
            Strategy::OddGates => "odd gates",
            Strategy::QubitTriangle => "qubit triangle",
            Strategy::Window(_) => "window",
            Strategy::Custom(_) => "custom",
        }
    }
}

/// Greedy sequential clustering: gate `k` starts a new cluster when
/// `must_split(current_cluster_qubits, gate_k)`; returns the start indices
/// of every cluster except the first.
fn cluster_starts(
    skeleton: &[(usize, usize)],
    must_split: impl Fn(&BTreeSet<usize>, (usize, usize)) -> bool,
) -> BTreeSet<usize> {
    let mut points = BTreeSet::new();
    let mut cluster: BTreeSet<usize> = BTreeSet::new();
    for (k, &gate) in skeleton.iter().enumerate() {
        if k > 0 && must_split(&cluster, gate) {
            points.insert(k);
            cluster.clear();
        }
        cluster.insert(gate.0);
        cluster.insert(gate.1);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1b() -> Vec<(usize, usize)> {
        vec![(2, 3), (0, 1), (1, 2), (0, 2), (2, 0)]
    }

    #[test]
    fn before_every_gate_is_all_but_first() {
        let g = Strategy::BeforeEveryGate.change_points(&fig1b());
        assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn example10_disjoint_qubits() {
        // g1 (2,3) and g2 (0,1) are disjoint → no permutation before g2.
        let g = Strategy::DisjointQubits.change_points(&fig1b());
        assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn example10_odd_gates() {
        let g = Strategy::OddGates.change_points(&fig1b());
        assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn example10_qubit_triangle() {
        // g2..g5 act on {0,1,2} only; a single permutation before g2.
        let g = Strategy::QubitTriangle.change_points(&fig1b());
        assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn window_strategy_spacing() {
        let skel: Vec<(usize, usize)> = (0..9).map(|i| (i % 3, (i + 1) % 3)).collect();
        let g = Strategy::Window(3).change_points(&skel);
        assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![3, 6]);
        // Window(1) equals BeforeEveryGate.
        assert_eq!(
            Strategy::Window(1).change_points(&skel),
            Strategy::BeforeEveryGate.change_points(&skel)
        );
        // Degenerate size 0 is clamped to 1.
        assert_eq!(
            Strategy::Window(0).change_points(&skel),
            Strategy::BeforeEveryGate.change_points(&skel)
        );
    }

    #[test]
    fn custom_filters_invalid_indices() {
        let g = Strategy::Custom(vec![0, 1, 3, 99]).change_points(&fig1b());
        assert_eq!(g.into_iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn empty_skeleton_has_no_points() {
        for s in [
            Strategy::BeforeEveryGate,
            Strategy::DisjointQubits,
            Strategy::OddGates,
            Strategy::QubitTriangle,
        ] {
            assert!(s.change_points(&[]).is_empty());
        }
    }

    #[test]
    fn single_gate_has_no_points() {
        let skel = [(0, 1)];
        assert!(Strategy::BeforeEveryGate.change_points(&skel).is_empty());
    }

    #[test]
    fn strategy_sizes_are_ordered() {
        // |G'| must shrink: all ≥ disjoint ≥ triangle on Fig. 1b.
        let all = Strategy::BeforeEveryGate.change_points(&fig1b()).len();
        let dis = Strategy::DisjointQubits.change_points(&fig1b()).len();
        let tri = Strategy::QubitTriangle.change_points(&fig1b()).len();
        assert!(all >= dis && dis >= tri);
    }

    #[test]
    fn names() {
        assert_eq!(Strategy::BeforeEveryGate.name(), "minimal");
        assert_eq!(Strategy::QubitTriangle.name(), "qubit triangle");
    }
}
