//! Mapper configuration, the shared solve-control handle, and errors.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qxmap_arch::CostModel;
use qxmap_sat::MinimizeOptions;

use crate::bound::SharedBound;
use crate::strategy::Strategy;
use crate::trace::SpanRecorder;

/// A handle shared between a mapping run and whoever supervises it
/// (other engines racing it, a batch driver, a caller with a kill
/// switch). Clones share the same state.
///
/// It carries two things:
///
/// * a **cancel flag** — once [`SolveControl::cancel`] is called, every
///   solver and encoding build holding this handle winds down at its
///   next check and the run reports budget exhaustion;
/// * a **shared upper bound** ([`SharedBound`]) — achievable costs the
///   *supervisor* holds results for (e.g. a racing heuristic's, the
///   moment it finishes). The exact mapper reads it before every
///   subinstance, pruning subsets that cannot improve on it; it never
///   writes it, so the handle's state is exactly what its holder put
///   there.
///
/// Whoever tightens the bound asserts that a result of that cost is
/// actually in hand: solves pruned by it report honestly (a refutation
/// against the bound is a proof only down to the bound, and a run whose
/// own best is worse than the bound forfeits its optimality claim).
#[derive(Debug, Clone, Default)]
pub struct SolveControl {
    cancel: Arc<AtomicBool>,
    bound: SharedBound,
}

impl SolveControl {
    /// A fresh handle: not cancelled, unbounded.
    pub fn new() -> SolveControl {
        SolveControl::default()
    }

    /// Asks every participating solve to stop at its next check.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether [`SolveControl::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The shared upper bound.
    pub fn bound(&self) -> &SharedBound {
        &self.bound
    }

    /// The raw cancel flag as a shareable atomic handle — the form
    /// engines outside the SAT stack (e.g. heuristic trial loops) poll
    /// between units of work. Reading the handle is equivalent to
    /// [`SolveControl::is_cancelled`]; storing `true` is equivalent to
    /// [`SolveControl::cancel`].
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }
}

/// Configuration of the exact mapper.
///
/// The default reproduces the paper's Section 3 method: permutations
/// allowed before every gate, no subset restriction, the 7/4 cost model,
/// and unbounded linear-descent minimization.
///
/// ```
/// use qxmap_core::{MapperConfig, Strategy};
///
/// let cfg = MapperConfig::minimal();
/// assert_eq!(cfg.strategy, Strategy::BeforeEveryGate);
/// assert!(!cfg.use_subsets);
/// let fast = MapperConfig::minimal()
///     .with_strategy(Strategy::DisjointQubits)
///     .with_subsets(true);
/// assert!(fast.use_subsets);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MapperConfig {
    /// Where layout permutations are allowed (Section 4.2).
    pub strategy: Strategy,
    /// Whether to iterate over connected physical-qubit subsets of size `n`
    /// when `n < m` (Section 4.1). Preserves minimality.
    pub use_subsets: bool,
    /// Cost accounting for inserted operations.
    pub cost_model: CostModel,
    /// Objective-minimization schedule and budget. With the subset
    /// optimization enabled, the conflict budget is a *total* shared
    /// across all per-subset subinstances (enforced through one atomic
    /// pool even when they solve in parallel), not a per-subset allowance.
    pub minimize: MinimizeOptions,
    /// Wall-clock budget for the whole `map` call. When it fires, the
    /// best mapping found so far is returned with `proved_optimal =
    /// false` (or `MapError::BudgetExhausted` if none was found yet).
    /// Checked cooperatively — at solver conflicts and between encoding
    /// phases — so a run overshoots the deadline by at most one such
    /// step.
    pub deadline: Option<Duration>,
    /// Worker threads for the per-subset solves (`None` = the machine's
    /// available parallelism, capped by the number of subsets). The
    /// workers share the conflict budget and the upper bound, so more
    /// threads never search more than the sequential loop would.
    pub solve_threads: Option<usize>,
    /// Cancellation and shared-bound handle. Give several concurrent
    /// runs clones of one handle to let them prune (and stop) each
    /// other; the default handle is private to this configuration.
    pub control: SolveControl,
    /// Trace recorder for per-subset encode/minimize spans
    /// ([`crate::trace`]). Defaults to the disabled recorder, whose
    /// recording calls are free no-ops.
    pub trace: SpanRecorder,
}

impl MapperConfig {
    /// The guaranteed-minimal configuration of Section 3.
    pub fn minimal() -> MapperConfig {
        MapperConfig::default()
    }

    /// Sets the permutation-site strategy (builder style).
    pub fn with_strategy(mut self, strategy: Strategy) -> MapperConfig {
        self.strategy = strategy;
        self
    }

    /// Enables/disables the subset optimization (builder style).
    pub fn with_subsets(mut self, on: bool) -> MapperConfig {
        self.use_subsets = on;
        self
    }

    /// Sets the cost model (builder style).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> MapperConfig {
        self.cost_model = cost_model;
        self
    }

    /// Sets the minimization options (builder style).
    pub fn with_minimize(mut self, minimize: MinimizeOptions) -> MapperConfig {
        self.minimize = minimize;
        self
    }

    /// Attaches a trace recorder: per-subset encoding and minimization
    /// spans (build time, conflicts, interrupt cause) land on it
    /// (builder style).
    pub fn with_trace(mut self, trace: SpanRecorder) -> MapperConfig {
        self.trace = trace;
        self
    }

    /// Sets the wall-clock deadline (builder style).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> MapperConfig {
        self.deadline = deadline;
        self
    }

    /// Sets the per-subset worker-thread count (builder style).
    pub fn with_solve_threads(mut self, threads: Option<usize>) -> MapperConfig {
        self.solve_threads = threads;
        self
    }

    /// Attaches a shared cancellation/bound handle (builder style).
    pub fn with_control(mut self, control: SolveControl) -> MapperConfig {
        self.control = control;
        self
    }

    /// Whether this configuration guarantees a minimal result
    /// (Section 4.2 strategies give up the guarantee, as does any
    /// conflict or wall-clock budget; Section 4.1 and the full method
    /// keep it).
    pub fn guarantees_minimality(&self) -> bool {
        self.strategy == Strategy::BeforeEveryGate
            && self.minimize.conflict_budget.is_none()
            && self.deadline.is_none()
    }
}

/// Errors of the exact mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The circuit has more logical qubits than the device has physical
    /// qubits.
    TooManyQubits {
        /// Logical qubits required.
        logical: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The instance (possibly restricted by a Section 4.2 strategy) admits
    /// no valid mapping.
    Infeasible,
    /// A solve budget — the conflict budget, the wall-clock deadline, or
    /// an external cancellation — ran out before any mapping was found.
    BudgetExhausted,
    /// The exact method is exhaustive over permutations; devices (or
    /// subsets) beyond this size are out of its intended regime.
    DeviceTooLarge {
        /// Qubits in the (sub)device.
        qubits: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::TooManyQubits { logical, physical } => {
                qxmap_arch::errors::fmt_too_many_qubits(f, *logical, *physical)
            }
            MapError::Infeasible => {
                write!(f, "no valid mapping exists under the chosen restrictions")
            }
            MapError::BudgetExhausted => {
                write!(
                    f,
                    "the solve budget (conflicts or deadline) ran out before a mapping was found"
                )
            }
            MapError::DeviceTooLarge { qubits, max } => write!(
                f,
                "exact mapping enumerates all qubit permutations; {qubits} qubits exceeds the supported {max}"
            ),
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_minimal() {
        assert!(MapperConfig::default().guarantees_minimality());
        assert!(MapperConfig::minimal().guarantees_minimality());
    }

    #[test]
    fn strategies_lose_guarantee() {
        let cfg = MapperConfig::minimal().with_strategy(Strategy::OddGates);
        assert!(!cfg.guarantees_minimality());
        // Subsets alone keep it.
        let cfg = MapperConfig::minimal().with_subsets(true);
        assert!(cfg.guarantees_minimality());
    }

    #[test]
    fn budget_loses_guarantee() {
        let cfg = MapperConfig::minimal().with_minimize(qxmap_sat::MinimizeOptions {
            conflict_budget: Some(100),
            ..Default::default()
        });
        assert!(!cfg.guarantees_minimality());
    }

    #[test]
    fn error_messages() {
        let e = MapError::TooManyQubits {
            logical: 6,
            physical: 5,
        };
        assert!(e.to_string().contains("6 logical"));
        assert!(MapError::Infeasible
            .to_string()
            .contains("no valid mapping"));
        let e = MapError::DeviceTooLarge { qubits: 16, max: 8 };
        assert!(e.to_string().contains("16"));
    }
}
