//! Mapper configuration and errors.

use std::error::Error;
use std::fmt;

use qxmap_arch::CostModel;
use qxmap_sat::MinimizeOptions;

use crate::strategy::Strategy;

/// Configuration of the exact mapper.
///
/// The default reproduces the paper's Section 3 method: permutations
/// allowed before every gate, no subset restriction, the 7/4 cost model,
/// and unbounded linear-descent minimization.
///
/// ```
/// use qxmap_core::{MapperConfig, Strategy};
///
/// let cfg = MapperConfig::minimal();
/// assert_eq!(cfg.strategy, Strategy::BeforeEveryGate);
/// assert!(!cfg.use_subsets);
/// let fast = MapperConfig::minimal()
///     .with_strategy(Strategy::DisjointQubits)
///     .with_subsets(true);
/// assert!(fast.use_subsets);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MapperConfig {
    /// Where layout permutations are allowed (Section 4.2).
    pub strategy: Strategy,
    /// Whether to iterate over connected physical-qubit subsets of size `n`
    /// when `n < m` (Section 4.1). Preserves minimality.
    pub use_subsets: bool,
    /// Cost accounting for inserted operations.
    pub cost_model: CostModel,
    /// Objective-minimization schedule and budget. With the subset
    /// optimization enabled, the conflict budget is a *total* shared
    /// across all per-subset subinstances, not a per-subset allowance.
    pub minimize: MinimizeOptions,
}

impl MapperConfig {
    /// The guaranteed-minimal configuration of Section 3.
    pub fn minimal() -> MapperConfig {
        MapperConfig::default()
    }

    /// Sets the permutation-site strategy (builder style).
    pub fn with_strategy(mut self, strategy: Strategy) -> MapperConfig {
        self.strategy = strategy;
        self
    }

    /// Enables/disables the subset optimization (builder style).
    pub fn with_subsets(mut self, on: bool) -> MapperConfig {
        self.use_subsets = on;
        self
    }

    /// Sets the cost model (builder style).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> MapperConfig {
        self.cost_model = cost_model;
        self
    }

    /// Sets the minimization options (builder style).
    pub fn with_minimize(mut self, minimize: MinimizeOptions) -> MapperConfig {
        self.minimize = minimize;
        self
    }

    /// Whether this configuration guarantees a minimal result
    /// (Section 4.2 strategies give up the guarantee; Section 4.1 and the
    /// full method keep it).
    pub fn guarantees_minimality(&self) -> bool {
        self.strategy == Strategy::BeforeEveryGate && self.minimize.conflict_budget.is_none()
    }
}

/// Errors of the exact mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The circuit has more logical qubits than the device has physical
    /// qubits.
    TooManyQubits {
        /// Logical qubits required.
        logical: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The instance (possibly restricted by a Section 4.2 strategy) admits
    /// no valid mapping.
    Infeasible,
    /// The conflict budget was exhausted before any mapping was found.
    BudgetExhausted,
    /// The exact method is exhaustive over permutations; devices (or
    /// subsets) beyond this size are out of its intended regime.
    DeviceTooLarge {
        /// Qubits in the (sub)device.
        qubits: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::TooManyQubits { logical, physical } => {
                qxmap_arch::errors::fmt_too_many_qubits(f, *logical, *physical)
            }
            MapError::Infeasible => {
                write!(f, "no valid mapping exists under the chosen restrictions")
            }
            MapError::BudgetExhausted => {
                write!(f, "conflict budget exhausted before a mapping was found")
            }
            MapError::DeviceTooLarge { qubits, max } => write!(
                f,
                "exact mapping enumerates all qubit permutations; {qubits} qubits exceeds the supported {max}"
            ),
        }
    }
}

impl Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_minimal() {
        assert!(MapperConfig::default().guarantees_minimality());
        assert!(MapperConfig::minimal().guarantees_minimality());
    }

    #[test]
    fn strategies_lose_guarantee() {
        let cfg = MapperConfig::minimal().with_strategy(Strategy::OddGates);
        assert!(!cfg.guarantees_minimality());
        // Subsets alone keep it.
        let cfg = MapperConfig::minimal().with_subsets(true);
        assert!(cfg.guarantees_minimality());
    }

    #[test]
    fn budget_loses_guarantee() {
        let cfg = MapperConfig::minimal().with_minimize(qxmap_sat::MinimizeOptions {
            conflict_budget: Some(100),
            ..Default::default()
        });
        assert!(!cfg.guarantees_minimality());
    }

    #[test]
    fn error_messages() {
        let e = MapError::TooManyQubits {
            logical: 6,
            physical: 5,
        };
        assert!(e.to_string().contains("6 logical"));
        assert!(MapError::Infeasible
            .to_string()
            .contains("no valid mapping"));
        let e = MapError::DeviceTooLarge { qubits: 16, max: 8 };
        assert!(e.to_string().contains("16"));
    }
}
