//! Assembling a mapped circuit from a satisfying model.
//!
//! The reasoning engine fixes the layouts `x^k` and permutations `y^k`; this
//! module replays the original circuit (single-qubit gates included, which
//! the encoding ignored), inserting the witness SWAP sequences at change
//! points and the 4-H repairs on reversed CNOTs — producing the final
//! hardware circuit exactly as in Fig. 5 of the paper.

use std::collections::BTreeMap;
use std::time::Duration;

use qxmap_arch::{route, CostedSwapTable, CouplingMap, Layout, Permutation};
use qxmap_circuit::{Circuit, Gate};

/// Where one skeleton CNOT ended up on hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatePlacement {
    /// Index into the CNOT skeleton.
    pub gate: usize,
    /// Logical control qubit.
    pub control: usize,
    /// Logical target qubit.
    pub target: usize,
    /// Physical qubit executing the control.
    pub phys_control: usize,
    /// Physical qubit executing the target.
    pub phys_target: usize,
    /// Whether the CNOT ran against its coupling edge (4 H repair).
    pub reversed: bool,
}

/// The outcome of an exact mapping run.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// The minimal objective value `F` (Eq. 5) found by the engine:
    /// the modelled cost of inserted SWAP and H operations.
    pub cost: u64,
    /// Gates actually added (`mapped.original_cost() − original cost`);
    /// equals [`MappingResult::cost`] whenever the cost model matches the
    /// device (it always does for the IBM QX maps).
    pub added_gates: u64,
    /// Number of SWAP operations inserted.
    pub swaps: u32,
    /// Number of direction-reversed CNOTs (each costing 4 H gates).
    pub reversals: u32,
    /// The reconstructed hardware circuit.
    pub mapped: Circuit,
    /// Logical→physical assignment before the first gate.
    pub initial_layout: Layout,
    /// Logical→physical assignment after the last gate.
    pub final_layout: Layout,
    /// The physical qubits the mapping was restricted to (Section 4.1) —
    /// the full device when subsets were disabled.
    pub subset: Vec<usize>,
    /// Number of allowed permutation points `|G'|`.
    pub num_change_points: usize,
    /// Per-skeleton-gate placements.
    pub placements: Vec<GatePlacement>,
    /// Whether the engine proved this cost minimal for the configured
    /// formulation.
    pub proved_optimal: bool,
    /// Solver invocations spent in minimization.
    pub iterations: u32,
    /// Wall-clock time of the whole mapping call.
    pub runtime: Duration,
}

impl MappingResult {
    /// The mapped circuit's total operation count (the paper's column `c`).
    pub fn mapped_cost(&self) -> usize {
        self.mapped.original_cost()
    }
}

/// Replays `circuit` under the solved layouts, emitting hardware gates.
///
/// * `layouts[k][j]` — local physical position of logical `j` before
///   skeleton gate `k`;
/// * `perms` — permutation applied before gate `k` (change points only);
/// * `subset[i]` — global physical qubit of local index `i`;
/// * `table` — the cost-weighted table whose witness sequences realize
///   each permutation at the model's cheapest SWAP-chain price.
pub(crate) fn assemble(
    circuit: &Circuit,
    cm: &CouplingMap,
    subset: &[usize],
    layouts: &[Vec<usize>],
    perms: &BTreeMap<usize, Permutation>,
    table: &CostedSwapTable,
) -> (Circuit, Layout, Layout, u32, u32, Vec<GatePlacement>) {
    let n = circuit.num_qubits();
    let m = cm.num_qubits();
    let mut out = Circuit::with_clbits(m, circuit.num_clbits());

    let mut layout = Layout::new(n, m);
    for (j, &i_local) in layouts[0].iter().enumerate() {
        layout
            .assign(j, subset[i_local])
            .expect("solver layouts are injective");
    }
    let initial_layout = layout.clone();

    let mut swaps = 0u32;
    let mut reversals = 0u32;
    let mut placements = Vec::new();
    let mut k = 0usize; // skeleton index

    for gate in circuit.gates() {
        match gate {
            Gate::Cnot { control, target } => {
                if let Some(pi) = perms.get(&k) {
                    let seq = table.sequence(pi).expect("chosen perms are realizable");
                    for &(la, lb) in seq {
                        let (ga, gb) = (subset[la], subset[lb]);
                        route::emit_swap(&mut out, cm, ga, gb).expect("witness swaps lie on edges");
                        layout.swap_phys(ga, gb);
                        swaps += 1;
                    }
                }
                debug_assert_eq!(
                    (0..n)
                        .map(|j| layout.phys_of(j).expect("complete layout"))
                        .collect::<Vec<_>>(),
                    layouts[k].iter().map(|&i| subset[i]).collect::<Vec<_>>(),
                    "replayed layout diverged from the model at gate {k}"
                );
                let pc = layout.phys_of(*control).expect("complete layout");
                let pt = layout.phys_of(*target).expect("complete layout");
                let emitted =
                    route::emit_cnot(&mut out, cm, pc, pt).expect("solved placements are adjacent");
                let reversed = emitted > 1;
                if reversed {
                    reversals += 1;
                }
                placements.push(GatePlacement {
                    gate: k,
                    control: *control,
                    target: *target,
                    phys_control: pc,
                    phys_target: pt,
                    reversed,
                });
                k += 1;
            }
            Gate::One { kind, qubit } => {
                let p = layout.phys_of(*qubit).expect("complete layout");
                out.one(*kind, p);
            }
            Gate::Swap { .. } => {
                unreachable!("SWAPs are decomposed before mapping")
            }
            Gate::Barrier(qs) => {
                let mapped: Vec<usize> = qs
                    .iter()
                    .map(|&q| layout.phys_of(q).expect("complete layout"))
                    .collect();
                out.push(Gate::Barrier(mapped));
            }
            Gate::Measure { qubit, clbit } => {
                let p = layout.phys_of(*qubit).expect("complete layout");
                out.measure(p, *clbit);
            }
        }
    }

    (out, initial_layout, layout, swaps, reversals, placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;

    #[test]
    fn assemble_identity_no_insertions() {
        // CNOT(0,1) placed on edge (1,0): q0→p1, q1→p0; no perms.
        let cm = devices::ibm_qx4();
        let table = CostedSwapTable::new(&cm);
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let layouts = vec![vec![1usize, 0]];
        let subset: Vec<usize> = (0..5).collect();
        let (out, init, fin, swaps, revs, placements) =
            assemble(&c, &cm, &subset, &layouts, &BTreeMap::new(), &table);
        assert_eq!(swaps, 0);
        assert_eq!(revs, 0);
        assert_eq!(out.original_cost(), 2);
        assert_eq!(init, fin);
        assert_eq!(init.phys_of(0), Some(1));
        assert_eq!(placements[0].phys_control, 1);
        // The H gate follows q0 to p1.
        assert_eq!(out.gates()[0], Gate::one(qxmap_circuit::OneQubitKind::H, 1));
    }

    #[test]
    fn assemble_with_permutation_inserts_swaps() {
        let cm = devices::ibm_qx4();
        let table = CostedSwapTable::new(&cm);
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(0, 1);
        // Before gate 1, swap p0 and p1 (τ01): layout q0: p1→p0, q1: p0→p1.
        let tau = Permutation::transposition(5, 0, 1);
        let layouts = vec![vec![1usize, 0], vec![0usize, 1]];
        let mut perms = BTreeMap::new();
        perms.insert(1usize, tau);
        let subset: Vec<usize> = (0..5).collect();
        let (out, init, fin, swaps, revs, _) = assemble(&c, &cm, &subset, &layouts, &perms, &table);
        assert_eq!(swaps, 1);
        assert_eq!(init.phys_of(0), Some(1));
        assert_eq!(fin.phys_of(0), Some(0));
        // 1 CNOT + 7 (swap) + CNOT reversed (1+4 H) = costs: 1 + 7 + 5.
        assert_eq!(out.original_cost(), 13);
        assert_eq!(revs, 1);
    }

    #[test]
    fn assemble_maps_measurements_and_barriers() {
        let cm = devices::ibm_qx4();
        let table = CostedSwapTable::new(&cm);
        let mut c = Circuit::with_clbits(2, 2);
        c.cx(0, 1);
        c.barrier();
        c.measure(0, 0);
        let layouts = vec![vec![2usize, 0]];
        let subset: Vec<usize> = (0..5).collect();
        let (out, ..) = assemble(&c, &cm, &subset, &layouts, &BTreeMap::new(), &table);
        assert!(matches!(
            out.gates().last(),
            Some(Gate::Measure { qubit: 2, clbit: 0 })
        ));
        assert!(out
            .gates()
            .iter()
            .any(|g| matches!(g, Gate::Barrier(qs) if qs == &vec![2, 0])));
    }
}
