//! The symbolic formulation of the mapping problem (Section 3.2).
//!
//! Builds, for one choice of physical-qubit subset and change-point set, a
//! CNF instance over:
//!
//! * mapping variables `x^k_{ij}` (Definition 4),
//! * permutation selectors `y^k_π` (Definition 5, in the footnote-5 form:
//!   exactly-one selector per change point plus `y^k_π →` transition
//!   implications — correct for all `n ≤ m` and smaller than the printed
//!   equivalence),
//! * edge-use selectors `u^k_{e,o}` Tseitin-encoding Eq. (2)'s disjunction,
//!   with the reversed-orientation selectors carrying the per-edge 4-H
//!   repair weight directly (generalizing the paper's per-gate `z^k` flag
//!   to calibration-aware costs),
//!
//! and the weighted objective of Eq. (5). Every weight — the SWAP cost of
//! each permutation and the reversal surcharge of each edge — is read from
//! the [`DeviceModel`], the workspace's single authority on device costs;
//! the paper's uniform 7/4 accounting is simply the default model.

use std::collections::BTreeSet;

use qxmap_arch::{CostedSwapTable, DeviceModel, Permutation};
use qxmap_sat::{encode, Lit, Model, Solver};

/// Size statistics of one built SAT instance — the quantities behind the
/// paper's search-space discussion (`n·m·|G|` mapping variables,
/// Example 5; subset reduction, Example 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingStats {
    /// Total solver variables (mapping + selectors + auxiliaries).
    pub variables: usize,
    /// Problem clauses.
    pub clauses: usize,
    /// Mapping variables `x^k_{ij}` only (= `n·m·|G|`).
    pub mapping_variables: usize,
    /// Number of change points `|G'|`.
    pub change_points: usize,
    /// Permutations considered per change point (`|Π|`).
    pub permutations: usize,
    /// Objective terms in Eq. (5).
    pub objective_terms: usize,
    /// Wall-clock time the encoding took to build, in microseconds —
    /// the per-subset counter solve traces attach to their `encode`
    /// spans.
    pub build_us: u64,
}

/// A built SAT instance for one mapping subproblem.
pub(crate) struct Encoding {
    /// The solver holding all clauses.
    pub solver: Solver,
    /// `x[k][i][j]`: before skeleton gate `k`, logical `j` sits on local
    /// physical `i`.
    x: Vec<Vec<Vec<Lit>>>,
    /// For each change point (ascending): `(gate index, per-permutation
    /// selector literals aligned with `perms`)`.
    y: Vec<(usize, Vec<Lit>)>,
    /// All realizable permutations of the local subgraph (sorted).
    perms: Vec<Permutation>,
    /// The weighted objective terms of Eq. (5).
    pub objective: Vec<(u64, Lit)>,
    num_logical: usize,
    num_phys: usize,
    build_time: std::time::Duration,
}

impl Encoding {
    /// Builds the instance.
    ///
    /// * `skeleton` — CNOT list over logical qubits `0..num_logical`
    ///   (must be non-empty; trivial circuits are handled by the caller);
    /// * `local_model` — device model of the chosen subset, in local
    ///   indices (supplies the coupling map and every objective weight);
    /// * `table` — cost-weighted `swaps(π)` table of the same subgraph,
    ///   priced under the same model;
    /// * `change_points` — `G'` (0-based skeleton indices, none equal 0).
    pub fn build(
        skeleton: &[(usize, usize)],
        num_logical: usize,
        local_model: &DeviceModel,
        table: &CostedSwapTable,
        change_points: &BTreeSet<usize>,
    ) -> Encoding {
        Encoding::build_interruptible(
            skeleton,
            num_logical,
            local_model,
            table,
            change_points,
            &mut || false,
        )
        .expect("uninterruptible build always completes")
    }

    /// [`Encoding::build`] with a cooperative stop check, polled between
    /// permutations of the transition encoding — for an 8-qubit subset
    /// that is one check per ~40 000 clause batches, so a deadline or
    /// cancellation lands long before the multi-million-clause instance
    /// finishes building. Returns `None` when `interrupted` fired.
    pub fn build_interruptible(
        skeleton: &[(usize, usize)],
        num_logical: usize,
        local_model: &DeviceModel,
        table: &CostedSwapTable,
        change_points: &BTreeSet<usize>,
        interrupted: &mut dyn FnMut() -> bool,
    ) -> Option<Encoding> {
        assert!(!skeleton.is_empty(), "trivial circuits bypass the encoding");
        let build_start = std::time::Instant::now();
        let local_cm = local_model.coupling_map();
        let k_gates = skeleton.len();
        let m = local_cm.num_qubits();
        assert!(num_logical <= m, "subset smaller than logical register");
        debug_assert!(change_points.iter().all(|&k| k >= 1 && k < k_gates));

        let mut solver = Solver::new();
        let mut objective: Vec<(u64, Lit)> = Vec::new();

        // --- mapping variables + Eq. (1) -----------------------------------
        let mut x: Vec<Vec<Vec<Lit>>> = Vec::with_capacity(k_gates);
        for _ in 0..k_gates {
            let step: Vec<Vec<Lit>> = (0..m)
                .map(|_| (0..num_logical).map(|_| solver.new_lit()).collect())
                .collect();
            x.push(step);
        }
        for step in &x {
            // Each logical qubit on exactly one physical qubit...
            for j in 0..num_logical {
                let col: Vec<Lit> = step.iter().map(|row| row[j]).collect();
                encode::exactly_one(&mut solver, &col);
            }
            // ... and each physical qubit holds at most one logical qubit.
            for row in step.iter() {
                encode::at_most_one(&mut solver, row);
            }
        }

        // --- gate executability, Eq. (2) + refined Eq. (4) ------------------
        for (k, &(c, t)) in skeleton.iter().enumerate() {
            if interrupted() {
                return None;
            }
            let mut options: Vec<Lit> = Vec::new();
            for (a, b) in local_cm.edges().collect::<Vec<_>>() {
                // Forward use: control on a, target on b. The selector
                // carries the hosting edge's execution overhead — the
                // CNOT cost above the baseline 1, zero under the default
                // models — so a calibrated dear edge repels placements.
                let u = solver.new_lit();
                solver.add_clause([!u, x[k][a][c]]);
                solver.add_clause([!u, x[k][b][t]]);
                let w = local_model
                    .execution_overhead(a, b)
                    .expect("(a,b) is an edge");
                if w > 0 {
                    objective.push((w, u));
                }
                options.push(u);
                // Reversed use (only when the opposite edge is absent;
                // otherwise that placement is the opposite edge's forward
                // use and costs nothing). The selector carries the edge's
                // own 4-H repair weight plus its CNOT surcharge, so
                // calibration-skewed costs price each hosting edge
                // differently; a minimal model never pays for more than
                // one cost-bearing selector per gate (clearing an
                // unneeded one only lowers cost).
                if !local_cm.has_edge(b, a) {
                    let ur = solver.new_lit();
                    solver.add_clause([!ur, x[k][b][c]]);
                    solver.add_clause([!ur, x[k][a][t]]);
                    let w = local_model
                        .execution_overhead(b, a)
                        .expect("(a,b) exists and (b,a) does not");
                    if w > 0 {
                        objective.push((w, ur));
                    }
                    options.push(ur);
                }
            }
            // Eq. (2): some edge hosts the gate.
            encode::at_least_one(&mut solver, &options);
        }

        // --- transitions: frame equality or selected permutation ------------
        let perms = table.permutations_sorted();
        let mut y: Vec<(usize, Vec<Lit>)> = Vec::new();
        for k in 1..k_gates {
            if change_points.contains(&k) {
                let selectors: Vec<Lit> = (0..perms.len()).map(|_| solver.new_lit()).collect();
                encode::exactly_one(&mut solver, &selectors);
                for (pi_idx, pi) in perms.iter().enumerate() {
                    if interrupted() {
                        return None;
                    }
                    let sel = selectors[pi_idx];
                    // y^k_π ∧ x^{k-1}_{ij} → x^k_{π(i)j}; with the
                    // exactly-one column constraints this pins the whole
                    // transition (footnote 5).
                    for i in 0..m {
                        let pi_i = pi.apply(i);
                        for (&from, &to) in x[k - 1][i].iter().zip(&x[k][pi_i]) {
                            solver.add_clause([!sel, !from, to]);
                        }
                    }
                    let cost = table.cost(pi).expect("perm comes from the table");
                    if cost > 0 {
                        objective.push((cost, sel));
                    }
                }
                y.push((k, selectors));
            } else {
                // Layout frozen across this gate.
                for (prev_row, next_row) in x[k - 1].iter().zip(&x[k]) {
                    for (&from, &to) in prev_row.iter().zip(next_row) {
                        solver.add_clause([!from, to]);
                    }
                }
            }
        }

        Some(Encoding {
            solver,
            x,
            y,
            perms,
            objective,
            num_logical,
            num_phys: m,
            build_time: build_start.elapsed(),
        })
    }

    /// Size statistics of this instance.
    pub fn stats(&self) -> EncodingStats {
        EncodingStats {
            variables: self.solver.num_vars(),
            clauses: self.solver.num_clauses(),
            mapping_variables: self.x.len() * self.num_phys * self.num_logical,
            change_points: self.y.len(),
            permutations: self.perms.len(),
            objective_terms: self.objective.len(),
            build_us: u64::try_from(self.build_time.as_micros()).unwrap_or(u64::MAX),
        }
    }

    /// Reads the per-step layouts out of a model: `layouts[k][j]` is the
    /// local physical qubit of logical `j` before skeleton gate `k`.
    ///
    /// # Panics
    ///
    /// Panics if the model violates the exactly-one structure (cannot
    /// happen for models produced from this encoding).
    pub fn extract_layouts(&self, model: &Model) -> Vec<Vec<usize>> {
        self.x
            .iter()
            .map(|step| {
                (0..self.num_logical)
                    .map(|j| {
                        let placements: Vec<usize> = (0..self.num_phys)
                            .filter(|&i| model.value(step[i][j]))
                            .collect();
                        assert_eq!(placements.len(), 1, "x-variables must be exactly-one");
                        placements[0]
                    })
                    .collect()
            })
            .collect()
    }

    /// Reads the permutation chosen at each change point:
    /// `(gate index, π)` pairs, ascending by gate index.
    ///
    /// # Panics
    ///
    /// Panics if a change point has no (or several) selected permutations.
    pub fn extract_permutations(&self, model: &Model) -> Vec<(usize, Permutation)> {
        self.y
            .iter()
            .map(|(k, selectors)| {
                let chosen: Vec<usize> = (0..selectors.len())
                    .filter(|&idx| model.value(selectors[idx]))
                    .collect();
                assert_eq!(chosen.len(), 1, "y-selectors must be exactly-one");
                (*k, self.perms[chosen[0]].clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::{devices, CouplingMap};
    use qxmap_sat::{minimize, MinimizeOptions};

    fn qx4_model() -> (DeviceModel, CostedSwapTable) {
        let model = DeviceModel::new(devices::ibm_qx4());
        let table = CostedSwapTable::new(model.coupling_map());
        (model, table)
    }

    #[test]
    fn stats_report_instance_sizes() {
        let (model, table) = qx4_model();
        let skeleton = [(2, 3), (0, 1), (1, 2), (0, 2), (2, 0)];
        let points = (1..skeleton.len()).collect();
        let enc = Encoding::build(&skeleton, 4, &model, &table, &points);
        let st = enc.stats();
        // Example 5: n·m·|G| = 4·5·5 = 100 mapping variables.
        assert_eq!(st.mapping_variables, 100);
        assert_eq!(st.change_points, 4);
        assert_eq!(st.permutations, 120);
        assert!(st.variables >= st.mapping_variables);
        assert!(st.clauses > 0);
        assert!(st.objective_terms > 0);
    }

    #[test]
    fn single_legal_gate_costs_zero() {
        let (model, table) = qx4_model();
        // CNOT(q0, q1) can sit directly on edge (1,0) etc.
        let mut enc = Encoding::build(&[(0, 1)], 2, &model, &table, &BTreeSet::new());
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 0);
        let layouts = enc.extract_layouts(&min.model);
        let (pc, pt) = (layouts[0][0], layouts[0][1]);
        assert!(
            model.coupling_map().has_edge(pc, pt),
            "direct edge chosen at zero cost"
        );
    }

    #[test]
    fn forced_reversal_costs_four() {
        // Two opposed CNOTs on the same pair: one must be reversed (or a
        // SWAP inserted, which is dearer).
        let (model, table) = qx4_model();
        let skeleton = [(0, 1), (1, 0)];
        let points = [1usize].into_iter().collect();
        let mut enc = Encoding::build(&skeleton, 2, &model, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 4);
    }

    #[test]
    fn calibrated_reversal_costs_reprice_the_repair() {
        // Same instance, but reversing against p2→p1 is made dear: the
        // minimum moves to another hosting edge's (default) price.
        let cm = devices::ibm_qx4();
        let model = DeviceModel::new(cm).with_reversal_cost(1, 2, 100);
        let table = CostedSwapTable::new(model.coupling_map());
        let skeleton = [(0, 1), (1, 0)];
        let points = [1usize].into_iter().collect();
        let mut enc = Encoding::build(&skeleton, 2, &model, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        // Other pairs still repair for 4; only (1 → 2) costs 100.
        assert_eq!(min.cost, 4);

        // Shrink the device to one edge: the opposed pair is repaired by
        // whichever of (calibrated) SWAP and reversal is cheaper.
        let tiny = CouplingMap::from_edges(2, [(1, 0)]).unwrap();
        let base = DeviceModel::new(tiny).with_reversal_cost(0, 1, 100);
        // Default SWAP (7) now beats the dear reversal (100)...
        let table = CostedSwapTable::new(base.coupling_map());
        let mut enc = Encoding::build(&skeleton, 2, &base, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 7);
        // ... until the SWAP is calibrated dearer still.
        let model = base.with_swap_cost(0, 1, 300);
        let table = model.costed_table(&[0, 1]);
        let mut enc = Encoding::build(&skeleton, 2, &model, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 100);
    }

    #[test]
    fn cnot_surcharge_steers_and_prices_placement() {
        // Two coupled pairs; surcharging one CNOT edge moves the gate to
        // the other for free.
        let cm = devices::linear(3); // edges (0,1), (1,2)
        let model = DeviceModel::new(cm).with_cnot_cost(0, 1, 5);
        let table = CostedSwapTable::new(model.coupling_map());
        let mut enc = Encoding::build(&[(0, 1)], 2, &model, &table, &BTreeSet::new());
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 0, "the uncalibrated edge hosts the gate");

        // With a single edge the surcharge is unavoidable: a forward
        // placement pays cnot−1 = 4, beating the reversed 4 + 4.
        let model = DeviceModel::new(devices::linear(2)).with_cnot_cost(0, 1, 5);
        let table = CostedSwapTable::new(model.coupling_map());
        let mut enc = Encoding::build(&[(0, 1)], 2, &model, &table, &BTreeSet::new());
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 4);
    }

    #[test]
    fn paper_example_minimal_cost_is_four() {
        // Example 7: F = 4 for the Fig. 1 circuit on QX4.
        let (model, table) = qx4_model();
        let skeleton = [(2, 3), (0, 1), (1, 2), (0, 2), (2, 0)];
        let points = (1..skeleton.len()).collect();
        let mut enc = Encoding::build(&skeleton, 4, &model, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 4);
        assert!(min.proved_optimal);
        // All transitions must be identity (cost 4 = one reversal, no swaps).
        for (_, pi) in enc.extract_permutations(&min.model) {
            assert!(pi.is_identity());
        }
    }

    #[test]
    fn no_change_points_freezes_layout() {
        let (model, table) = qx4_model();
        // Two gates needing different neighbourhoods with a frozen layout:
        // CNOT(0,1), CNOT(0,2), CNOT(0,3) — q0 needs 3 distinct partners.
        // On QX4, only p3 (index 2) has degree ≥ 3, so a frozen layout
        // exists (q0→p3); cost = reversals only.
        let skeleton = [(0, 1), (0, 2), (0, 3)];
        let mut enc = Encoding::build(&skeleton, 4, &model, &table, &BTreeSet::new());
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        let layouts = enc.extract_layouts(&min.model);
        // Frozen: all steps equal.
        assert_eq!(layouts[0], layouts[1]);
        assert_eq!(layouts[1], layouts[2]);
        assert_eq!(layouts[0][0], 2, "q0 must sit on the hub p3");
    }

    #[test]
    fn impossible_instance_is_unsat() {
        // A 3-qubit circuit on a 3-qubit *disconnected* device where q0
        // must talk to both others but has no second neighbour.
        let model = DeviceModel::new(CouplingMap::from_edges(3, [(0, 1)]).unwrap());
        let table = CostedSwapTable::new(model.coupling_map());
        let skeleton = [(0, 1), (0, 2)];
        let points = (1..2).collect();
        let mut enc = Encoding::build(&skeleton, 3, &model, &table, &points);
        let res = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn bidirectional_edges_never_pay_reversal() {
        // On a bidirectional pair, opposed CNOTs are free.
        let model = DeviceModel::new(CouplingMap::from_edges(2, [(0, 1), (1, 0)]).unwrap());
        let table = CostedSwapTable::new(model.coupling_map());
        let skeleton = [(0, 1), (1, 0)];
        let points = (1..2).collect();
        let mut enc = Encoding::build(&skeleton, 2, &model, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        assert_eq!(min.cost, 0);
    }

    #[test]
    fn swap_needed_on_line_costs_seven() {
        // Line 0→1→2, circuit CNOT(0,1), CNOT(0,2), permutation allowed
        // before g2: one SWAP (7) beats nothing else; reversals impossible
        // to avoid it.
        let model = DeviceModel::new(devices::linear(3));
        let table = CostedSwapTable::new(model.coupling_map());
        let skeleton = [(0, 1), (0, 2)];
        let points = (1..2).collect();
        let mut enc = Encoding::build(&skeleton, 3, &model, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        // Optimal: place q0@p1? (0,1): q0@p1,q1@p2? then edge (1,2): c@1,t@2 ✓;
        // (0,2): q0@p1, q2 must be adjacent: p0 — edge (0,1) reversed: 4 H.
        // So minimum is 4 (one reversal), not 7.
        assert_eq!(min.cost, 4);
        let perms = enc.extract_permutations(&min.model);
        assert!(perms.iter().all(|(_, pi)| pi.is_identity()));
    }

    #[test]
    fn extraction_is_consistent_with_transitions() {
        let (model, table) = qx4_model();
        let skeleton = [(0, 1), (2, 3), (0, 3)];
        let points = (1..3).collect();
        let mut enc = Encoding::build(&skeleton, 4, &model, &table, &points);
        let min = minimize(
            &mut enc.solver,
            &enc.objective.clone(),
            MinimizeOptions::default(),
        )
        .expect("satisfiable");
        let layouts = enc.extract_layouts(&min.model);
        let perms = enc.extract_permutations(&min.model);
        for (k, pi) in perms {
            for (&from, &to) in layouts[k - 1].iter().zip(&layouts[k]) {
                assert_eq!(pi.apply(from), to, "transition at {k} must follow π");
            }
        }
    }
}
