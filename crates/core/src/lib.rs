//! # qxmap-core
//!
//! Exact mapping of quantum circuits to IBM QX architectures using the
//! **minimal number of SWAP and H operations** — the primary contribution of
//! Wille, Burgholzer & Zulehner (DAC 2019), reimplemented on top of the
//! workspace's own reasoning engine (`qxmap-sat`).
//!
//! The mapping task is posed as a symbolic optimization problem
//! (Section 3.2 of the paper):
//!
//! * `x^k_{ij}` — logical qubit `q_j` sits on physical qubit `p_i` right
//!   before CNOT `g_k`;
//! * `y^k_π` — permutation `π` (realized by SWAPs) is applied before `g_k`;
//! * `z^k` — CNOT `g_k` runs against its coupling edge, repaired by 4 H
//!   gates;
//! * objective `F = Σ 7·swaps(π)·y^k_π + Σ 4·z^k` (Eq. 5), minimized by the
//!   CDCL engine's objective minimizer.
//!
//! Performance improvements from Section 4 are available through
//! [`MapperConfig`]: restricting to connected physical-qubit subsets (4.1)
//! and restricting permutation points with the *disjoint qubits*, *odd
//! gates* and *qubit triangle* strategies (4.2).
//!
//! ## Concurrency
//!
//! The Section 4.1 subinstances solve in parallel on a scoped worker
//! pool ([`MapperConfig::solve_threads`]); the workers share the total
//! conflict budget through one atomic pool and prune each other through
//! a [`SharedBound`] — the best achievable cost any of them has found,
//! searched strictly below. A [`SolveControl`] handle
//! ([`MapperConfig::control`]) exposes the same bound to external racers
//! (e.g. `qxmap-map`'s portfolio heuristics) and carries a cooperative
//! cancel flag; [`MapperConfig::deadline`] adds a wall-clock budget.
//! Deadlines and cancellation are polled at solver conflicts and between
//! encoding phases, so even 8-qubit instances (40 320 permutations per
//! change point) wind down promptly.
//!
//! ## Example: the paper's running example, minimal cost 4
//!
//! ```
//! use qxmap_arch::devices;
//! use qxmap_circuit::paper_example;
//! use qxmap_core::ExactMapper;
//!
//! let mapper = ExactMapper::new(devices::ibm_qx4());
//! let result = mapper.map(&paper_example())?;
//! assert_eq!(result.cost, 4); // Example 7: F = 4 (one reversed CNOT)
//! assert!(result.proved_optimal);
//! # Ok::<(), qxmap_core::MapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
mod config;
mod encoding;
mod solution;
mod solve;
mod strategy;
pub mod trace;
pub mod verify;

pub use bound::SharedBound;
pub use config::{MapError, MapperConfig, SolveControl};
pub use encoding::EncodingStats;
pub use solution::{GatePlacement, MappingResult};
pub use solve::{ExactMapper, MAX_EXACT_QUBITS};
pub use strategy::Strategy;
pub use trace::{SolveTrace, SpanRecorder, TraceSpan};
