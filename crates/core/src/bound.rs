//! Bounds on the mapping cost.
//!
//! Two kinds live here:
//!
//! * cheap *lower* bounds ([`lower_bound`], [`swap_free_minimum`]): the
//!   paper evaluates heuristics against the exact minimum; these give an
//!   instant sanity interval without invoking the reasoning engine —
//!   every exact result must lie between [`lower_bound`] and any
//!   heuristic's cost;
//! * a thread-shared, monotonically tightening *upper* bound
//!   ([`SharedBound`]): the best achievable cost any concurrent searcher
//!   has found so far, used by the parallel per-subset solves and by
//!   `qxmap-map`'s racing portfolio to prune each other's searches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qxmap_arch::{connected_subsets, CostModel, CouplingMap, Permutation};

/// A monotonically tightening upper bound on the objective, shared across
/// threads.
///
/// The stored value is *exclusive*: searchers must only look for (and
/// [`SharedBound::tighten`] only with) results **strictly below** it —
/// the same contract as `MinimizeOptions::initial_upper_bound`. Clones
/// share one cell; the bound only ever decreases.
///
/// ```
/// use qxmap_core::SharedBound;
///
/// let bound = SharedBound::unbounded();
/// assert_eq!(bound.get(), None);
/// assert!(bound.tighten(10));
/// assert!(bound.tighten(4));
/// assert!(!bound.tighten(7), "a looser value never loosens the bound");
/// assert_eq!(bound.get(), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct SharedBound {
    // `u64::MAX` encodes "unbounded".
    cell: Arc<AtomicU64>,
}

impl SharedBound {
    /// An unbounded bound (every cost is admissible).
    pub fn unbounded() -> SharedBound {
        SharedBound {
            cell: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// A bound starting at `initial` (`None` = unbounded).
    pub fn new(initial: Option<u64>) -> SharedBound {
        let bound = SharedBound::unbounded();
        if let Some(v) = initial {
            bound.tighten(v);
        }
        bound
    }

    /// The current bound, or `None` when still unbounded.
    pub fn get(&self) -> Option<u64> {
        match self.cell.load(Ordering::Relaxed) {
            u64::MAX => None,
            v => Some(v),
        }
    }

    /// Lowers the bound to `value` if that is strictly tighter; returns
    /// whether it was. (`u64::MAX` itself cannot be stored: it is the
    /// "unbounded" sentinel, and no real objective reaches it.)
    pub fn tighten(&self, value: u64) -> bool {
        self.cell.fetch_min(value, Ordering::Relaxed) > value
    }
}

impl Default for SharedBound {
    fn default() -> SharedBound {
        SharedBound::unbounded()
    }
}

/// The exact minimum cost over all **swap-free** mappings: the best total
/// H-repair cost over every placement of the `n` logical qubits onto a
/// connected physical subset, or `None` if no placement makes every CNOT
/// adjacent.
///
/// With zero SWAPs the layout is constant, so exhaustive enumeration of
/// `C(m, n)·n!` placements decides this exactly.
///
/// # Panics
///
/// Panics if `num_logical > 8` (enumeration guard).
pub fn swap_free_minimum(
    skeleton: &[(usize, usize)],
    num_logical: usize,
    cm: &CouplingMap,
    cost_model: CostModel,
) -> Option<u64> {
    assert!(num_logical <= 8, "enumeration limited to 8 logical qubits");
    let mut best: Option<u64> = None;
    for subset in connected_subsets(cm, num_logical) {
        for perm in Permutation::all(num_logical) {
            // Logical j sits on subset[perm(j)].
            let place = |j: usize| subset[perm.apply(j)];
            let mut cost = 0u64;
            let mut feasible = true;
            for &(c, t) in skeleton {
                let (pc, pt) = (place(c), place(t));
                if cm.has_edge(pc, pt) {
                    // free
                } else if cm.has_edge(pt, pc) {
                    cost += u64::from(cost_model.reverse);
                } else {
                    feasible = false;
                    break;
                }
            }
            if feasible {
                best = Some(best.map_or(cost, |b| b.min(cost)));
                if best == Some(0) {
                    return best;
                }
            }
        }
    }
    best
}

/// A sound lower bound on the minimal mapping cost `F`:
///
/// * if some swap-free placement exists, any solution either uses zero
///   SWAPs (cost ≥ the exact swap-free minimum) or at least one
///   (cost ≥ `cost_model.swap`) — the bound is the smaller of the two;
/// * if no swap-free placement exists, every solution pays for at least
///   one SWAP.
///
/// ```
/// use qxmap_arch::{devices, CostModel};
/// use qxmap_circuit::paper_example;
/// use qxmap_core::bound::lower_bound;
///
/// let skel = paper_example().cnot_skeleton();
/// let lb = lower_bound(&skel, 4, &devices::ibm_qx4(), CostModel::paper());
/// assert!(lb <= 4); // the true minimum is 4 (Example 7)
/// ```
pub fn lower_bound(
    skeleton: &[(usize, usize)],
    num_logical: usize,
    cm: &CouplingMap,
    cost_model: CostModel,
) -> u64 {
    if skeleton.is_empty() {
        return 0;
    }
    match swap_free_minimum(skeleton, num_logical, cm, cost_model) {
        Some(swap_free) => swap_free.min(u64::from(cost_model.swap)),
        None => u64::from(cost_model.swap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn paper_example_swap_free_minimum_is_four() {
        // The exact optimum (F = 4, zero swaps) is itself swap-free, so the
        // swap-free minimum equals 4 and the bound is min(4, 7) = 4: tight.
        let skel = paper_example().cnot_skeleton();
        let cm = devices::ibm_qx4();
        assert_eq!(
            swap_free_minimum(&skel, 4, &cm, CostModel::paper()),
            Some(4)
        );
        assert_eq!(lower_bound(&skel, 4, &cm, CostModel::paper()), 4);
    }

    #[test]
    fn trivially_legal_circuit_bounds_to_zero() {
        let cm = devices::ibm_qx4();
        let skel = [(1usize, 0usize)];
        assert_eq!(lower_bound(&skel, 2, &cm, CostModel::paper()), 0);
    }

    #[test]
    fn unembeddable_interaction_forces_a_swap() {
        // A 5-cycle of interactions cannot embed in QX4's tree-plus-two-
        // triangles undirected graph? It can: 0-1-2-... actually QX4 has
        // cycles; use a star interaction of degree 4 from one qubit plus a
        // ring so every vertex needs degree ≥ 2: K5-minus nothing… use the
        // complete interaction graph K5: max degree 4 exists (hub), but
        // every qubit pair must be adjacent, which QX4 (9 undirected edges
        // missing) cannot host.
        let cm = devices::ibm_qx4();
        let mut skel = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                skel.push((a, b));
            }
        }
        assert_eq!(swap_free_minimum(&skel, 5, &cm, CostModel::paper()), None);
        assert_eq!(lower_bound(&skel, 5, &cm, CostModel::paper()), 7);
    }

    #[test]
    fn shared_bound_tightens_monotonically_across_clones() {
        let bound = SharedBound::new(Some(9));
        let clone = bound.clone();
        assert_eq!(clone.get(), Some(9));
        assert!(clone.tighten(3));
        assert_eq!(bound.get(), Some(3), "clones share one cell");
        assert!(!bound.tighten(3), "equal values do not tighten");
        assert!(!bound.tighten(8));
        assert_eq!(bound.get(), Some(3));
        assert_eq!(SharedBound::default().get(), None);
    }

    #[test]
    fn empty_skeleton_is_zero() {
        let cm = devices::ibm_qx4();
        assert_eq!(lower_bound(&[], 3, &cm, CostModel::paper()), 0);
    }

    #[test]
    fn bound_never_exceeds_exact_cost() {
        use crate::ExactMapper;
        let cm = devices::ibm_qx4();
        let circuits: Vec<Vec<(usize, usize)>> = vec![
            vec![(0, 1), (1, 2), (2, 0)],
            vec![(0, 1), (2, 3), (0, 3), (1, 2)],
            vec![(0, 1), (1, 0), (0, 1)],
        ];
        for skel in circuits {
            let n = 4;
            let mut c = qxmap_circuit::Circuit::new(n);
            for &(a, b) in &skel {
                c.cx(a, b);
            }
            let exact = ExactMapper::new(cm.clone()).map(&c).unwrap().cost;
            let lb = lower_bound(&skel, n, &cm, CostModel::paper());
            assert!(lb <= exact, "lb {lb} > exact {exact} for {skel:?}");
        }
    }
}
