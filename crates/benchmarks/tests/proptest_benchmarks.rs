//! Property-based tests for workload generation and MCT decomposition.

use proptest::prelude::*;
use qxmap_benchmarks::{famous, mct, real, synthetic_circuit};
use qxmap_circuit::Circuit;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The synthetic generator hits its gate counts exactly for any shape.
    #[test]
    fn generator_counts_are_exact(
        n in 2usize..7,
        ones in 0usize..40,
        cnots in 0usize..40,
        seed in any::<u64>(),
    ) {
        let c = synthetic_circuit(n, ones, cnots, seed);
        prop_assert_eq!(c.num_qubits(), n);
        prop_assert_eq!(c.num_single_qubit_gates(), ones);
        prop_assert_eq!(c.num_cnots(), cnots);
        // Determinism.
        prop_assert_eq!(c, synthetic_circuit(n, ones, cnots, seed));
    }

    /// MCT decomposition always emits basis gates only, and the CNOT count
    /// grows with control count.
    #[test]
    fn mct_emits_basis_gates(controls in 0usize..4, extra_lines in 1usize..3) {
        let n = controls + 1 + extra_lines;
        let mut c = Circuit::new(n);
        let ctrl: Vec<usize> = (0..controls).collect();
        mct::append_mct(&mut c, &ctrl, controls).expect("enough ancillas");
        for g in c.gates() {
            match g {
                qxmap_circuit::Gate::One { kind, .. } => {
                    prop_assert!(matches!(
                        kind,
                        qxmap_circuit::OneQubitKind::H
                            | qxmap_circuit::OneQubitKind::T
                            | qxmap_circuit::OneQubitKind::Tdg
                            | qxmap_circuit::OneQubitKind::X
                    ));
                }
                qxmap_circuit::Gate::Cnot { .. } => {}
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        // 0 controls → X; 1 → CX; 2 → 6 CNOTs; ≥3 → 4 recursive halves.
        let expected_min = match controls {
            0 => 0,
            1 => 1,
            2 => 6,
            _ => 12,
        };
        prop_assert!(c.num_cnots() >= expected_min);
    }

    /// `qft_blocks(b, k)` — the bench-corpus windowed workload — is always
    /// well-formed: exactly `b` strided, qubit-disjoint copies of `qft(k)`,
    /// with the closed-form gate count per copy
    /// (`k` H's + 5 gates per controlled phase + `⌊k/2⌋` swaps).
    #[test]
    fn qft_blocks_are_disjoint_strided_qfts(blocks in 1usize..6, k in 1usize..7) {
        let c = famous::qft_blocks(blocks, k);
        prop_assert_eq!(c.num_qubits(), blocks * k);

        let per_copy = k + 5 * (k * (k - 1) / 2) + k / 2;
        let gates: Vec<_> = c.gates().to_vec();
        prop_assert_eq!(gates.len(), blocks * per_copy);

        for (position, gate) in gates.iter().enumerate() {
            let copy = position / per_copy;
            let qubits = gate.qubits();
            prop_assert!(!qubits.is_empty());
            for &q in &qubits {
                prop_assert!(q < blocks * k, "qubit {} out of range", q);
                // Copy `i` touches only the residue class `i (mod blocks)`.
                prop_assert_eq!(q % blocks, copy, "gate {} strays across copies", position);
            }
            // Two-qubit gates never degenerate to a single wire.
            if qubits.len() == 2 {
                prop_assert!(qubits[0] != qubits[1]);
            }
        }
        // Determinism: the corpus relies on stable fingerprints.
        prop_assert_eq!(c, famous::qft_blocks(blocks, k));
    }

    /// A generated `.real` netlist of random t1/t2/t3 gates parses and its
    /// CNOT count matches the per-gate decomposition sizes.
    #[test]
    fn real_roundtrip_counts(gates in prop::collection::vec(0u8..3, 1..15)) {
        let vars = ["a", "b", "c", "d"];
        let mut src = String::from(".version 1.0\n.numvars 4\n.variables a b c d\n.begin\n");
        let mut expected_cnots = 0usize;
        for (i, &kind) in gates.iter().enumerate() {
            let start = i % 2; // rotate operands
            match kind {
                0 => {
                    src.push_str(&format!("t1 {}\n", vars[start]));
                }
                1 => {
                    src.push_str(&format!("t2 {} {}\n", vars[start], vars[start + 1]));
                    expected_cnots += 1;
                }
                _ => {
                    src.push_str(&format!(
                        "t3 {} {} {}\n",
                        vars[start],
                        vars[start + 1],
                        vars[start + 2]
                    ));
                    expected_cnots += 6;
                }
            }
        }
        src.push_str(".end\n");
        let c = real::parse_real(&src).expect("generated netlist is valid");
        prop_assert_eq!(c.num_cnots(), expected_cnots);
        prop_assert_eq!(c.num_qubits(), 4);
    }
}
