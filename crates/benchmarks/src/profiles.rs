//! Table 1 benchmark metadata.
//!
//! One entry per row of the paper's Table 1, including the values the
//! authors measured (minimal cost, solve time, Qiskit 0.4.15 cost) so the
//! reproduction can print paper-vs-measured side by side.

/// The paper's reported numbers for one benchmark (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperNumbers {
    /// Reported minimal mapped gate count `c_min`.
    pub cmin: usize,
    /// Reported exact-method runtime in seconds (Intel i7-3930K).
    pub minimal_seconds: f64,
    /// Reported best-of-5 Qiskit 0.4.15 mapped gate count.
    pub qiskit: usize,
}

/// One evaluation benchmark: the profile the synthetic generator
/// reproduces plus the paper's reported results.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// RevLib benchmark name (as printed in Table 1).
    pub name: &'static str,
    /// Logical qubits `n`.
    pub qubits: usize,
    /// Single-qubit gate count before mapping.
    pub single_qubit_gates: usize,
    /// CNOT count before mapping.
    pub cnots: usize,
    /// The paper's measurements.
    pub paper: PaperNumbers,
}

impl BenchmarkProfile {
    /// The paper's "original cost": single-qubit gates + CNOTs.
    pub fn original_cost(&self) -> usize {
        self.single_qubit_gates + self.cnots
    }

    /// The paper's *added* cost at the minimum: `c_min − original`.
    pub fn paper_added_minimum(&self) -> usize {
        self.paper.cmin - self.original_cost()
    }
}

/// All 25 rows of Table 1.
pub fn table1_profiles() -> Vec<BenchmarkProfile> {
    fn row(
        name: &'static str,
        qubits: usize,
        single_qubit_gates: usize,
        cnots: usize,
        cmin: usize,
        minimal_seconds: f64,
        qiskit: usize,
    ) -> BenchmarkProfile {
        BenchmarkProfile {
            name,
            qubits,
            single_qubit_gates,
            cnots,
            paper: PaperNumbers {
                cmin,
                minimal_seconds,
                qiskit,
            },
        }
    }
    vec![
        row("3_17_13", 3, 19, 17, 59, 29.0, 80),
        row("ex-1_166", 3, 10, 9, 31, 5.0, 39),
        row("ham3_102", 3, 9, 11, 36, 10.0, 48),
        row("miller_11", 3, 27, 23, 82, 231.0, 82),
        row("4gt11_84", 4, 9, 9, 34, 7.0, 37),
        row("rd32-v0_66", 4, 18, 16, 63, 281.0, 101),
        row("rd32-v1_68", 4, 20, 16, 65, 276.0, 99),
        row("4gt11_82", 5, 9, 18, 62, 133.0, 77),
        row("4gt11_83", 5, 9, 14, 49, 17.0, 65),
        row("4gt13_92", 5, 36, 30, 109, 528.0, 126),
        row("4mod5-v0_19", 5, 19, 16, 64, 256.0, 109),
        row("4mod5-v0_20", 5, 10, 10, 35, 10.0, 64),
        row("4mod5-v1_22", 5, 10, 11, 40, 7.0, 52),
        row("4mod5-v1_24", 5, 20, 16, 63, 54.0, 98),
        row("alu-v0_27", 5, 19, 17, 63, 74.0, 101),
        row("alu-v1_28", 5, 19, 18, 64, 94.0, 123),
        row("alu-v1_29", 5, 20, 17, 64, 351.0, 104),
        row("alu-v2_33", 5, 20, 17, 64, 42.0, 99),
        row("alu-v3_34", 5, 28, 24, 90, 719.0, 178),
        row("alu-v3_35", 5, 19, 18, 64, 103.0, 121),
        row("alu-v4_37", 5, 19, 18, 64, 119.0, 110),
        row("mod5d1_63", 5, 9, 13, 48, 14.0, 98),
        row("mod5mils_65", 5, 19, 16, 64, 96.0, 108),
        row("qe_qft_4", 5, 44, 27, 94, 136.0, 115),
        row("qe_qft_5", 5, 69, 38, 135, 401.0, 163),
    ]
}

/// Looks a profile up by name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    table1_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_rows() {
        assert_eq!(table1_profiles().len(), 25);
    }

    #[test]
    fn original_costs_match_paper_sums() {
        // Spot-check the "a + b = c" column arithmetic of Table 1.
        let p = by_name("3_17_13").unwrap();
        assert_eq!(p.original_cost(), 36);
        let p = by_name("qe_qft_5").unwrap();
        assert_eq!(p.original_cost(), 107);
        let p = by_name("miller_11").unwrap();
        assert_eq!(p.original_cost(), 50);
    }

    #[test]
    fn added_minimum_is_nonnegative_and_mixed_7_4() {
        // Every paper c_min exceeds the original cost by a sum of 7s
        // (SWAPs) and 4s (reversals): representable as 7a+4b.
        fn is_7a_4b(v: usize) -> bool {
            (0..=v / 7).any(|a| (v - 7 * a).is_multiple_of(4))
        }
        for p in table1_profiles() {
            let added = p.paper_added_minimum();
            assert!(is_7a_4b(added), "{}: added {added}", p.name);
        }
    }

    #[test]
    fn qiskit_is_never_below_minimum() {
        for p in table1_profiles() {
            assert!(p.paper.qiskit >= p.paper.cmin, "{}", p.name);
        }
    }

    #[test]
    fn headline_averages_match_abstract() {
        // §5: Qiskit ≈ 45 % above the minimum in mapped gate count and
        // ≈ 104 % above in added gates — computed over the authors' *full*
        // benchmark set, of which Table 1 "provides a selection"; the
        // printed subset averages ≈ 51 % / ≈ 119 %, consistent with the
        // claims. The two named rows are quoted per-row in §5 and match
        // exactly: alu-v3_35 → 89 %, mod5d1_63 → 104 % (total gates).
        let profiles = table1_profiles();
        let row_over = |name: &str| {
            let p = by_name(name).unwrap();
            (p.paper.qiskit as f64 - p.paper.cmin as f64) / p.paper.cmin as f64
        };
        assert!((row_over("alu-v3_35") - 0.89).abs() < 0.005);
        assert!((row_over("mod5d1_63") - 1.04).abs() < 0.005);
        let over_total: f64 = profiles
            .iter()
            .map(|p| (p.paper.qiskit as f64 - p.paper.cmin as f64) / p.paper.cmin as f64)
            .sum::<f64>()
            / profiles.len() as f64;
        assert!(
            (0.40..0.60).contains(&over_total),
            "total-gate overhead average {over_total:.3} out of the plausible band"
        );
        let over_added: f64 = profiles
            .iter()
            .filter(|p| p.paper_added_minimum() > 0)
            .map(|p| {
                let added_q = p.paper.qiskit as f64 - p.original_cost() as f64;
                let added_min = p.paper_added_minimum() as f64;
                (added_q - added_min) / added_min
            })
            .sum::<f64>()
            / profiles
                .iter()
                .filter(|p| p.paper_added_minimum() > 0)
                .count() as f64;
        assert!(
            over_added > 1.0,
            "added-gate overhead average {over_added:.3} should exceed 100%"
        );
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("does-not-exist").is_none());
    }
}
