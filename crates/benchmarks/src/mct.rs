//! Multiple-controlled Toffoli (MCT) decomposition into the H/T/CNOT
//! basis.
//!
//! RevLib netlists are Toffoli networks; running them on IBM QX hardware
//! requires decomposition into elementary gates (the step the paper
//! assumes already done, citing references [1, 4, 14]). This module
//! provides it: the textbook 2-control Toffoli (6 CNOT + 9 one-qubit
//! gates) plus the borrowed-ancilla recursion of Barenco et al. for more
//! controls.

use std::error::Error;
use std::fmt;

use qxmap_circuit::Circuit;

/// Error: not enough free lines to decompose a large MCT gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposeMctError {
    controls: usize,
    available_ancillas: usize,
}

impl fmt::Display for DecomposeMctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a {}-control Toffoli needs a borrowed ancilla line, {} available",
            self.controls, self.available_ancillas
        )
    }
}

impl Error for DecomposeMctError {}

/// Appends an MCT gate (`controls` ∧ → X on `target`) to `circuit`,
/// decomposed into the elementary basis. Free lines of the circuit are
/// borrowed as dirty ancillas when more than two controls are given.
///
/// # Errors
///
/// Returns [`DecomposeMctError`] if more than two controls are given and
/// no spare line exists.
///
/// # Panics
///
/// Panics if qubits repeat or are out of range.
pub fn append_mct(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
) -> Result<(), DecomposeMctError> {
    let n = circuit.num_qubits();
    let mut used = vec![false; n];
    for &q in controls.iter().chain([&target]) {
        assert!(q < n, "qubit out of range");
        assert!(!used[q], "repeated qubit in MCT");
        used[q] = true;
    }
    let ancillas: Vec<usize> = (0..n).filter(|&q| !used[q]).collect();
    emit(circuit, controls, target, &ancillas)
}

fn emit(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    ancillas: &[usize],
) -> Result<(), DecomposeMctError> {
    match controls.len() {
        0 => {
            circuit.x(target);
            Ok(())
        }
        1 => {
            circuit.cx(controls[0], target);
            Ok(())
        }
        2 => {
            append_ccx(circuit, controls[0], controls[1], target);
            Ok(())
        }
        k => {
            // Borrowed-ancilla split: t ^= AND(all controls) via
            // [MCT(c_hi ∪ {a} → t), MCT(c_lo → a)]², a dirty.
            let Some((&a, rest)) = ancillas.split_first() else {
                return Err(DecomposeMctError {
                    controls: k,
                    available_ancillas: 0,
                });
            };
            // Ceiling half to `lo` so both halves have < k controls
            // (hi gets ⌊k/2⌋ + 1 ≤ k−1 for every k ≥ 3).
            let half = k.div_ceil(2);
            let lo = &controls[..half];
            let hi: Vec<usize> = controls[half..].iter().copied().chain([a]).collect();
            // Ancilla pool for the sub-gates: the other sub-gate's controls
            // are idle during each half and may be borrowed too.
            let mut pool_hi: Vec<usize> = rest.iter().copied().chain(lo.iter().copied()).collect();
            let mut pool_lo: Vec<usize> = rest
                .iter()
                .copied()
                .chain(hi.iter().copied().filter(|&q| q != a))
                .chain([target])
                .collect();
            pool_hi.retain(|&q| q != target);
            pool_lo.retain(|&q| q != a);
            emit(circuit, &hi, target, &pool_hi)?;
            emit(circuit, lo, a, &pool_lo)?;
            emit(circuit, &hi, target, &pool_hi)?;
            emit(circuit, lo, a, &pool_lo)?;
            Ok(())
        }
    }
}

/// The standard 6-CNOT Clifford+T Toffoli.
pub fn append_ccx(circuit: &mut Circuit, a: usize, b: usize, c: usize) {
    circuit.h(c);
    circuit.cx(b, c);
    circuit.tdg(c);
    circuit.cx(a, c);
    circuit.t(c);
    circuit.cx(b, c);
    circuit.tdg(c);
    circuit.cx(a, c);
    circuit.t(b);
    circuit.t(c);
    circuit.h(c);
    circuit.cx(a, b);
    circuit.t(a);
    circuit.tdg(b);
    circuit.cx(a, b);
}

/// Appends a Fredkin (controlled-SWAP) gate, decomposed via
/// `CX(c,b) · CCX(a,b,c) · CX(c,b)`.
///
/// # Errors
///
/// Propagates [`DecomposeMctError`] (never fails for the 1-control case).
pub fn append_fredkin(
    circuit: &mut Circuit,
    control: usize,
    x: usize,
    y: usize,
) -> Result<(), DecomposeMctError> {
    circuit.cx(y, x);
    append_mct(circuit, &[control, x], y)?;
    circuit.cx(y, x);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classical simulation of the circuit on a basis state (all gates in
    /// the decomposition are classical on basis states except H/T phases,
    /// so verify with the statevector-free parity trick only for X/CX; use
    /// truth-table checks through qxmap-sim in integration tests instead).
    fn truth_table(circuit: &Circuit, n: usize) -> Vec<usize> {
        // Use a light-weight permutation check: the decomposition contains
        // H/T gates, so a classical truth table is only valid for the
        // *composite* (which is a permutation). Simulate amplitudes naively.
        use qxmap_circuit::Gate;
        // Tiny complex arithmetic to avoid a dev-dependency cycle.
        #[derive(Clone, Copy)]
        struct C(f64, f64);
        impl C {
            fn mul(self, o: C) -> C {
                C(self.0 * o.0 - self.1 * o.1, self.0 * o.1 + self.1 * o.0)
            }
            fn add(self, o: C) -> C {
                C(self.0 + o.0, self.1 + o.1)
            }
            fn scale(self, k: f64) -> C {
                C(self.0 * k, self.1 * k)
            }
        }
        let size = 1usize << n;
        let mut table = Vec::new();
        for basis in 0..size {
            let mut amps = vec![C(0.0, 0.0); size];
            amps[basis] = C(1.0, 0.0);
            for gate in circuit.gates() {
                match gate {
                    Gate::Cnot { control, target } => {
                        for i in 0..size {
                            if i & (1 << control) != 0 && i & (1 << target) == 0 {
                                amps.swap(i, i | (1 << target));
                            }
                        }
                    }
                    Gate::One { kind, qubit } => {
                        use qxmap_circuit::OneQubitKind as K;
                        let bit = 1usize << qubit;
                        for i in 0..size {
                            if i & bit != 0 {
                                continue;
                            }
                            let (a0, a1) = (amps[i], amps[i | bit]);
                            let (b0, b1) = match kind {
                                K::X => (a1, a0),
                                K::H => {
                                    let r = std::f64::consts::FRAC_1_SQRT_2;
                                    (a0.add(a1).scale(r), a0.add(a1.scale(-1.0)).scale(r))
                                }
                                K::T => (
                                    a0,
                                    a1.mul(C(
                                        (0.25f64 * std::f64::consts::PI).cos(),
                                        (0.25 * std::f64::consts::PI).sin(),
                                    )),
                                ),
                                K::Tdg => (
                                    a0,
                                    a1.mul(C(
                                        (0.25f64 * std::f64::consts::PI).cos(),
                                        -(0.25 * std::f64::consts::PI).sin(),
                                    )),
                                ),
                                other => panic!("unexpected gate {other:?} in MCT decomposition"),
                            };
                            amps[i] = b0;
                            amps[i | bit] = b1;
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            // The output must be a basis state (permutation matrix).
            let mut out = None;
            for (i, a) in amps.iter().enumerate() {
                if a.0 * a.0 + a.1 * a.1 > 0.5 {
                    assert!(out.is_none(), "superposition output");
                    out = Some(i);
                }
            }
            table.push(out.expect("permutation output"));
        }
        table
    }

    fn mct_reference(n: usize, controls: &[usize], target: usize) -> Vec<usize> {
        (0..1 << n)
            .map(|i| {
                if controls.iter().all(|&c| i & (1 << c) != 0) {
                    i ^ (1 << target)
                } else {
                    i
                }
            })
            .collect()
    }

    #[test]
    fn ccx_truth_table() {
        let mut c = Circuit::new(3);
        append_mct(&mut c, &[0, 1], 2).unwrap();
        assert_eq!(truth_table(&c, 3), mct_reference(3, &[0, 1], 2));
        assert_eq!(c.num_cnots(), 6);
    }

    #[test]
    fn single_and_zero_control() {
        let mut c = Circuit::new(2);
        append_mct(&mut c, &[1], 0).unwrap();
        assert_eq!(truth_table(&c, 2), mct_reference(2, &[1], 0));
        let mut c = Circuit::new(1);
        append_mct(&mut c, &[], 0).unwrap();
        assert_eq!(truth_table(&c, 1), vec![1, 0]);
    }

    #[test]
    fn three_controls_with_borrowed_ancilla() {
        let mut c = Circuit::new(5);
        append_mct(&mut c, &[0, 1, 2], 3).unwrap();
        assert_eq!(truth_table(&c, 5), mct_reference(5, &[0, 1, 2], 3));
    }

    #[test]
    fn four_controls_needs_six_lines() {
        let mut c = Circuit::new(6);
        append_mct(&mut c, &[0, 1, 2, 3], 4).unwrap();
        assert_eq!(truth_table(&c, 6), mct_reference(6, &[0, 1, 2, 3], 4));
    }

    #[test]
    fn missing_ancilla_is_reported() {
        let mut c = Circuit::new(4);
        let err = append_mct(&mut c, &[0, 1, 2], 3).unwrap_err();
        assert!(err.to_string().contains("ancilla"));
    }

    #[test]
    fn fredkin_truth_table() {
        let mut c = Circuit::new(3);
        append_fredkin(&mut c, 0, 1, 2).unwrap();
        let expected: Vec<usize> = (0..8)
            .map(|i: usize| {
                if i & 1 != 0 {
                    // swap bits 1 and 2
                    let b1 = (i >> 1) & 1;
                    let b2 = (i >> 2) & 1;
                    (i & 1) | (b2 << 1) | (b1 << 2)
                } else {
                    i
                }
            })
            .collect();
        assert_eq!(truth_table(&c, 3), expected);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_qubits_panic() {
        let mut c = Circuit::new(3);
        let _ = append_mct(&mut c, &[0, 0], 1);
    }
}
