//! The fixed, versioned benchmark corpus behind the perf-trajectory
//! harness.
//!
//! `BENCH_corpus.json` only means something if every run measures the
//! *same* workloads: the corpus is a manifest of named (circuit, device,
//! deadline) entries spanning the regimes the system serves — Table 1
//! circuits in the exact regime, larger synthetic profiles past it,
//! generated heavy-hex / line topologies, and the ≥50-qubit
//! [`crate::famous`] workloads the windowed engine exists for. The
//! manifest carries a [schema version](CORPUS_SCHEMA_VERSION) and a
//! content hash ([`manifest_hash`]) covering every entry's name, device,
//! deadline, class and circuit fingerprint, so a baseline JSON and a
//! fresh run can prove they measured the same thing (and `bench_diff`
//! can refuse to compare apples to oranges).
//!
//! Devices are named, not constructed, because this crate sits below
//! `qxmap-arch`: the harness resolves them through
//! `qxmap_arch::devices::by_name`. Every name used here is covered by
//! that parser (asserted end to end by the harness's own tests).

use qxmap_circuit::{Circuit, CircuitSkeleton};

use crate::famous;
use crate::profiles::table1_profiles;
use crate::synthetic::{circuit_for, synthetic_circuit};

/// Version of the corpus *shape*: bump when entries are added, removed,
/// renamed or re-targeted so trajectory tooling can tell a corpus change
/// from a performance change.
pub const CORPUS_SCHEMA_VERSION: u32 = 1;

/// Which regime an entry exercises — the harness drives each class
/// differently and reports them in separate sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusClass {
    /// In the exact method's regime: the portfolio races the SAT engine
    /// and a proved optimum is the expected answer.
    Exact,
    /// Past the exact regime: the portfolio answers heuristically within
    /// the deadline.
    Large,
    /// ≥50-qubit workloads mapped through the windowed engine *and*
    /// every pure heuristic — the windowed-vs-heuristic trajectory rows
    /// (`BENCH_window.json`).
    Windowed,
}

impl CorpusClass {
    /// Stable tag used in manifests and JSON artifacts.
    pub fn tag(self) -> &'static str {
        match self {
            CorpusClass::Exact => "exact",
            CorpusClass::Large => "large",
            CorpusClass::Windowed => "windowed",
        }
    }
}

/// One corpus workload: a circuit to map, the device to map it onto, and
/// the wall-clock budget a production caller would grant it.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable row name (circuit name, unique across the corpus).
    pub name: String,
    /// Device name, resolvable by `qxmap_arch::devices::by_name`.
    pub device: &'static str,
    /// Per-solve wall-clock deadline in milliseconds.
    pub deadline_ms: u64,
    /// The regime this entry exercises.
    pub class: CorpusClass,
    /// Whether the entry belongs to the reduced CI smoke subset. Smoke
    /// rows are a strict subset of the full corpus, so a smoke run's
    /// rows always intersect a full baseline's.
    pub smoke: bool,
    /// The workload itself.
    pub circuit: Circuit,
}

/// The full fixed corpus, in manifest order.
///
/// The selection is deliberate, not exhaustive:
///
/// * six Table 1 rows spanning 3–5 qubits on QX4 (the paper's own
///   regime, where proved optima gate solution *quality*);
/// * two of those re-targeted onto a generated heavy-hex lattice (the
///   topology library on the exact path);
/// * synthetic profiles at 8 and 16 qubits on QX5/Tokyo-class devices
///   and a line topology (the heuristic regime's latency trajectory);
/// * the four ≥50-qubit [`crate::famous`] workloads on heavy-hex-4
///   (the windowed engine's corpus, carried over from `bench_window`).
pub fn corpus() -> Vec<CorpusEntry> {
    let mut entries = Vec::new();
    let table1 = table1_profiles();
    let mut table1_row = |name: &str, device: &'static str, smoke: bool| {
        let profile = table1
            .iter()
            .find(|p| p.name == name)
            .expect("corpus names come from Table 1");
        entries.push(CorpusEntry {
            name: match device {
                "qx4" => name.to_string(),
                _ => format!("{name}@{device}"),
            },
            device,
            deadline_ms: 10_000,
            class: CorpusClass::Exact,
            smoke,
            circuit: circuit_for(profile),
        });
    };
    table1_row("3_17_13", "qx4", true);
    table1_row("ex-1_166", "qx4", true);
    table1_row("ham3_102", "qx4", false);
    table1_row("4gt11_84", "qx4", false);
    table1_row("4mod5-v1_22", "qx4", false);
    table1_row("alu-v0_27", "qx4", false);
    table1_row("ex-1_166", "heavy-hex-1", true);
    table1_row("4gt11_84", "heavy-hex-1", false);

    let mut synthetic =
        |qubits: usize, ones: usize, cnots: usize, seed: u64, device: &'static str, smoke: bool| {
            let name = format!("synth_{qubits}q_{cnots}cx@{device}");
            entries.push(CorpusEntry {
                name: name.clone(),
                device,
                deadline_ms: 10_000,
                class: CorpusClass::Large,
                smoke,
                circuit: synthetic_circuit(qubits, ones, cnots, seed).named(name),
            });
        };
    synthetic(8, 24, 40, 0xC0FFEE, "qx5", true);
    synthetic(8, 24, 40, 0xC0FFEE, "linear-8", false);
    synthetic(16, 60, 90, 0xBEEF, "tokyo", true);
    synthetic(16, 60, 90, 0xBEEF, "grid-4x4", false);

    let mut windowed = |circuit: Circuit, smoke: bool| {
        entries.push(CorpusEntry {
            name: circuit.name().to_string(),
            device: "heavy-hex-4",
            deadline_ms: 30_000,
            class: CorpusClass::Windowed,
            smoke,
            circuit,
        });
    };
    windowed(famous::ghz(52), false);
    windowed(famous::ripple_adder(24), false);
    windowed(famous::toffoli_chain(50, 25), false);
    windowed(famous::qft_blocks(9, 4), true);

    entries
}

/// The reduced CI subset: every entry with [`CorpusEntry::smoke`] set.
pub fn smoke_corpus() -> Vec<CorpusEntry> {
    corpus().into_iter().filter(|e| e.smoke).collect()
}

/// A stable FNV-1a content hash over the *full* corpus manifest — every
/// entry's name, device, deadline, class and canonical circuit
/// fingerprint, plus [`CORPUS_SCHEMA_VERSION`]. Two builds agree on this
/// hash exactly when they would measure the same workloads, so the hash
/// travels in every `BENCH_corpus.json` and `bench_diff` refuses
/// cross-corpus comparisons.
///
/// The smoke subset hashes identically (it is a marked subset of the
/// same manifest, not a different corpus).
pub fn manifest_hash() -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xff; // field separator
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(&CORPUS_SCHEMA_VERSION.to_le_bytes());
    for entry in corpus() {
        mix(entry.name.as_bytes());
        mix(entry.device.as_bytes());
        mix(&entry.deadline_ms.to_le_bytes());
        mix(entry.class.tag().as_bytes());
        mix(&CircuitSkeleton::of(&entry.circuit)
            .fingerprint()
            .to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_classes_span_all_three() {
        let entries = corpus();
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "duplicate corpus row name");
        for class in [
            CorpusClass::Exact,
            CorpusClass::Large,
            CorpusClass::Windowed,
        ] {
            assert!(entries.iter().any(|e| e.class == class), "{class:?} empty");
        }
    }

    #[test]
    fn smoke_subset_is_nonempty_and_strict() {
        let smoke = smoke_corpus();
        assert!(!smoke.is_empty());
        assert!(smoke.len() < corpus().len());
        // The smoke subset still spans every class, so the CI gate
        // exercises all three harness paths.
        for class in [
            CorpusClass::Exact,
            CorpusClass::Large,
            CorpusClass::Windowed,
        ] {
            assert!(smoke.iter().any(|e| e.class == class), "{class:?} unsmoked");
        }
    }

    #[test]
    fn manifest_hash_is_stable_within_a_build() {
        assert_eq!(manifest_hash(), manifest_hash());
    }

    #[test]
    fn windowed_entries_are_past_the_exact_regime() {
        for e in corpus() {
            if e.class == CorpusClass::Windowed {
                assert!(e.circuit.num_qubits() >= 36, "{}", e.name);
            } else {
                assert!(e.circuit.num_qubits() <= 16, "{}", e.name);
            }
        }
    }
}
