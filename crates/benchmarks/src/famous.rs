//! Classic parameterized circuit families for scaling studies.

use qxmap_circuit::Circuit;

use crate::mct::append_mct;

/// A GHZ-state preparation: `H` on qubit 0 followed by a CNOT chain.
///
/// ```
/// let c = qxmap_benchmarks::famous::ghz(4);
/// assert_eq!(c.num_cnots(), 3);
/// assert_eq!(c.num_single_qubit_gates(), 1);
/// ```
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n).named(format!("ghz_{n}"));
    if n == 0 {
        return c;
    }
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// The quantum Fourier transform with controlled phases decomposed into
/// the elementary basis (`cu1 = 2 CNOT + 3 phase gates`) and the final
/// reversal implemented with SWAP gates.
///
/// ```
/// let c = qxmap_benchmarks::famous::qft(3);
/// // 3 H + 3 cu1 (2 CNOTs each) + 1 terminal SWAP.
/// assert_eq!(c.num_single_qubit_gates(), 3 + 3 * 3);
/// ```
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n).named(format!("qft_{n}"));
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let lambda = std::f64::consts::PI / f64::from(1u32 << (j - i));
            // cu1(λ) decomposition.
            c.one(qxmap_circuit::OneQubitKind::Phase(lambda / 2.0), j);
            c.cx(j, i);
            c.one(qxmap_circuit::OneQubitKind::Phase(-lambda / 2.0), i);
            c.cx(j, i);
            c.one(qxmap_circuit::OneQubitKind::Phase(lambda / 2.0), i);
        }
    }
    for i in 0..n / 2 {
        c.swap_gate(i, n - 1 - i);
    }
    c
}

/// `blocks` independent copies of [`qft`] on `k` qubits each, with the
/// copies' qubit labels *strided* across the `blocks·k` register: copy
/// `i` acts on `{i, blocks+i, 2·blocks+i, …}`.
///
/// The striding models netlists whose logical labels carry no physical
/// locality — a trivial (identity) initial layout scatters every copy
/// across the device, so routing-only mappers pay to gather each block
/// while placement-aware mappers can seat each copy on a compact
/// subgraph for free. Past the exact regime this is the canonical
/// workload where window decomposition beats pure heuristics.
///
/// ```
/// let c = qxmap_benchmarks::famous::qft_blocks(3, 4);
/// assert_eq!(c.num_qubits(), 12);
/// // Copies are disjoint: 3 × the gate count of one QFT-4.
/// assert_eq!(c.gates().len(), 3 * qxmap_benchmarks::famous::qft(4).gates().len());
/// ```
pub fn qft_blocks(blocks: usize, k: usize) -> Circuit {
    let inner = qft(k);
    let mut c = Circuit::new(blocks * k).named(format!("qft_blocks_{blocks}x{k}"));
    for i in 0..blocks {
        for gate in inner.gates() {
            c.push(gate.map_qubits(|j| j * blocks + i));
        }
    }
    c
}

/// A chain of `k` Toffolis over `n ≥ 3` qubits, each targeting the next
/// qubit cyclically — the canonical reversible-netlist stressor.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn toffoli_chain(n: usize, k: usize) -> Circuit {
    assert!(n >= 3, "Toffoli chain needs at least 3 lines");
    let mut c = Circuit::new(n).named(format!("toffoli_chain_{n}_{k}"));
    for i in 0..k {
        let a = i % n;
        let b = (i + 1) % n;
        let t = (i + 2) % n;
        append_mct(&mut c, &[a, b], t).expect("two controls never need ancillas");
    }
    c
}

/// A Cuccaro-style ripple-carry adder skeleton on `2·bits + 2` qubits
/// (MAJ / UMA blocks built from Toffolis and CNOTs).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_adder(bits: usize) -> Circuit {
    assert!(bits > 0);
    let n = 2 * bits + 2;
    let mut c = Circuit::new(n).named(format!("adder_{bits}"));
    // Register layout: c0, a0, b0, a1, b1, …, carry-out at n-1.
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let maj = |c_: &mut Circuit, x: usize, y: usize, z: usize| {
        c_.cx(z, y);
        c_.cx(z, x);
        append_mct(c_, &[x, y], z).expect("spare lines exist");
    };
    let uma = |c_: &mut Circuit, x: usize, y: usize, z: usize| {
        append_mct(c_, &[x, y], z).expect("spare lines exist");
        c_.cx(z, x);
        c_.cx(x, y);
    };
    maj(&mut c, 0, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), n - 1);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, 0, b(0), a(0));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_shapes() {
        assert_eq!(ghz(0).gates().len(), 0);
        assert_eq!(ghz(1).num_single_qubit_gates(), 1);
        let c = ghz(5);
        assert_eq!(c.num_cnots(), 4);
        assert_eq!(c.depth(), 5);
    }

    #[test]
    fn qft_cnot_count() {
        // n(n-1)/2 controlled phases, 2 CNOTs each, plus 3 per SWAP.
        let c = qft(4).decompose_swaps();
        assert_eq!(c.num_cnots(), 2 * 6 + 3 * 2);
    }

    #[test]
    fn qft_blocks_are_disjoint_strided_copies() {
        let c = qft_blocks(3, 4);
        assert_eq!(c.num_qubits(), 12);
        // Copy 1 acts exactly on {1, 4, 7, 10}.
        let mut used: Vec<bool> = vec![false; 12];
        let per_copy = qft(4).gates().len();
        for gate in &c.gates()[per_copy..2 * per_copy] {
            for q in gate.qubits() {
                used[q] = true;
            }
        }
        let active: Vec<usize> = (0..12).filter(|&q| used[q]).collect();
        assert_eq!(active, vec![1, 4, 7, 10]);
    }

    #[test]
    fn toffoli_chain_counts() {
        let c = toffoli_chain(3, 4);
        assert_eq!(c.num_cnots(), 4 * 6);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    fn adder_is_buildable() {
        let c = ripple_adder(2);
        assert_eq!(c.num_qubits(), 6);
        assert!(c.num_cnots() > 10);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn toffoli_chain_needs_three() {
        let _ = toffoli_chain(2, 1);
    }
}
