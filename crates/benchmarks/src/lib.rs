//! # qxmap-benchmarks
//!
//! The evaluation workloads of the DAC 2019 paper, rebuilt:
//!
//! * [`profiles`] — metadata for all 25 Table 1 benchmarks (qubit count,
//!   single-qubit / CNOT gate counts, and the paper's reported minimal
//!   cost, runtime and Qiskit cost for comparison in `EXPERIMENTS.md`).
//! * [`synthetic_circuit`] / [`circuit_for`] — a seeded generator
//!   producing, for each profile, a circuit with *exactly* the profile's
//!   gate counts and reversible-netlist-like interaction locality. The
//!   original RevLib netlists are not redistributable here; DESIGN.md §2
//!   documents why matching (n, #1q, #CNOT) preserves the evaluation's
//!   shape.
//! * [`real`] — a parser for RevLib's `.real` format (Toffoli/Fredkin
//!   netlists) so genuine benchmark files can be dropped in.
//! * [`mct`] — multiple-controlled Toffoli decomposition into the
//!   H/T/CNOT basis (with borrowed-ancilla recursion).
//! * [`famous`] — classic parameterized families (GHZ, QFT, Toffoli
//!   chains, ripple adders) for scaling studies.
//! * [`corpus`] — the fixed, versioned perf-trajectory corpus (named
//!   circuit × device × deadline entries with a manifest hash) that the
//!   `qxmap-bench` harness measures into `BENCH_corpus.json`.
//!
//! ```
//! let suite = qxmap_benchmarks::table1_profiles();
//! assert_eq!(suite.len(), 25);
//! let circuit = qxmap_benchmarks::circuit_for(&suite[0]);
//! assert_eq!(circuit.num_qubits(), suite[0].qubits);
//! assert_eq!(circuit.num_cnots(), suite[0].cnots);
//! assert_eq!(circuit.num_single_qubit_gates(), suite[0].single_qubit_gates);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod famous;
pub mod mct;
pub mod profiles;
pub mod real;
mod synthetic;

pub use profiles::{table1_profiles, BenchmarkProfile, PaperNumbers};
pub use synthetic::{circuit_for, synthetic_circuit};
