//! Parser for RevLib's `.real` reversible-netlist format.
//!
//! The paper's benchmarks originate from RevLib (reference \[20\]); this
//! parser lets genuine `.real` files be used directly: Toffoli (`t<k>`)
//! and Fredkin (`f<k>`) lines are decomposed into the elementary basis
//! via [`crate::mct`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use qxmap_circuit::Circuit;

use crate::mct::{append_fredkin, append_mct};

/// Error parsing a `.real` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRealError {
    line: usize,
    message: String,
}

impl ParseRealError {
    fn new(line: usize, message: impl Into<String>) -> ParseRealError {
        ParseRealError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseRealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseRealError {}

/// Parses `.real` source into an elementary-basis circuit.
///
/// Supported directives: `.version`, `.numvars`, `.variables`, `.inputs`,
/// `.outputs`, `.constants`, `.garbage`, `.begin`, `.end` (unknown
/// directives are ignored); gates `t<k>` (multiple-controlled Toffoli)
/// and `f<k>` (Fredkin with `k−2` controls, only `f3` supported).
///
/// # Errors
///
/// Returns [`ParseRealError`] on malformed input, unknown variables, or
/// Toffoli gates too large for the register.
///
/// ```
/// let src = "\
/// .version 1.0
/// .numvars 3
/// .variables a b c
/// .begin
/// t1 a
/// t2 a b
/// t3 a b c
/// .end
/// ";
/// let circuit = qxmap_benchmarks::real::parse_real(src)?;
/// assert_eq!(circuit.num_qubits(), 3);
/// // X + CX + decomposed Toffoli (6 CNOTs).
/// assert_eq!(circuit.num_cnots(), 7);
/// # Ok::<(), qxmap_benchmarks::real::ParseRealError>(())
/// ```
pub fn parse_real(source: &str) -> Result<Circuit, ParseRealError> {
    let mut num_vars: Option<usize> = None;
    let mut var_index: HashMap<String, usize> = HashMap::new();
    let mut circuit: Option<Circuit> = None;
    let mut in_body = false;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(directive) = line.strip_prefix('.') {
            let mut parts = directive.split_whitespace();
            let key = parts.next().unwrap_or("");
            match key {
                "numvars" => {
                    let v: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ParseRealError::new(lineno, "bad .numvars"))?;
                    num_vars = Some(v);
                }
                "variables" => {
                    for (i, name) in parts.enumerate() {
                        var_index.insert(name.to_string(), i);
                    }
                }
                "begin" => {
                    let n = num_vars
                        .ok_or_else(|| ParseRealError::new(lineno, ".begin before .numvars"))?;
                    if var_index.is_empty() {
                        for i in 0..n {
                            var_index.insert(format!("x{i}"), i);
                        }
                    }
                    if var_index.len() != n {
                        return Err(ParseRealError::new(
                            lineno,
                            format!(".variables count {} != .numvars {n}", var_index.len()),
                        ));
                    }
                    circuit = Some(Circuit::new(n));
                    in_body = true;
                }
                "end" => {
                    in_body = false;
                }
                _ => {} // .version, .inputs, .outputs, .constants, .garbage …
            }
            continue;
        }
        if !in_body {
            return Err(ParseRealError::new(
                lineno,
                format!("gate `{line}` outside .begin/.end"),
            ));
        }
        let circuit = circuit.as_mut().expect("in_body implies circuit");
        let mut parts = line.split_whitespace();
        let gate = parts.next().expect("non-empty line");
        let operands: Vec<usize> = parts
            .map(|name| {
                var_index.get(name).copied().ok_or_else(|| {
                    ParseRealError::new(lineno, format!("unknown variable `{name}`"))
                })
            })
            .collect::<Result<_, _>>()?;
        let arity: usize = gate[1..]
            .parse()
            .map_err(|_| ParseRealError::new(lineno, format!("bad gate specifier `{gate}`")))?;
        if arity != operands.len() {
            return Err(ParseRealError::new(
                lineno,
                format!("`{gate}` expects {arity} operands, got {}", operands.len()),
            ));
        }
        let mut sorted = operands.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(ParseRealError::new(
                lineno,
                format!("`{gate}` repeats an operand"),
            ));
        }
        match gate.as_bytes()[0] {
            b't' => {
                let (target, controls) = operands.split_last().ok_or_else(|| {
                    ParseRealError::new(lineno, "Toffoli needs at least a target")
                })?;
                append_mct(circuit, controls, *target)
                    .map_err(|e| ParseRealError::new(lineno, e.to_string()))?;
            }
            b'f' => {
                if operands.len() != 3 {
                    return Err(ParseRealError::new(
                        lineno,
                        "only single-control Fredkin (f3) is supported",
                    ));
                }
                append_fredkin(circuit, operands[0], operands[1], operands[2])
                    .map_err(|e| ParseRealError::new(lineno, e.to_string()))?;
            }
            _ => {
                return Err(ParseRealError::new(
                    lineno,
                    format!("unsupported gate `{gate}`"),
                ))
            }
        }
    }
    circuit.ok_or_else(|| ParseRealError::new(0, "no .begin block found"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
# example reversible netlist (same shape as RevLib's 3-line functions)
.version 1.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.begin
t3 a b c
t2 b c
t1 a
.end
";

    #[test]
    fn parses_tofolli_network() {
        let c = parse_real(SMALL).unwrap();
        assert_eq!(c.num_qubits(), 3);
        // t3 → 6 CNOT + 9 1q; t2 → 1 CNOT; t1 → 1 X.
        assert_eq!(c.num_cnots(), 7);
        assert_eq!(c.num_single_qubit_gates(), 10);
    }

    #[test]
    fn fredkin_parses() {
        let src = ".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end\n";
        let c = parse_real(src).unwrap();
        assert!(c.num_cnots() >= 8); // 2 CX + decomposed CCX
    }

    #[test]
    fn default_variable_names() {
        let src = ".numvars 2\n.begin\nt2 x0 x1\n.end\n";
        let c = parse_real(src).unwrap();
        assert_eq!(c.cnot_skeleton(), vec![(0, 1)]);
    }

    #[test]
    fn error_cases() {
        assert!(parse_real("").is_err());
        assert!(parse_real(".numvars 2\nt2 a b\n").is_err()); // outside begin
        assert!(parse_real(".numvars 1\n.variables a\n.begin\nt2 a a\n").is_err());
        assert!(parse_real(".numvars 2\n.variables a b\n.begin\ng2 a b\n.end\n").is_err());
        assert!(parse_real(".numvars 2\n.variables a b\n.begin\nt2 a z\n.end\n").is_err());
        let err = parse_real(".numvars 2\n.variables a b\n.begin\nt3 a b\n.end\n").unwrap_err();
        assert!(err.to_string().contains("expects 3"));
    }

    #[test]
    fn comments_and_unknown_directives_are_ignored() {
        let src = "# top\n.version 2.0\n.numvars 2\n.variables a b\n.constants --\n.garbage --\n.begin\nt2 a b # inline comment\n.end\n";
        let c = parse_real(src).unwrap();
        assert_eq!(c.num_cnots(), 1);
    }
}
