//! Seeded synthetic circuits matching benchmark profiles.
//!
//! The generator reproduces the *instance shape* that drives the exact
//! mapper's behaviour: qubit count, CNOT count (the symbolic formulation's
//! size is `n·m·|G|`), single-qubit gate count (re-inserted after
//! mapping), and reversible-netlist-style locality (consecutive CNOTs
//! tend to share a qubit, as Toffoli decompositions do).

use qxmap_circuit::{Circuit, OneQubitKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::BenchmarkProfile;

/// Builds the deterministic stand-in circuit for a Table 1 profile
/// (seeded by the benchmark name).
pub fn circuit_for(profile: &BenchmarkProfile) -> Circuit {
    synthetic_circuit(
        profile.qubits,
        profile.single_qubit_gates,
        profile.cnots,
        fnv1a(profile.name),
    )
    .named(profile.name)
}

/// Generates a circuit with exactly `single_qubit_gates` one-qubit gates
/// and `cnots` CNOTs over `num_qubits` qubits, deterministically from
/// `seed`.
///
/// Locality model: with probability 0.6 a CNOT shares one qubit with its
/// predecessor (the hallmark of decomposed Toffoli networks); single-qubit
/// gates are drawn from the Clifford+T set that MCT decompositions
/// produce (H, T, T†, X) and interleaved uniformly.
///
/// # Panics
///
/// Panics if `num_qubits < 2` while `cnots > 0`.
pub fn synthetic_circuit(
    num_qubits: usize,
    single_qubit_gates: usize,
    cnots: usize,
    seed: u64,
) -> Circuit {
    assert!(
        cnots == 0 || num_qubits >= 2,
        "CNOTs need at least two qubits"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(num_qubits);

    // Decide where the single-qubit gates fall between CNOTs.
    let slots = cnots + 1;
    let mut one_qubit_at = vec![0usize; slots];
    for _ in 0..single_qubit_gates {
        let s = rng.gen_range(0..slots);
        one_qubit_at[s] += 1;
    }

    let kinds = [
        OneQubitKind::H,
        OneQubitKind::T,
        OneQubitKind::Tdg,
        OneQubitKind::X,
    ];
    let mut prev: Option<(usize, usize)> = None;
    for (slot, &ones_here) in one_qubit_at.iter().enumerate() {
        for _ in 0..ones_here {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let q = rng.gen_range(0..num_qubits);
            circuit.one(kind, q);
        }
        if slot == cnots {
            break;
        }
        let (c, t) = next_pair(&mut rng, num_qubits, prev);
        circuit.cx(c, t);
        prev = Some((c, t));
    }
    circuit
}

fn next_pair(rng: &mut StdRng, n: usize, prev: Option<(usize, usize)>) -> (usize, usize) {
    if let Some((pc, pt)) = prev {
        if n > 2 && rng.gen_bool(0.6) {
            // Share one qubit with the previous CNOT.
            let shared = if rng.gen_bool(0.5) { pc } else { pt };
            let mut other = rng.gen_range(0..n);
            while other == shared {
                other = rng.gen_range(0..n);
            }
            return if rng.gen_bool(0.5) {
                (shared, other)
            } else {
                (other, shared)
            };
        }
    }
    let c = rng.gen_range(0..n);
    let mut t = rng.gen_range(0..n);
    while t == c {
        t = rng.gen_range(0..n);
    }
    (c, t)
}

/// FNV-1a hash for stable name→seed derivation.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::table1_profiles;

    #[test]
    fn exact_gate_counts_for_all_profiles() {
        for p in table1_profiles() {
            let c = circuit_for(&p);
            assert_eq!(c.num_qubits(), p.qubits, "{}", p.name);
            assert_eq!(c.num_cnots(), p.cnots, "{}", p.name);
            assert_eq!(
                c.num_single_qubit_gates(),
                p.single_qubit_gates,
                "{}",
                p.name
            );
            assert_eq!(c.original_cost(), p.original_cost(), "{}", p.name);
        }
    }

    #[test]
    fn deterministic_by_name() {
        let p = &table1_profiles()[0];
        assert_eq!(circuit_for(p), circuit_for(p));
    }

    #[test]
    fn different_names_differ() {
        let ps = table1_profiles();
        let a = circuit_for(&ps[0]);
        let b = circuit_for(&ps[1]);
        assert_ne!(a.gates(), b.gates());
    }

    #[test]
    fn locality_is_present() {
        // At least a third of consecutive CNOT pairs share a qubit.
        let c = synthetic_circuit(5, 0, 200, 7);
        let skel = c.cnot_skeleton();
        let sharing = skel
            .windows(2)
            .filter(|w| {
                let (a, b) = (w[0], w[1]);
                a.0 == b.0 || a.0 == b.1 || a.1 == b.0 || a.1 == b.1
            })
            .count();
        assert!(sharing * 3 >= skel.len(), "{sharing}/{}", skel.len());
    }

    #[test]
    fn zero_gates_edge_cases() {
        let c = synthetic_circuit(1, 5, 0, 3);
        assert_eq!(c.num_single_qubit_gates(), 5);
        let c = synthetic_circuit(3, 0, 0, 3);
        assert_eq!(c.gates().len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn cnots_need_two_qubits() {
        let _ = synthetic_circuit(1, 0, 1, 0);
    }

    #[test]
    fn seeds_change_output() {
        assert_ne!(
            synthetic_circuit(4, 5, 10, 1),
            synthetic_circuit(4, 5, 10, 2)
        );
    }
}
