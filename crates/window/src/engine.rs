//! The windowed engine: slice → solve → stitch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use qxmap_arch::{DeviceModel, Layout};
use qxmap_circuit::Circuit;
use qxmap_core::{Strategy, MAX_EXACT_QUBITS};
use qxmap_map::{
    CostBreakdown, Engine, Guarantee, MapReport, MapRequest, MapperError, Portfolio,
    WindowCertificate,
};

use crate::bridge::{self, StitchState};
use crate::slicer::{self, Item};

/// Default active-qubit cap per window. Six keeps each window's SAT
/// instance comfortably inside the exact regime while leaving room for
/// meaningful multi-qubit interaction blocks.
pub const DEFAULT_WINDOW_QUBITS: usize = 6;

/// Tuning knobs of the [`WindowedEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOptions {
    /// Maximum active qubits per window (clamped to
    /// `2..=`[`MAX_EXACT_QUBITS`] at run time). Smaller windows solve
    /// faster but stitch more.
    pub max_window_qubits: usize,
    /// Realize small window-to-window bridges with the provably cheapest
    /// SWAP sequence from the device's costed table instead of token
    /// routing. Optimal per bridge, but pays an exhaustive table build
    /// per distinct boundary subgraph.
    pub sat_bridges: bool,
}

impl Default for WindowOptions {
    fn default() -> WindowOptions {
        WindowOptions {
            max_window_qubits: DEFAULT_WINDOW_QUBITS,
            sat_bridges: false,
        }
    }
}

/// Window-decomposed mapping: breaks the 8-qubit wall of the exact
/// method by slicing the circuit into interaction-connected windows of
/// at most [`WindowOptions::max_window_qubits`] active qubits, solving
/// each window exactly (through a [`Portfolio`] race) on a connected
/// device subgraph chosen near the window's qubits, and stitching
/// consecutive windows with SWAP bridges.
///
/// The stitched answer is a single verified [`MapReport`] whose
/// [`MapReport::windows`] section records, per window, where it ran,
/// what it cost, and whether its *local* solve is provably minimal — the
/// global result carries no optimality claim (windowing is a
/// decomposition heuristic), so [`Guarantee::Optimal`] requests are
/// refused.
///
/// Windows solve in parallel on a scoped worker pool; the request's
/// wall-clock deadline and conflict budget are split evenly across the
/// solvable windows (deterministically, so window cache keys stay
/// stable), and each window probes the process-wide
/// [`qxmap_map::SolveCache`] by its own subcircuit skeleton — repeated
/// structure across or within circuits is solved once.
///
/// Instances the monolithic engines already handle (devices inside the
/// exact regime, or disconnected devices where bridges cannot route)
/// are delegated to the inner [`Portfolio`] unchanged.
#[derive(Debug, Default)]
pub struct WindowedEngine {
    options: WindowOptions,
    portfolio: Portfolio,
}

impl WindowedEngine {
    /// Creates the engine with default options.
    pub fn new() -> WindowedEngine {
        WindowedEngine::default()
    }

    /// Creates the engine with explicit options.
    pub fn with_options(options: WindowOptions) -> WindowedEngine {
        WindowedEngine {
            options,
            portfolio: Portfolio::new(),
        }
    }

    /// The engine's options.
    pub fn options(&self) -> WindowOptions {
        self.options
    }

    fn run_windowed(&self, request: &MapRequest) -> Result<MapReport, MapperError> {
        let started = Instant::now();
        let circuit = request.circuit();
        let model = request.device_model();
        let cm = model.coupling_map();
        let n = circuit.num_qubits();
        let m = cm.num_qubits();
        if n > m {
            return Err(MapperError::TooManyQubits {
                logical: n,
                physical: m,
            });
        }
        if request.guarantee() == Guarantee::Optimal {
            return Err(MapperError::OptimalityUnavailable {
                reason: "window decomposition certifies per-window minima, not a global one"
                    .to_string(),
            });
        }
        // Devices inside the exact regime gain nothing from windowing,
        // and bridges cannot route across a disconnected device: both go
        // to the monolithic race unchanged.
        if m <= MAX_EXACT_QUBITS || !cm.is_connected() {
            return self.portfolio.run(request);
        }

        let base = circuit.decompose_swaps();
        let cap = self.options.max_window_qubits.clamp(2, MAX_EXACT_QUBITS);
        let trace = request.trace();
        let windows_started = Instant::now();
        let mut slice_span = trace.span("windows/slice");
        let items = slicer::slice(&base, cap);
        slice_span.counter("items", items.len() as u64);
        slice_span.end();
        let mut plan_span = trace.span("windows/plan");
        let plans = self.plan_regions(request, model, n, &items);
        plan_span.counter("windows", plans.len() as u64);
        plan_span.end();
        // One span covers the whole parallel pool (individual windows
        // overlap in time, so they report as counters, not spans).
        let mut solve_span = trace.span("windows/solve");
        let solved = self.solve_windows(&plans)?;
        solve_span.counter("windows", solved.len() as u64);
        solve_span.counter(
            "cache_hits",
            solved.iter().filter(|r| r.served_from_cache).count() as u64,
        );
        solve_span.end();
        let mut stitch_span = trace.span("windows/stitch");
        let mut report =
            self.stitch(request, model, n, m, &base, &items, &plans, solved, started)?;
        stitch_span.counter("bridge_swaps", {
            let windows = report.windows.as_deref().unwrap_or(&[]);
            windows.iter().map(|w| u64::from(w.bridge_swaps)).sum()
        });
        stitch_span.end();
        // The parent span closes the tree: slice/plan/solve/stitch nest
        // under one top-level `windows` phase.
        trace.record("windows", windows_started, windows_started.elapsed());
        report.trace = trace.finish();
        report
            .verify(circuit, cm)
            .expect("the stitched mapping verifies against the full circuit");
        Ok(report)
    }

    /// The sequential pre-pass: walks the stitch plan once, choosing for
    /// every solvable block a connected device region near the block's
    /// (predicted) qubit positions, and builds the block's sub-request.
    /// Predictions track where each block *will* leave its qubits so
    /// later blocks anchor their regions realistically.
    fn plan_regions(
        &self,
        request: &MapRequest,
        model: &DeviceModel,
        num_logical: usize,
        items: &[Item],
    ) -> Vec<(Vec<usize>, MapRequest)> {
        let m = model.num_qubits();
        let solvable = items
            .iter()
            .filter(|i| matches!(i, Item::Block(b) if b.has_two_qubit))
            .count();
        // Even, deterministic budget slices keep window cache keys
        // stable across runs of the same request.
        let units = u32::try_from(solvable.max(1)).unwrap_or(u32::MAX);
        let deadline_slice = request.deadline().map(|d| d / units);
        let conflict_slice = request
            .conflict_budget()
            .map(|b| (b / u64::from(units)).max(1));
        // Window strategies restrict *within* a block; explicit global
        // change-point lists are meaningless on a subcircuit.
        let strategy = match request.strategy() {
            Strategy::Custom(_) => Strategy::BeforeEveryGate,
            s => s.clone(),
        };

        let mut predicted_pos: Vec<Option<usize>> = vec![None; num_logical];
        let mut predicted_occ: Vec<Option<usize>> = vec![None; m];
        let mut plans = Vec::with_capacity(solvable);
        for item in items {
            let Item::Block(block) = item else { continue };
            if !block.has_two_qubit {
                // Mirror the stitcher: lone qubits materialize at the
                // lowest free slot.
                for &q in &block.qubits {
                    if predicted_pos[q].is_none() {
                        let p = (0..m)
                            .find(|&p| predicted_occ[p].is_none())
                            .expect("n <= m leaves a free slot");
                        predicted_pos[q] = Some(p);
                        predicted_occ[p] = Some(q);
                    }
                }
                continue;
            }
            let region = allocate_region(model, &predicted_occ, &predicted_pos, &block.qubits);
            // Predict members at the region's slots in sorted order (the
            // local solve may permute them within the region, which is
            // exactly the prediction's error bar).
            for &q in &block.qubits {
                if let Some(p) = predicted_pos[q].take() {
                    predicted_occ[p] = None;
                }
            }
            for &p in &region {
                if let Some(q) = predicted_occ[p].take() {
                    predicted_pos[q] = None; // displaced bystander, slot unknown
                }
            }
            for (i, &q) in block.qubits.iter().enumerate() {
                predicted_pos[q] = Some(region[i]);
                predicted_occ[region[i]] = Some(q);
            }

            let mut sub =
                MapRequest::for_model(block.circuit.clone(), model.subgraph_model(&region))
                    .with_strategy(strategy.clone())
                    .with_subsets(false)
                    .with_conflict_budget(conflict_slice)
                    .with_upper_bound(None)
                    .with_seed(request.seed());
            if let Some(d) = deadline_slice {
                sub = sub.with_deadline(d);
            }
            plans.push((region, sub));
        }
        plans
    }

    /// Solves every planned window on a scoped worker pool under the
    /// sliced budgets. Each window goes through the portfolio's cached
    /// path, so a window whose subcircuit skeleton was already solved on
    /// the same subgraph is answered from the [`qxmap_map::SolveCache`].
    fn solve_windows(
        &self,
        plans: &[(Vec<usize>, MapRequest)],
    ) -> Result<Vec<MapReport>, MapperError> {
        let count = plans.len();
        let workers = std::thread::available_parallelism()
            .map(|w| w.get())
            .unwrap_or(1)
            .min(count.max(1));
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Result<MapReport, MapperError>)>> =
            Mutex::new(Vec::with_capacity(count));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = self.portfolio.run_cached(&plans[i].1);
                    done.lock()
                        .expect("no panics under the lock")
                        .push((i, result));
                });
            }
        });
        let mut done = done.into_inner().expect("workers have exited");
        done.sort_by_key(|(i, _)| *i);
        done.into_iter().map(|(_, r)| r).collect()
    }

    /// The sequential stitch: replays the plan in order, bridging each
    /// solvable block's qubits to its region, emitting the block's
    /// solved body, and tracking wire provenance so late-materializing
    /// qubits claim the initial slots their wires actually started on.
    #[allow(clippy::too_many_arguments)]
    fn stitch(
        &self,
        request: &MapRequest,
        model: &DeviceModel,
        n: usize,
        m: usize,
        base: &Circuit,
        items: &[Item],
        plans: &[(Vec<usize>, MapRequest)],
        solved: Vec<MapReport>,
        started: Instant,
    ) -> Result<MapReport, MapperError> {
        let mut state = StitchState::new(n, m);
        let mut out = Circuit::with_clbits(m, base.num_clbits());
        // Logical qubit → the initial slot its carrier wire started on.
        let mut claimed: Vec<Option<usize>> = vec![None; n];
        let mut certs: Vec<WindowCertificate> = Vec::new();
        let mut objective = 0u64;
        let mut swaps = 0u32;
        let mut reversals = 0u32;
        let mut solved = solved.into_iter();
        let mut plan = plans.iter();

        for item in items {
            let block = match item {
                Item::Barrier => {
                    out.barrier();
                    continue;
                }
                Item::Block(block) => block,
            };
            if !block.has_two_qubit {
                for &q in &block.qubits {
                    if state.pos[q].is_none() {
                        let p = (0..m)
                            .find(|&p| state.occ[p].is_none())
                            .expect("n <= m leaves a free slot");
                        materialize(&mut state, &mut claimed, q, p);
                    }
                }
                for gate in block.circuit.gates() {
                    out.push(
                        gate.map_qubits(|lq| {
                            state.pos[block.qubits[lq]].expect("member is placed")
                        }),
                    );
                }
                let mut region: Vec<usize> = block
                    .qubits
                    .iter()
                    .map(|&q| state.pos[q].expect("member is placed"))
                    .collect();
                region.sort_unstable();
                certs.push(WindowCertificate {
                    index: certs.len(),
                    qubits: block.qubits.clone(),
                    region,
                    gates: block.gates,
                    objective: 0,
                    proved_optimal: true,
                    served_from_cache: false,
                    engine: "trivial".to_string(),
                    bridge_swaps: 0,
                    bridge_cost: 0,
                });
                continue;
            }

            let (region, _) = plan.next().expect("one plan per solvable block");
            let rep = solved.next().expect("one report per solvable block");
            // Bridge requirement: every member must reach the region
            // slot the local solve's initial layout put it on.
            let size = block.qubits.len();
            let li = &rep.initial_layout;
            let mut moves = Vec::new();
            let mut reserved = Vec::new();
            let mut fresh = Vec::new();
            for (j, &q) in block.qubits.iter().enumerate() {
                let t = region[li.phys_of(j).expect("local initial layout is complete")];
                match state.pos[q] {
                    Some(f) => moves.push((f, t)),
                    None => {
                        reserved.push(t);
                        fresh.push((q, t));
                    }
                }
            }
            // The SAT-bridge opt-in reads the request's *live* deadline
            // slack: the per-window budget split only covers the local
            // solves, so a late-running stitch must not spend SAT time
            // the deadline no longer has.
            let slack = request
                .deadline()
                .map(|d| d.saturating_sub(started.elapsed()));
            let outcome = bridge::route_bridge(
                &mut out,
                model,
                &mut state,
                &moves,
                &reserved,
                self.options.sat_bridges,
                slack,
            );
            for (q, t) in fresh {
                materialize(&mut state, &mut claimed, q, t);
            }
            // The block body, translated region-local → device indices.
            for gate in rep.mapped.gates() {
                out.push(gate.map_qubits(|lp| region[lp]));
            }
            // The body moved member j from its initial to its final
            // region slot: permute occupancy and provenance to match.
            // Region slots hold exactly the members here, so a snapshot
            // of the sources is all the state the rewrite needs.
            let lf = &rep.final_layout;
            let from: Vec<usize> = (0..size)
                .map(|j| region[li.phys_of(j).expect("complete")])
                .collect();
            let to: Vec<usize> = (0..size)
                .map(|j| region[lf.phys_of(j).expect("local final layout is complete")])
                .collect();
            let origins: Vec<usize> = from.iter().map(|&f| state.origin[f]).collect();
            for (j, &q) in block.qubits.iter().enumerate() {
                state.occ[to[j]] = Some(q);
                state.origin[to[j]] = origins[j];
                state.pos[q] = Some(to[j]);
            }

            objective += rep.cost.objective + outcome.cost;
            swaps += rep.cost.swaps + outcome.swaps;
            reversals += rep.cost.reversals;
            certs.push(WindowCertificate {
                index: certs.len(),
                qubits: block.qubits.clone(),
                region: region.clone(),
                gates: block.gates,
                objective: rep.cost.objective,
                proved_optimal: rep.proved_optimal,
                served_from_cache: rep.served_from_cache,
                engine: rep.engine.clone(),
                bridge_swaps: outcome.swaps,
                bridge_cost: outcome.cost,
            });
        }

        if let Some(bound) = request.upper_bound() {
            // The declared bound is a hard ceiling for every engine.
            if objective >= bound {
                return Err(MapperError::BoundUnmet { bound });
            }
        }

        // Initial layout: claimed wires keep their true starting slots;
        // logicals that never materialized (no gates at all) take the
        // leftover slots in order.
        let mut taken = vec![false; m];
        for &s in claimed.iter().flatten() {
            taken[s] = true;
        }
        let mut leftovers = (0..m).filter(|&s| !taken[s]);
        let init: Vec<usize> = claimed
            .into_iter()
            .map(|c| c.unwrap_or_else(|| leftovers.next().expect("n <= m leaves a slot")))
            .collect();
        // Final layout: placed qubits sit where the stitch left them; a
        // never-placed qubit rides its (untouched, unclaimed) wire, which
        // provenance locates.
        let mut wire_at = vec![usize::MAX; m];
        for p in 0..m {
            wire_at[state.origin[p]] = p;
        }
        let finl: Vec<Option<usize>> = (0..n)
            .map(|q| Some(state.pos[q].unwrap_or(wire_at[init[q]])))
            .collect();
        let initial_layout = Layout::from_log2phys(init.into_iter().map(Some).collect(), m)
            .expect("initial claims are injective");
        let final_layout = Layout::from_log2phys(finl, m).expect("final occupancy is injective");

        let added_gates = (out.original_cost() as u64)
            .checked_sub(base.original_cost() as u64)
            .expect("stitching only adds gates");
        let elapsed = started.elapsed();
        Ok(MapReport {
            engine: self.name().to_string(),
            winner: self.name().to_string(),
            mapped: out,
            initial_layout,
            final_layout,
            cost: CostBreakdown {
                objective,
                swaps,
                reversals,
                added_gates,
            },
            // Costs are non-negative, so a zero objective beats anything;
            // otherwise windowing is a decomposition heuristic and claims
            // no global proof (the per-window proofs live in `windows`).
            proved_optimal: objective == 0,
            runtime: elapsed,
            elapsed,
            served_from_cache: false,
            subset: None,
            num_change_points: None,
            iterations: None,
            windows: Some(certs),
            // The caller (`run_windowed`) attaches the finished timeline
            // after the stitch span closes.
            trace: None,
        })
    }
}

impl Engine for WindowedEngine {
    fn name(&self) -> &str {
        "windowed"
    }

    fn cache_signature(&self) -> String {
        format!(
            "windowed:k{}:b{}",
            self.options.max_window_qubits,
            u8::from(self.options.sat_bridges)
        )
    }

    fn run(&self, request: &MapRequest) -> Result<MapReport, MapperError> {
        self.run_windowed(request)
    }
}

/// Puts logical `q` on free slot `p`, claiming the initial slot of the
/// carrier wire currently there.
fn materialize(state: &mut StitchState, claimed: &mut [Option<usize>], q: usize, p: usize) {
    debug_assert!(state.occ[p].is_none(), "materialization needs a carrier");
    state.occ[p] = Some(q);
    state.pos[q] = Some(p);
    claimed[q] = Some(state.origin[p]);
}

/// Chooses a connected region of `members.len()` physical qubits for one
/// block: a handful of candidate anchors near the members' predicted
/// positions (or the device center for a first block) each grow a region
/// greedily by the frontier slot minimizing pull toward those positions,
/// compactness, and an eviction penalty on slots predicted occupied by
/// non-members; the cheapest grown region wins. Anchoring on a member's
/// own slot is not always best — when its neighborhood is crowded with
/// earlier windows' qubits, a region one hop into free space trades a
/// short member move for zero evictions.
fn allocate_region(
    model: &DeviceModel,
    predicted_occ: &[Option<usize>],
    predicted_pos: &[Option<usize>],
    members: &[usize],
) -> Vec<usize> {
    let cm = model.coupling_map();
    let m = cm.num_qubits();
    let dist = |a: usize, b: usize| model.swap_distance(a, b).unwrap_or(u64::MAX);
    let placed: Vec<usize> = members.iter().filter_map(|&q| predicted_pos[q]).collect();
    // Evicting a bystander costs far more than its chain's own swaps:
    // the displaced qubit lands somewhere arbitrary and later windows
    // pay to fetch it back. Price it well above a few hops of travel.
    let evict = u64::from(model.stats().max_swap_cost) * 10;
    let occupancy = |p: usize| -> u64 {
        match predicted_occ[p] {
            Some(q) if !members.contains(&q) => evict,
            _ => 0,
        }
    };
    let pull = |p: usize| -> u64 {
        if placed.is_empty() {
            // First block: center it so later windows have room on all
            // sides.
            (0..m).map(|q| dist(p, q)).max().unwrap_or(0)
        } else {
            placed.iter().map(|&o| dist(p, o)).sum::<u64>() / placed.len() as u64
        }
    };

    let grow = |anchor: usize| -> Vec<usize> {
        let mut region = vec![anchor];
        let mut in_region = vec![false; m];
        in_region[anchor] = true;
        while region.len() < members.len() {
            // Pull toward the members' current positions, stay compact
            // around what is already chosen, and prefer free slots. The
            // pulls are averaged so the eviction penalty stays on the
            // same scale regardless of how many members are placed.
            let score = |p: usize| {
                let compact: u64 = region.iter().map(|&r| dist(p, r)).sum();
                pull(p) + compact / region.len() as u64 + occupancy(p)
            };
            let mut best: Option<(u64, usize)> = None;
            for &r in &region {
                for w in cm.neighbors(r) {
                    if in_region[w] {
                        continue;
                    }
                    let cand = (score(w), w);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let (_, w) = best.expect("a connected device always has a frontier");
            region.push(w);
            in_region[w] = true;
        }
        region
    };
    // What a grown region will actually cost the bridge: an eviction
    // per occupied slot, plus each placed member's travel to the
    // region's nearest slot.
    let cost = |region: &[usize]| -> u64 {
        region.iter().map(|&p| occupancy(p)).sum::<u64>()
            + placed
                .iter()
                .map(|&o| region.iter().map(|&p| dist(p, o)).min().unwrap_or(0))
                .sum::<u64>()
    };
    let mut anchors: Vec<usize> = (0..m).collect();
    anchors.sort_by_key(|&p| (pull(p) + occupancy(p), p));
    let mut region = anchors
        .into_iter()
        .take(4)
        .map(grow)
        .min_by_key(|region| cost(region))
        .expect("device has qubits");
    region.sort_unstable();
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;
    use std::time::Duration;

    fn ladder(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn small_devices_delegate_to_the_portfolio() {
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let report = WindowedEngine::new().run(&request).unwrap();
        assert!(report.windows.is_none());
        assert_eq!(report.cost.objective, 4);
        report
            .verify(&paper_example(), &devices::ibm_qx4())
            .unwrap();
    }

    #[test]
    fn windowed_ladder_stitches_and_verifies() {
        let circuit = ladder(10);
        let device = devices::linear(12);
        let request = MapRequest::new(circuit.clone(), device.clone());
        let report = WindowedEngine::new().run(&request).unwrap();
        report.verify(&circuit, &device).unwrap();
        let windows = report.windows.as_ref().unwrap();
        assert!(windows.len() >= 2, "{} windows", windows.len());
        assert_eq!(
            windows.iter().map(|w| w.gates).sum::<usize>(),
            circuit.original_cost()
        );
        // Every solvable window ran exactly and proved its local slice.
        assert!(windows.iter().all(|w| w.proved_optimal));
        assert_eq!(report.engine, "windowed");
    }

    #[test]
    fn barriers_measures_and_idle_qubits_survive_stitching() {
        let mut c = Circuit::with_clbits(9, 9);
        c.h(0).cx(0, 1).cx(1, 2).barrier().cx(3, 4).h(8);
        c.measure(2, 2).measure(8, 8);
        let device = devices::grid(3, 4); // 12 qubits, > exact regime
        let request = MapRequest::new(c.clone(), device.clone());
        let report = WindowedEngine::new().run(&request).unwrap();
        report.verify(&c, &device).unwrap();
        assert!(report.initial_layout.is_complete());
        assert!(report.final_layout.is_complete());
        let windows = report.windows.as_ref().unwrap();
        // The lone h(8)+measure window bypassed the solver.
        assert!(windows.iter().any(|w| w.engine == "trivial"));
    }

    #[test]
    fn long_range_interaction_pays_a_bridge() {
        let mut c = ladder(10);
        c.cx(0, 9); // far apart after the ladder's windows
        let device = devices::linear(12);
        let request = MapRequest::new(c.clone(), device.clone());
        let report = WindowedEngine::new().run(&request).unwrap();
        report.verify(&c, &device).unwrap();
        let windows = report.windows.as_ref().unwrap();
        assert!(
            windows.iter().any(|w| w.bridge_swaps > 0),
            "stitching a long-range interaction must bridge"
        );
        assert!(report.cost.objective > 0);
        // ... which makes a low upper bound unmeetable.
        let bounded = MapRequest::new(c, device).with_upper_bound(Some(1));
        assert_eq!(
            WindowedEngine::new().run(&bounded).unwrap_err(),
            MapperError::BoundUnmet { bound: 1 }
        );
    }

    #[test]
    fn optimal_guarantee_is_refused() {
        let request =
            MapRequest::new(ladder(10), devices::linear(12)).with_guarantee(Guarantee::Optimal);
        assert!(matches!(
            WindowedEngine::new().run(&request),
            Err(MapperError::OptimalityUnavailable { .. })
        ));
    }

    #[test]
    fn tight_deadlines_route_bridges_without_sat_time() {
        // A long-range interaction forces a bridge, SAT bridges are
        // opted in, and the deadline is already effectively spent by
        // stitch time. The bridge must read the *live* slack — not the
        // per-window split computed at admission — drop to the chain
        // router, and still deliver a verifying report.
        let mut c = ladder(10);
        c.cx(0, 9);
        let device = devices::linear(12);
        let request =
            MapRequest::new(c.clone(), device.clone()).with_deadline(Duration::from_nanos(1));
        let engine = WindowedEngine::with_options(WindowOptions {
            sat_bridges: true,
            ..WindowOptions::default()
        });
        let report = engine.run(&request).expect("deadlines degrade, never fail");
        report.verify(&c, &device).unwrap();
        assert!(
            report
                .windows
                .as_ref()
                .unwrap()
                .iter()
                .any(|w| w.bridge_swaps > 0),
            "the long-range interaction still bridges"
        );
    }

    #[test]
    fn cache_signature_tracks_options() {
        let a = WindowedEngine::new();
        let b = WindowedEngine::with_options(WindowOptions {
            max_window_qubits: 4,
            sat_bridges: true,
        });
        assert_ne!(a.cache_signature(), b.cache_signature());
    }
}
