//! Permutation bridges between windows.
//!
//! After a window's local solve, its logical qubits must sit on specific
//! physical slots of the window's region before the window's mapped
//! gates can be emitted. The bridge realizes that requirement as a SWAP
//! chain on the full device:
//!
//! 1. the partial requirement (placed qubits → their target slots,
//!    reserved slots → carrier wires) is completed into a full
//!    permutation of the device's wires — displaced bystanders get the
//!    nearest vacated slots, everything else stays put;
//! 2. the permutation is routed **token-style** by default: a greedy
//!    phase takes the best potential-decreasing edge swap (potential =
//!    summed cost-weighted [`DeviceModel::swap_distances`] of every
//!    misplaced wire to its destination) until no single swap helps,
//!    then a BFS-spanning-tree leaf-elimination phase finishes the
//!    stragglers — structurally guaranteed to terminate;
//! 3. with the SAT-optimal opt-in, permutations whose support fits a
//!    connected subgraph of at most [`qxmap_core::MAX_EXACT_QUBITS`]
//!    qubits are instead realized by the provably cheapest sequence from
//!    the model's [`DeviceModel::costed_table`].
//!
//! Every emitted SWAP is a full [`qxmap_arch::route::emit_swap`] unitary
//! (3 gates on bidirectional edges, 7 on unidirectional ones), so
//! untracked carrier wires are permuted losslessly and the stitched
//! circuit stays semantically faithful.

use std::collections::BTreeSet;
use std::time::Duration;

use qxmap_arch::{route, DeviceModel, Permutation};
use qxmap_circuit::Circuit;
use qxmap_core::MAX_EXACT_QUBITS;

/// Mutable stitching state threaded through the whole windowed run.
#[derive(Debug, Clone)]
pub(crate) struct StitchState {
    /// Physical slot → logical qubit currently living there.
    pub occ: Vec<Option<usize>>,
    /// Logical qubit → its current physical slot.
    pub pos: Vec<Option<usize>>,
    /// Physical slot → the *initial* slot of the wire whose content is
    /// currently there (wire provenance). Bridges permute it alongside
    /// the occupancy, so a late-materializing qubit can claim the
    /// initial slot its carrier wire actually started on.
    pub origin: Vec<usize>,
}

impl StitchState {
    pub(crate) fn new(num_logical: usize, num_phys: usize) -> StitchState {
        StitchState {
            occ: vec![None; num_phys],
            pos: vec![None; num_logical],
            origin: (0..num_phys).collect(),
        }
    }

    /// Applies one physical SWAP to the tracked state.
    pub(crate) fn apply_swap(&mut self, a: usize, b: usize) {
        self.occ.swap(a, b);
        self.origin.swap(a, b);
        if let Some(q) = self.occ[a] {
            self.pos[q] = Some(a);
        }
        if let Some(q) = self.occ[b] {
            self.pos[q] = Some(b);
        }
    }
}

/// What one bridge cost.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BridgeOutcome {
    /// SWAPs inserted.
    pub swaps: u32,
    /// Their summed cost under the device model.
    pub cost: u64,
}

/// Routes the bridge: after this returns, for every `(from, to)` in
/// `moves` the logical qubit that sat at `from` sits at `to`, and every
/// slot in `reserved` holds an untracked carrier wire (so a
/// materializing qubit can claim it). Emits the SWAP chain into `out`
/// and updates `state`.
///
/// The requirement is deliberately *partial*: bystander wires may end up
/// anywhere, which is what keeps bridges cheap — each move is a swap
/// chain along a cost-weighted shortest path that merely shifts
/// bystanders one hop, instead of a full device permutation that would
/// have to put every disturbed wire back.
///
/// `slack` is the request's *live* remaining deadline budget at the
/// moment this bridge is routed (`None` when the request carries no
/// deadline). The SAT-optimal path is an opt-in luxury: once the budget
/// is exhausted, spending SAT time on a bridge would blow the deadline
/// the per-window split was supposed to protect, so an exhausted slack
/// falls back to the always-fast chain router even when `sat_bridges`
/// is set.
///
/// The device must be connected (the engine guards this before
/// stitching).
pub(crate) fn route_bridge(
    out: &mut Circuit,
    model: &DeviceModel,
    state: &mut StitchState,
    moves: &[(usize, usize)],
    reserved: &[usize],
    sat_bridges: bool,
    slack: Option<Duration>,
) -> BridgeOutcome {
    #[cfg(debug_assertions)]
    let expected: Vec<(usize, Option<usize>)> =
        moves.iter().map(|&(f, t)| (t, state.occ[f])).collect();

    let mut outcome = BridgeOutcome::default();
    let affordable = sat_bridges && slack.is_none_or(|s| !s.is_zero());
    let routed_optimally =
        affordable && route_sat(out, model, state, moves, reserved, &mut outcome);
    if !routed_optimally {
        route_chains(out, model, state, moves, reserved, &mut outcome);
    }

    #[cfg(debug_assertions)]
    {
        for (t, q) in expected {
            debug_assert_eq!(state.occ[t], q, "bridge missed a move target");
        }
        for &s in reserved {
            debug_assert_eq!(state.occ[s], None, "reserved slot still occupied");
        }
    }
    outcome
}

/// Undirected adjacency with per-edge SWAP costs.
fn adjacency(model: &DeviceModel) -> Vec<Vec<(usize, u64)>> {
    let cm = model.coupling_map();
    let mut adj = vec![Vec::new(); cm.num_qubits()];
    for (a, b) in cm.undirected_edges() {
        let w = u64::from(model.swap_cost(a, b).expect("edge has a swap cost"));
        adj[a].push((b, w));
        adj[b].push((a, w));
    }
    adj
}

/// Cheapest path `from → to` whose *interior* avoids vertices rejected
/// by `open` (the endpoints are always admitted). Returns the vertex
/// sequence, or `None` if the open subgraph disconnects the endpoints.
fn dijkstra(
    adj: &[Vec<(usize, u64)>],
    from: usize,
    to: usize,
    open: impl Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let m = adj.len();
    let mut best = vec![u64::MAX; m];
    let mut prev = vec![usize::MAX; m];
    let mut heap = BinaryHeap::new();
    best[from] = 0;
    heap.push(Reverse((0u64, from)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if v == to {
            let mut path = vec![to];
            let mut p = to;
            while p != from {
                p = prev[p];
                path.push(p);
            }
            path.reverse();
            return Some(path);
        }
        if d > best[v] {
            continue;
        }
        for &(w, cost) in &adj[v] {
            if w != to && !open(w) {
                continue;
            }
            let nd = d + cost;
            if nd < best[w] {
                best[w] = nd;
                prev[w] = v;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    None
}

/// The workhorse router: settles each move (and then each reserved
/// slot) with a swap chain along the cheapest path, farthest-out first,
/// avoiding already-settled slots. When avoidance would disconnect the
/// endpoints the chain routes straight through and whatever it disturbed
/// is simply re-settled — and if that ever stops converging (bounded
/// attempts), the residual requirement falls back to the full
/// permutation router, which terminates unconditionally.
fn route_chains(
    out: &mut Circuit,
    model: &DeviceModel,
    state: &mut StitchState,
    moves: &[(usize, usize)],
    reserved: &[usize],
    outcome: &mut BridgeOutcome,
) {
    let m = model.num_qubits();
    let adj = adjacency(model);
    let dist = |a: usize, b: usize| model.swap_distance(a, b).unwrap_or(u64::MAX);
    // The requirement, rekeyed by logical qubit so displaced members are
    // re-found wherever a later chain shoved them.
    let want: Vec<(usize, usize)> = moves
        .iter()
        .map(|&(f, t)| (state.occ[f].expect("move source is occupied"), t))
        .collect();
    let budget = 2 * (want.len() + reserved.len()) + 4;
    let mut attempts = 0usize;
    loop {
        // Settled slots are avoided by later chains; recomputing the set
        // each round self-heals anything a fallback path disturbed.
        let mut locked = vec![false; m];
        for &(q, t) in &want {
            if state.pos[q] == Some(t) {
                locked[t] = true;
            }
        }
        for &s in reserved {
            if state.occ[s].is_none() {
                locked[s] = true;
            }
        }
        let next_move = want
            .iter()
            .filter(|&&(q, t)| state.pos[q] != Some(t))
            .max_by_key(|&&(q, t)| (dist(state.pos[q].expect("member is placed"), t), q))
            .copied();
        let (from, to) = match next_move {
            Some((q, t)) => (state.pos[q].expect("member is placed"), t),
            None => {
                // Members are all home; fill the next reserved slot by
                // pulling the nearest carrier onto it.
                let Some(&s) = reserved.iter().find(|&&s| state.occ[s].is_some()) else {
                    return; // requirement fully met
                };
                let c = (0..m)
                    .filter(|&p| state.occ[p].is_none() && !locked[p])
                    .min_by_key(|&p| (dist(p, s), p))
                    .expect("a carrier wire exists for every materializing qubit");
                (c, s)
            }
        };
        attempts += 1;
        if attempts > budget {
            break; // residual fallback below
        }
        let path = dijkstra(&adj, from, to, |p| !locked[p])
            .or_else(|| dijkstra(&adj, from, to, |_| true))
            .expect("the device is connected");
        for w in path.windows(2) {
            emit(out, model, state, outcome, w[0], w[1]);
        }
    }
    // Residual requirement (pathological avoidance loops only): realize
    // it as one full permutation — provably terminating.
    let residual_moves: Vec<(usize, usize)> = want
        .iter()
        .filter(|&&(q, t)| state.pos[q] != Some(t))
        .map(|&(q, t)| (state.pos[q].expect("member is placed"), t))
        .collect();
    let sigma = complete_permutation(model, state, &residual_moves, reserved);
    route_tokens(out, model, state, &sigma, outcome);
}

/// Completes the partial bridge requirement into a full permutation
/// `sigma` over the device's wires: `sigma[p]` is where the wire content
/// currently at `p` must end up.
fn complete_permutation(
    model: &DeviceModel,
    state: &StitchState,
    moves: &[(usize, usize)],
    reserved: &[usize],
) -> Vec<usize> {
    let m = model.num_qubits();
    let mut dest: Vec<Option<usize>> = vec![None; m];
    let mut used = vec![false; m];
    for &(f, t) in moves {
        debug_assert!(dest[f].is_none() && !used[t]);
        dest[f] = Some(t);
        used[t] = true;
    }
    // Reserved slots must end up holding carrier wires: pick the nearest
    // unassigned carrier for each (a carrier already at its reserved
    // slot costs zero moves).
    for &s in reserved {
        debug_assert!(!used[s]);
        let c = (0..m)
            .filter(|&p| state.occ[p].is_none() && dest[p].is_none())
            .min_by_key(|&p| (model.swap_distance(p, s).unwrap_or(u64::MAX), p))
            .expect("a carrier wire exists for every materializing qubit");
        dest[c] = Some(s);
        used[s] = true;
    }
    // Everything whose slot was not claimed stays put.
    for p in 0..m {
        if dest[p].is_none() && !used[p] {
            dest[p] = Some(p);
            used[p] = true;
        }
    }
    // Displaced bystanders (their slot was claimed as a target) take the
    // nearest vacated slot. The completion is balanced by construction:
    // every remaining token gets exactly one remaining slot.
    let mut free: Vec<usize> = (0..m).filter(|&s| !used[s]).collect();
    #[allow(clippy::needless_range_loop)] // `p` indexes `dest` *and* prices distances
    for p in 0..m {
        if dest[p].is_some() {
            continue;
        }
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| (model.swap_distance(p, s).unwrap_or(u64::MAX), s))
            .expect("permutation completion is balanced");
        dest[p] = Some(free.swap_remove(idx));
    }
    let sigma: Vec<usize> = dest.into_iter().map(|d| d.expect("complete")).collect();
    #[cfg(debug_assertions)]
    {
        let mut seen = vec![false; m];
        for &t in &sigma {
            debug_assert!(!seen[t], "sigma is not a bijection");
            seen[t] = true;
        }
    }
    sigma
}

/// The SAT-optimal bridge: when the permutation's support fits a
/// connected subgraph of at most [`MAX_EXACT_QUBITS`] qubits, realize it
/// with the provably cheapest SWAP sequence from the model's costed
/// table. Returns `false` (emitting nothing) when the boundary is too
/// large, leaving the token router to handle it.
fn route_sat(
    out: &mut Circuit,
    model: &DeviceModel,
    state: &mut StitchState,
    moves: &[(usize, usize)],
    reserved: &[usize],
    outcome: &mut BridgeOutcome,
) -> bool {
    let sigma = complete_permutation(model, state, moves, reserved);
    let support: Vec<usize> = (0..sigma.len()).filter(|&p| sigma[p] != p).collect();
    if support.is_empty() {
        return true; // nothing to route
    }
    let Some(subset) = connected_cover(model, &support, MAX_EXACT_QUBITS) else {
        return false;
    };
    // The support is closed under sigma (bijectivity) and cover
    // extensions are fixed points, so sigma restricts to the subset.
    let image: Vec<usize> = subset
        .iter()
        .map(|&p| {
            subset
                .binary_search(&sigma[p])
                .expect("sigma is closed over the cover")
        })
        .collect();
    let table = model.costed_table(&subset);
    let Some(seq) = table.sequence(&Permutation::from_image(image)) else {
        return false;
    };
    for &(la, lb) in &seq.to_vec() {
        emit(out, model, state, outcome, subset[la], subset[lb]);
    }
    true
}

/// Grows `support` into a connected vertex set of at most `max` qubits
/// by repeatedly splicing in a shortest connecting path, or `None` if it
/// cannot be done within the cap.
fn connected_cover(model: &DeviceModel, support: &[usize], max: usize) -> Option<Vec<usize>> {
    if support.len() > max {
        return None;
    }
    let cm = model.coupling_map();
    let mut set: BTreeSet<usize> = support.iter().copied().collect();
    loop {
        let members: Vec<usize> = set.iter().copied().collect();
        // Component of the first member within the induced subgraph.
        let mut comp = BTreeSet::new();
        let mut stack = vec![members[0]];
        comp.insert(members[0]);
        while let Some(v) = stack.pop() {
            for w in cm.neighbors(v) {
                if set.contains(&w) && comp.insert(w) {
                    stack.push(w);
                }
            }
        }
        if comp.len() == set.len() {
            break;
        }
        // BFS from the component through the full graph to the nearest
        // other member; add the path's interior.
        let m = cm.num_qubits();
        let mut prev: Vec<Option<usize>> = vec![None; m];
        let mut visited = vec![false; m];
        let mut queue: std::collections::VecDeque<usize> = comp.iter().copied().collect();
        comp.iter().for_each(|&v| visited[v] = true);
        let mut found = None;
        'bfs: while let Some(v) = queue.pop_front() {
            for w in cm.neighbors(v) {
                if !visited[w] {
                    visited[w] = true;
                    prev[w] = Some(v);
                    if set.contains(&w) {
                        found = Some(w);
                        break 'bfs;
                    }
                    queue.push_back(w);
                }
            }
        }
        let mut v = found?; // None: disconnected device — no cover.
        while let Some(p) = prev[v] {
            set.insert(v);
            v = p;
        }
        if set.len() > max {
            return None;
        }
    }
    Some(set.into_iter().collect())
}

/// Token routing: greedy potential-decreasing edge swaps, finished by
/// BFS-spanning-tree leaf elimination for guaranteed termination.
fn route_tokens(
    out: &mut Circuit,
    model: &DeviceModel,
    state: &mut StitchState,
    sigma: &[usize],
    outcome: &mut BridgeOutcome,
) {
    let m = model.num_qubits();
    let cm = model.coupling_map();
    // Token i is the wire that sat at position i when the bridge
    // started; it must reach sigma[i].
    let mut at: Vec<usize> = (0..m).collect();
    let mut tok: Vec<usize> = (0..m).collect();
    let dist = |a: usize, b: usize| model.swap_distance(a, b).expect("connected device");
    let edges = cm.undirected_edges();

    // Greedy phase: strictly decreases the integer potential
    // sum_i dist(at[i], sigma[i]), so it terminates.
    loop {
        let mut best: Option<(u64, (usize, usize))> = None;
        for &(a, b) in &edges {
            let (ta, tb) = (tok[a], tok[b]);
            let cur = dist(a, sigma[ta]) + dist(b, sigma[tb]);
            let swapped = dist(b, sigma[ta]) + dist(a, sigma[tb]);
            if swapped < cur {
                let gain = cur - swapped;
                if best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, (a, b)));
                }
            }
        }
        let Some((_, (a, b))) = best else { break };
        emit(out, model, state, outcome, a, b);
        tok.swap(a, b);
        at[tok[a]] = a;
        at[tok[b]] = b;
    }
    if (0..m).all(|i| at[i] == sigma[i]) {
        return;
    }

    // Tree phase: settle destinations deepest-first on a BFS spanning
    // tree. A settled vertex holds its final token and is never on a
    // later routing path (paths only climb through shallower vertices),
    // so every destination is settled exactly once.
    let mut parent: Vec<Option<usize>> = vec![None; m];
    let mut depth: Vec<usize> = vec![0; m];
    let mut visited = vec![false; m];
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut queue = std::collections::VecDeque::from([0usize]);
    visited[0] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for w in cm.neighbors(v) {
            if !visited[w] {
                visited[w] = true;
                parent[w] = Some(v);
                depth[w] = depth[v] + 1;
                queue.push_back(w);
            }
        }
    }
    debug_assert_eq!(order.len(), m, "device is connected");
    let mut inv = vec![0usize; m];
    for i in 0..m {
        inv[sigma[i]] = i;
    }
    for &v in order.iter().rev() {
        let token = inv[v];
        let p = at[token];
        if p == v {
            continue;
        }
        for (a, b) in tree_path(p, v, &parent, &depth) {
            emit(out, model, state, outcome, a, b);
            tok.swap(a, b);
            at[tok[a]] = a;
            at[tok[b]] = b;
        }
    }
    debug_assert!(
        (0..m).all(|i| at[i] == sigma[i]),
        "tree routing settles all tokens"
    );
}

/// Consecutive vertex pairs along the unique tree path from `from` to
/// `to` (climb both endpoints to their lowest common ancestor).
fn tree_path(
    from: usize,
    to: usize,
    parent: &[Option<usize>],
    depth: &[usize],
) -> Vec<(usize, usize)> {
    let mut up_from = vec![from];
    let mut up_to = vec![to];
    let (mut a, mut b) = (from, to);
    while depth[a] > depth[b] {
        a = parent[a].expect("deeper vertex has a parent");
        up_from.push(a);
    }
    while depth[b] > depth[a] {
        b = parent[b].expect("deeper vertex has a parent");
        up_to.push(b);
    }
    while a != b {
        a = parent[a].expect("distinct vertices below the root");
        b = parent[b].expect("distinct vertices below the root");
        up_from.push(a);
        up_to.push(b);
    }
    // up_from ends at the LCA; append the reversed descent to `to`.
    up_to.pop();
    up_from.extend(up_to.into_iter().rev());
    up_from.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Emits one SWAP (full unitary), charges it, and updates the state.
fn emit(
    out: &mut Circuit,
    model: &DeviceModel,
    state: &mut StitchState,
    outcome: &mut BridgeOutcome,
    a: usize,
    b: usize,
) {
    route::emit_swap(out, model.coupling_map(), a, b).expect("bridge swaps ride device edges");
    state.apply_swap(a, b);
    outcome.swaps += 1;
    outcome.cost += u64::from(model.swap_cost(a, b).expect("edge has a swap cost"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::{devices, DeviceModel};

    fn paper_model(name: &str) -> DeviceModel {
        DeviceModel::paper(devices::by_name(name).unwrap())
    }

    fn check_moves(model: &DeviceModel, moves: &[(usize, usize)], occupants: &[(usize, usize)]) {
        let mut state = StitchState::new(model.num_qubits(), model.num_qubits());
        for &(q, p) in occupants {
            state.occ[p] = Some(q);
            state.pos[q] = Some(p);
        }
        let mut out = Circuit::new(model.num_qubits());
        let before: Vec<Option<usize>> = moves.iter().map(|&(f, _)| state.occ[f]).collect();
        let outcome = route_bridge(&mut out, model, &mut state, moves, &[], false, None);
        for (&(_, t), q) in moves.iter().zip(before) {
            assert_eq!(state.occ[t], q);
        }
        // Every inserted SWAP decomposed into costed gates.
        assert!(out.original_cost() > 0 || outcome.swaps == 0);
    }

    #[test]
    fn routes_a_move_across_a_line() {
        let model = paper_model("linear-6");
        check_moves(&model, &[(0, 4)], &[(0, 0)]);
    }

    #[test]
    fn routes_crossing_moves() {
        let model = paper_model("linear-5");
        // Two logicals swap ends — worst-case crossing traffic.
        check_moves(&model, &[(0, 4), (4, 0)], &[(0, 0), (1, 4)]);
    }

    #[test]
    fn reserved_slots_end_up_carrier_held() {
        let model = paper_model("linear-4");
        let mut state = StitchState::new(4, 4);
        // Logical 0 sits exactly on the slot a new qubit needs.
        state.occ[2] = Some(0);
        state.pos[0] = Some(2);
        let mut out = Circuit::new(4);
        route_bridge(&mut out, &model, &mut state, &[], &[2], false, None);
        assert_eq!(state.occ[2], None);
        assert_eq!(state.pos[0], Some(1)); // displaced to the nearest free slot
    }

    #[test]
    fn sat_bridge_matches_the_requirement() {
        let model = paper_model("ring-5");
        let mut state = StitchState::new(5, 5);
        for q in 0..3 {
            state.occ[q] = Some(q);
            state.pos[q] = Some(q);
        }
        let mut out = Circuit::new(5);
        let outcome = route_bridge(
            &mut out,
            &model,
            &mut state,
            &[(0, 1), (1, 2), (2, 0)],
            &[],
            true,
            Some(Duration::from_secs(60)),
        );
        assert_eq!(state.occ[1], Some(0));
        assert_eq!(state.occ[2], Some(1));
        assert_eq!(state.occ[0], Some(2));
        assert!(outcome.swaps >= 2);
    }

    #[test]
    fn exhausted_slack_falls_back_to_chain_routing() {
        // The same 3-cycle requirement, once with the budget gone (the
        // SAT opt-in must yield) and once with sat_bridges off: both
        // must route identically — and still satisfy every move.
        let model = paper_model("ring-5");
        let run = |sat_bridges: bool, slack: Option<Duration>| {
            let mut state = StitchState::new(5, 5);
            for q in 0..3 {
                state.occ[q] = Some(q);
                state.pos[q] = Some(q);
            }
            let mut out = Circuit::new(5);
            let outcome = route_bridge(
                &mut out,
                &model,
                &mut state,
                &[(0, 1), (1, 2), (2, 0)],
                &[],
                sat_bridges,
                slack,
            );
            assert_eq!(state.occ[1], Some(0));
            assert_eq!(state.occ[2], Some(1));
            assert_eq!(state.occ[0], Some(2));
            (out, outcome.swaps, outcome.cost)
        };
        let (tight, tight_swaps, tight_cost) = run(true, Some(Duration::ZERO));
        let (chain, chain_swaps, chain_cost) = run(false, None);
        assert_eq!(tight, chain, "zero slack must take the chain path");
        assert_eq!((tight_swaps, tight_cost), (chain_swaps, chain_cost));
    }
}
