//! Window-decomposed mapping: past the 8-qubit wall of the exact method.
//!
//! The paper's exact SAT formulation is exhaustive over physical
//! permutations and stops being practical beyond
//! [`qxmap_core::MAX_EXACT_QUBITS`] qubits. This crate trades the global
//! minimality proof for reach: it slices a large circuit into temporal
//! windows of bounded active-qubit count, splits each window into
//! interaction-connected blocks, solves every block *exactly* on a
//! connected subgraph of the device chosen near the block's qubits, and
//! stitches consecutive blocks with SWAP bridges routed on the device's
//! cost-weighted distance matrix.
//!
//! The result is one verified end-to-end [`qxmap_map::MapReport`] whose
//! [`qxmap_map::MapReport::windows`] section carries a per-window
//! optimality certificate: each slice of the answer is provably minimal
//! for its subcircuit on its subgraph, even though the stitched whole is
//! heuristic.
//!
//! ```
//! use qxmap_arch::devices;
//! use qxmap_circuit::Circuit;
//! use qxmap_map::{Engine, MapRequest};
//! use qxmap_window::WindowedEngine;
//!
//! let mut circuit = Circuit::new(10);
//! for q in 0..9 {
//!     circuit.cx(q, q + 1);
//! }
//! let device = devices::linear(12); // beyond the exact regime
//! let request = MapRequest::new(circuit.clone(), device.clone());
//! let report = WindowedEngine::new().run(&request).unwrap();
//! report.verify(&circuit, &device).unwrap();
//! assert!(report.windows.unwrap().iter().all(|w| w.proved_optimal));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bridge;
mod engine;
mod slicer;

pub use engine::{WindowOptions, WindowedEngine, DEFAULT_WINDOW_QUBITS};
