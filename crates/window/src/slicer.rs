//! Temporal windowing and interaction-connected block extraction.
//!
//! The slicer walks the (SWAP-decomposed) gate stream once, cutting a
//! new *window* whenever admitting the next gate would push the window's
//! active-qubit set past the configured cap (or at a barrier, which is a
//! global scheduling fence and must not be reordered across). Each
//! window is then split into *blocks* — connected components of the
//! window's interaction graph. Blocks of one window act on disjoint
//! qubits, so they commute and can be placed, solved and emitted
//! independently; each block is what the windowed engine exact-solves on
//! a device subgraph.

use std::collections::BTreeMap;

use qxmap_circuit::{Circuit, Gate};

/// One interaction-connected subcircuit of a window.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// Global logical qubits active in this block, sorted ascending.
    /// `qubits[i]` is the global identity of the block circuit's local
    /// qubit `i`.
    pub qubits: Vec<usize>,
    /// The block subcircuit over local qubit indices (classical bits
    /// keep their global indices).
    pub circuit: Circuit,
    /// Costed gates of the original circuit that fell into this block.
    pub gates: usize,
    /// Whether the block contains a two-qubit gate. Blocks without one
    /// never need SWAP insertion and bypass the solver entirely.
    pub has_two_qubit: bool,
}

/// One element of the stitch plan, in emission order.
#[derive(Debug, Clone)]
pub(crate) enum Item {
    /// A solvable/emittable block.
    Block(Block),
    /// A barrier of the input circuit: windows never span it, and it is
    /// re-emitted as a full-device barrier between them.
    Barrier,
}

/// Slices `circuit` (which must already be SWAP-decomposed) into blocks
/// of at most `max_window_qubits` active qubits each.
///
/// `max_window_qubits` must be at least 2 (a two-qubit gate must fit in
/// one window); the engine clamps before calling.
pub(crate) fn slice(circuit: &Circuit, max_window_qubits: usize) -> Vec<Item> {
    debug_assert!(max_window_qubits >= 2);
    let mut items = Vec::new();
    let mut window: Vec<&Gate> = Vec::new();
    let mut active: Vec<bool> = vec![false; circuit.num_qubits()];
    let mut active_count = 0usize;

    let flush = |window: &mut Vec<&Gate>,
                 active: &mut Vec<bool>,
                 active_count: &mut usize,
                 items: &mut Vec<Item>| {
        if !window.is_empty() {
            split_blocks(window, circuit, items);
            window.clear();
            active.iter_mut().for_each(|a| *a = false);
            *active_count = 0;
        }
    };

    for gate in circuit.gates() {
        if let Gate::Barrier(_) = gate {
            flush(&mut window, &mut active, &mut active_count, &mut items);
            items.push(Item::Barrier);
            continue;
        }
        debug_assert!(
            !matches!(gate, Gate::Swap { .. }),
            "slicer input is SWAP-decomposed"
        );
        let qs = gate.qubits();
        let fresh = qs.iter().filter(|&&q| !active[q]).count();
        if active_count + fresh > max_window_qubits {
            flush(&mut window, &mut active, &mut active_count, &mut items);
        }
        for &q in &qs {
            if !active[q] {
                active[q] = true;
                active_count += 1;
            }
        }
        window.push(gate);
    }
    flush(&mut window, &mut active, &mut active_count, &mut items);
    coalesce(items, max_window_qubits)
}

/// Merges each block into the next block that shares a qubit with it
/// when their union still fits the window cap.
///
/// The raw temporal cut is myopic: a window boundary can land in the
/// middle of a tight interaction cluster, leaving a small prefix block
/// whose placement is then frozen before the rest of the cluster is
/// seen — and the follow-up block pays bridge swaps to undo it. Moving
/// the prefix's gates forward into the later block is legal exactly
/// when every block between the two touches none of the prefix's qubits
/// (disjoint subcircuits commute) and no barrier intervenes; the merged
/// block is then solved once, with the whole cluster visible.
fn coalesce(mut items: Vec<Item>, max_window_qubits: usize) -> Vec<Item> {
    'again: loop {
        for i in 0..items.len() {
            let Item::Block(x) = &items[i] else { continue };
            for j in i + 1..items.len() {
                let Item::Block(y) = &items[j] else {
                    break; // a barrier fences reordering
                };
                if x.qubits.iter().all(|q| !y.qubits.contains(q)) {
                    continue; // disjoint blocks commute: look further
                }
                // First later block sharing a qubit: either absorb the
                // earlier one or stop (its gates cannot move past it).
                let mut union = x.qubits.clone();
                union.extend(y.qubits.iter().copied().filter(|q| !x.qubits.contains(q)));
                if union.len() <= max_window_qubits {
                    union.sort_unstable();
                    let merged = merge_blocks(x, y, union);
                    items[j] = Item::Block(merged);
                    items.remove(i);
                    continue 'again;
                }
                break;
            }
        }
        return items;
    }
}

/// One merged block: `x`'s gates (which precede `y`'s in the input)
/// followed by `y`'s, relabeled onto the union qubit set.
fn merge_blocks(x: &Block, y: &Block, union: Vec<usize>) -> Block {
    let mut circuit = Circuit::with_clbits(union.len(), x.circuit.num_clbits());
    let local_of = |q: usize| union.binary_search(&q).expect("qubit is in the union");
    for (block, gates) in [(x, x.circuit.gates()), (y, y.circuit.gates())] {
        for gate in gates {
            circuit.push(gate.map_qubits(|lq| local_of(block.qubits[lq])));
        }
    }
    Block {
        qubits: union,
        circuit,
        gates: x.gates + y.gates,
        has_two_qubit: x.has_two_qubit || y.has_two_qubit,
    }
}

/// Splits one window's gates into interaction-connected blocks
/// (union-find over two-qubit gates; qubits touched only by one-qubit
/// gates or measurements form their own singleton blocks) and appends
/// them to `items` in order of each block's first gate.
fn split_blocks(window: &[&Gate], circuit: &Circuit, items: &mut Vec<Item>) {
    let n = circuit.num_qubits();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for gate in window {
        let qs = gate.qubits();
        if qs.len() == 2 {
            let (a, b) = (find(&mut parent, qs[0]), find(&mut parent, qs[1]));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    // Group gates by their component root, keyed by first appearance so
    // blocks come out in the window's own order.
    let mut blocks: BTreeMap<usize, Vec<&Gate>> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::new();
    for gate in window {
        let root = find(&mut parent, gate.qubits()[0]);
        if !blocks.contains_key(&root) {
            order.push(root);
        }
        blocks.entry(root).or_default().push(gate);
    }
    for root in order {
        let gates = &blocks[&root];
        let mut qubits: Vec<usize> = Vec::new();
        for gate in gates {
            for q in gate.qubits() {
                if !qubits.contains(&q) {
                    qubits.push(q);
                }
            }
        }
        qubits.sort_unstable();
        let local_of = |q: usize| qubits.binary_search(&q).expect("qubit is in the block");
        let mut local = Circuit::with_clbits(qubits.len(), circuit.num_clbits());
        let mut costed = 0usize;
        let mut has_two = false;
        for gate in gates {
            if gate.is_costed() {
                costed += 1;
            }
            if gate.is_two_qubit() {
                has_two = true;
            }
            local.push(gate.map_qubits(local_of));
        }
        items.push(Item::Block(Block {
            qubits,
            circuit: local,
            gates: costed,
            has_two_qubit: has_two,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(items: &[Item]) -> Vec<&Block> {
        items
            .iter()
            .filter_map(|i| match i {
                Item::Block(b) => Some(b),
                Item::Barrier => None,
            })
            .collect()
    }

    #[test]
    fn windows_respect_the_qubit_cap() {
        // A 6-qubit GHZ-style ladder sliced at 3 active qubits.
        let mut c = Circuit::new(6);
        for q in 0..5 {
            c.cx(q, q + 1);
        }
        let items = slice(&c, 3);
        for b in blocks(&items) {
            assert!(b.qubits.len() <= 3, "{:?}", b.qubits);
        }
        // Every gate lands in exactly one block.
        let total: usize = blocks(&items).iter().map(|b| b.gates).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn disjoint_interactions_split_into_blocks() {
        // Two independent CNOT pairs in one 4-qubit window.
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let items = slice(&c, 4);
        let bs = blocks(&items);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].qubits, vec![0, 1]);
        assert_eq!(bs[1].qubits, vec![2, 3]);
        assert!(bs.iter().all(|b| b.has_two_qubit));
    }

    #[test]
    fn lone_single_qubit_gates_form_singleton_blocks() {
        let mut c = Circuit::new(3);
        c.h(2).cx(0, 1);
        let items = slice(&c, 3);
        let bs = blocks(&items);
        assert_eq!(bs.len(), 2);
        let singleton = bs.iter().find(|b| b.qubits == vec![2]).unwrap();
        assert!(!singleton.has_two_qubit);
        assert_eq!(singleton.gates, 1);
    }

    #[test]
    fn split_clusters_coalesce_into_one_block() {
        // Two disjoint 4-qubit clusters, interleaved so the 6-qubit cut
        // lands mid-cluster: the first cluster's 2-qubit prefix would
        // freeze a placement the rest of the cluster has to undo.
        let mut c = Circuit::new(8);
        c.cx(0, 1).cx(4, 5); // window 1 fills up (…)
        c.cx(1, 2).cx(2, 3); // (…) cluster 0 keeps growing
        c.cx(5, 6).cx(6, 7);
        let items = slice(&c, 6);
        let bs = blocks(&items);
        assert_eq!(bs.len(), 2, "{bs:?}");
        assert_eq!(bs[0].qubits, vec![0, 1, 2, 3]);
        assert_eq!(bs[1].qubits, vec![4, 5, 6, 7]);
        assert_eq!(bs[0].gates + bs[1].gates, 6);
        // Relabeled gate streams stay in program order per cluster.
        assert_eq!(
            bs[0].circuit.gates(),
            &[Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(2, 3)]
        );
    }

    #[test]
    fn oversized_unions_and_barriers_stop_coalescing() {
        // Same qubit reused across a barrier: blocks must not merge.
        let mut c = Circuit::new(2);
        c.cx(0, 1).barrier().cx(1, 0);
        let items = slice(&c, 4);
        assert_eq!(blocks(&items).len(), 2);
        // A chain whose union exceeds the cap keeps its cut.
        let mut c = Circuit::new(6);
        for q in 0..5 {
            c.cx(q, q + 1);
        }
        let items = slice(&c, 3);
        assert!(blocks(&items).iter().all(|b| b.qubits.len() <= 3));
    }

    #[test]
    fn barriers_fence_windows() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).barrier().cx(1, 0);
        let items = slice(&c, 2);
        assert_eq!(items.len(), 3);
        assert!(matches!(items[1], Item::Barrier));
    }

    #[test]
    fn local_indices_relabel_through_sorted_qubits() {
        let mut c = Circuit::new(5);
        c.cx(4, 2);
        let items = slice(&c, 2);
        let bs = blocks(&items);
        assert_eq!(bs[0].qubits, vec![2, 4]);
        assert_eq!(bs[0].circuit.gates(), &[Gate::cnot(1, 0)]);
    }
}
