//! Shortest-path per-gate routing: the no-lookahead floor baseline.

use qxmap_arch::{CouplingMap, Layout};
use qxmap_circuit::Circuit;

use crate::engine::{run_engine, LayerPlanner};
use crate::traits::{HeuristicError, HeuristicResult, Mapper};

/// Routes each layer by walking every non-adjacent pair's control qubit
/// along a shortest path towards its target — no randomness, no
/// lookahead. Serves as a deterministic floor: anything smarter should
/// beat it on average.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveMapper;

impl NaiveMapper {
    /// Creates the mapper.
    pub fn new() -> NaiveMapper {
        NaiveMapper
    }
}

impl Mapper for NaiveMapper {
    fn name(&self) -> &str {
        "naive shortest-path"
    }

    fn map(
        &self,
        circuit: &Circuit,
        cm: &CouplingMap,
    ) -> Result<HeuristicResult, HeuristicError> {
        struct Planner;
        impl LayerPlanner for Planner {
            fn plan(
                &mut self,
                layout: &Layout,
                pairs: &[(usize, usize)],
                cm: &CouplingMap,
                dist: &[Vec<usize>],
            ) -> Result<Vec<(usize, usize)>, HeuristicError> {
                shortest_path_plan(layout, pairs, cm, dist)
            }
        }
        run_engine(circuit, cm, &mut Planner)
    }
}

/// Deterministic routing used by [`NaiveMapper`] and as the fallback of
/// the stochastic mapper: repeatedly move the first non-adjacent pair's
/// control one step along a shortest path to its target.
pub(crate) fn shortest_path_plan(
    layout: &Layout,
    pairs: &[(usize, usize)],
    cm: &CouplingMap,
    dist: &[Vec<usize>],
) -> Result<Vec<(usize, usize)>, HeuristicError> {
    let mut layout = layout.clone();
    let mut plan = Vec::new();
    let limit = 4 * cm.num_qubits() * cm.num_qubits().max(1) * pairs.len().max(1);
    for _ in 0..limit {
        let Some(&(c, t)) = pairs.iter().find(|&&(c, t)| {
            let pc = layout.phys_of(c).expect("complete layout");
            let pt = layout.phys_of(t).expect("complete layout");
            !cm.connected_either(pc, pt)
        }) else {
            return Ok(plan);
        };
        let pc = layout.phys_of(c).expect("complete layout");
        let pt = layout.phys_of(t).expect("complete layout");
        if dist[pc][pt] == usize::MAX {
            return Err(HeuristicError::Unroutable);
        }
        // One step along a shortest pc→pt path.
        let next = cm
            .neighbors(pc)
            .into_iter()
            .min_by_key(|&v| dist[v][pt])
            .ok_or(HeuristicError::Unroutable)?;
        plan.push((pc, next));
        layout.swap_phys(pc, next);
    }
    Err(HeuristicError::Unroutable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn routes_distant_pair_on_a_line() {
        let cm = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = NaiveMapper::new().map(&c, &cm).unwrap();
        // Distance 4 needs 3 swaps to become adjacent.
        assert_eq!(r.swaps, 3);
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
    }

    #[test]
    fn already_adjacent_needs_nothing() {
        let cm = devices::linear(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let r = NaiveMapper::new().map(&c, &cm).unwrap();
        assert_eq!(r.swaps, 0);
        assert_eq!(r.added_gates, 0);
    }

    #[test]
    fn paper_example_is_legal_and_above_minimum() {
        let cm = devices::ibm_qx4();
        let r = NaiveMapper::new().map(&paper_example(), &cm).unwrap();
        assert!(r.added_gates >= 4, "cannot beat the exact minimum");
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
    }

    #[test]
    fn disconnected_device_is_unroutable() {
        let cm = qxmap_arch::CouplingMap::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        assert!(matches!(
            NaiveMapper::new().map(&c, &cm),
            Err(HeuristicError::Unroutable)
        ));
    }
}
