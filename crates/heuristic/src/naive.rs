//! Shortest-path per-gate routing: the no-lookahead floor baseline.

use std::time::Instant;

use qxmap_arch::{route, CouplingMap, DeviceModel, Layout};
use qxmap_circuit::{Circuit, Gate};

use crate::engine;
use crate::traits::{HeuristicError, HeuristicResult, Mapper};

/// Routes each CNOT as it is encountered by walking its control qubit
/// along a shortest path towards its target — no randomness, no
/// lookahead, one gate at a time. Serves as a deterministic floor:
/// anything smarter should beat it on average.
///
/// Because each gate is routed in isolation, every inserted SWAP strictly
/// decreases the one remaining coupling distance, so mapping always
/// terminates on a connected device.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveMapper;

impl NaiveMapper {
    /// Creates the mapper.
    pub fn new() -> NaiveMapper {
        NaiveMapper
    }
}

impl Mapper for NaiveMapper {
    fn name(&self) -> &str {
        "naive shortest-path"
    }

    fn map_model(
        &self,
        circuit: &Circuit,
        model: &DeviceModel,
    ) -> Result<HeuristicResult, HeuristicError> {
        let start = Instant::now();
        let cm = model.coupling_map();
        let circuit = engine::prepare(circuit, cm)?;
        let dist = model.hops();

        let mut layout = Layout::identity(circuit.num_qubits(), cm.num_qubits());
        let initial_layout = layout.clone();
        let mut out = Circuit::with_clbits(cm.num_qubits(), circuit.num_clbits());
        let mut swaps = 0u32;
        let mut reversals = 0u32;
        let mut model_cost = 0u64;

        for gate in circuit.gates() {
            match gate {
                Gate::Cnot { control, target } => {
                    loop {
                        let pc = layout.phys_of(*control).expect("complete layout");
                        let pt = layout.phys_of(*target).expect("complete layout");
                        if cm.connected_either(pc, pt) {
                            break;
                        }
                        // One step along a shortest pc→pt path: strictly
                        // decreases dist(pc, pt).
                        let next = cm
                            .neighbors(pc)
                            .into_iter()
                            .filter(|&v| dist[v][pt] < dist[pc][pt])
                            .min_by_key(|&v| dist[v][pt])
                            .ok_or(HeuristicError::Unroutable)?;
                        route::emit_swap(&mut out, cm, pc, next)
                            .expect("neighbors are coupling edges");
                        layout.swap_phys(pc, next);
                        swaps += 1;
                        model_cost += u64::from(model.swap_cost(pc, next).expect("edge"));
                    }
                    let pc = layout.phys_of(*control).expect("complete layout");
                    let pt = layout.phys_of(*target).expect("complete layout");
                    let emitted = route::emit_cnot(&mut out, cm, pc, pt).expect("pair is adjacent");
                    if emitted > 1 {
                        reversals += 1;
                    }
                    model_cost += model.execution_overhead(pc, pt).expect("adjacent pair");
                }
                other => engine::emit_relabeled(&mut out, &layout, other),
            }
        }

        let added = (out.original_cost() - circuit.original_cost()) as u64;
        Ok(HeuristicResult {
            mapped: out,
            initial_layout,
            final_layout: layout,
            added_gates: added,
            swaps,
            reversals,
            model_cost,
            runtime: start.elapsed(),
            wound_down: None,
        })
    }
}

/// Deterministic whole-layer routing used as the last-resort fallback of
/// the stochastic mapper: pairs are routed to adjacency one at a time, and
/// the hosting physical qubits of every settled pair are frozen so later
/// routing cannot disturb them. If freezing walls a pair off, the pair
/// order is rotated and the plan rebuilt.
pub(crate) fn shortest_path_plan(
    layout: &Layout,
    pairs: &[(usize, usize)],
    cm: &CouplingMap,
    dist: &[Vec<usize>],
) -> Result<Vec<(usize, usize)>, HeuristicError> {
    let k = pairs.len().max(1);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    for _ in 0..k {
        if let Some(plan) = plan_in_order(layout, pairs, &order, cm) {
            return Ok(plan);
        }
        order.rotate_left(1);
    }
    // Freezing walled a pair off in every order (dense hubs): fall back to
    // explicit host-edge assignment plus guaranteed token routing.
    assigned_plan(layout, pairs, cm, dist).ok_or(HeuristicError::Unroutable)
}

/// Whole-layer plan of last resort: pick vertex-disjoint host edges for
/// every pair (backtracking), then realize the movement by settling
/// *every* vertex — deepest in a BFS spanning tree first — with its
/// designated occupant, where unoccupied slots ("holes") are routed like
/// tokens. Under that order the unsettled region is always a connected
/// subtree containing the next designated occupant, so routing provably
/// never gets stuck; `None` only when no vertex-disjoint hosting exists
/// at all (e.g. two pairs on a star topology).
fn assigned_plan(
    layout: &Layout,
    pairs: &[(usize, usize)],
    cm: &CouplingMap,
    dist: &[Vec<usize>],
) -> Option<Vec<(usize, usize)>> {
    let m = cm.num_qubits();
    let edges = cm.undirected_edges();

    // Backtracking search for vertex-disjoint host edges, greedily
    // preferring hosts close to each pair's current position.
    let mut hosts: Vec<(usize, usize)> = Vec::with_capacity(pairs.len());
    let mut used = vec![false; m];
    fn search(
        pairs: &[(usize, usize)],
        layout: &Layout,
        dist: &[Vec<usize>],
        edges: &[(usize, usize)],
        used: &mut Vec<bool>,
        hosts: &mut Vec<(usize, usize)>,
    ) -> bool {
        let idx = hosts.len();
        if idx == pairs.len() {
            return true;
        }
        let (c, t) = pairs[idx];
        let pc = layout.phys_of(c).expect("complete layout");
        let pt = layout.phys_of(t).expect("complete layout");
        // Try free edges nearest first; both orientations.
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
        for &(u, v) in edges {
            if used[u] || used[v] {
                continue;
            }
            candidates.push((dist[pc][u].saturating_add(dist[pt][v]), u, v));
            candidates.push((dist[pc][v].saturating_add(dist[pt][u]), v, u));
        }
        candidates.sort();
        for (_, u, v) in candidates {
            if used[u] || used[v] {
                continue;
            }
            used[u] = true;
            used[v] = true;
            hosts.push((u, v));
            if search(pairs, layout, dist, edges, used, hosts) {
                return true;
            }
            hosts.pop();
            used[u] = false;
            used[v] = false;
        }
        false
    }
    if !search(pairs, layout, dist, &edges, &mut used, &mut hosts) {
        return None; // no simultaneous hosting exists (e.g. star topologies)
    }

    // BFS spanning-tree depths from vertex 0.
    let mut depth = vec![usize::MAX; m];
    let mut queue = std::collections::VecDeque::new();
    depth[0] = 0;
    queue.push_back(0);
    while let Some(v) = queue.pop_front() {
        for w in cm.neighbors(v) {
            if depth[w] == usize::MAX {
                depth[w] = depth[v] + 1;
                queue.push_back(w);
            }
        }
    }

    // Designated occupant per vertex: pair qubits go to their hosts,
    // every other logical qubit keeps its position when free (else takes
    // any free vertex), and the rest of the vertices are designated empty.
    let mut occupant: Vec<Option<usize>> = vec![None; m];
    let mut placed = vec![false; layout.num_logical()];
    for (&(c, t), &(u, v)) in pairs.iter().zip(&hosts) {
        occupant[u] = Some(c);
        occupant[v] = Some(t);
        placed[c] = true;
        placed[t] = true;
    }
    let unplaced: Vec<usize> = (0..layout.num_logical()).filter(|&q| !placed[q]).collect();
    for q in unplaced {
        let cur = layout.phys_of(q).expect("complete layout");
        let dest = if occupant[cur].is_none() {
            cur
        } else {
            occupant.iter().position(Option::is_none)?
        };
        occupant[dest] = Some(q);
    }

    // Settle every vertex, deepest first. The unsettled region is then
    // always a connected subtree (each unsettled vertex's BFS parent is
    // shallower, hence unsettled) that contains the designated occupant.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(depth[v]));

    let mut layout = layout.clone();
    let mut done = vec![false; m];
    let mut plan = Vec::new();
    let walk = |from: usize,
                to: usize,
                plan: &mut Vec<(usize, usize)>,
                layout: &mut Layout,
                done: &[bool]|
     -> Option<()> {
        let path = bfs_avoiding(cm, from, to, done)?;
        let mut cur = from;
        for &next in &path[1..] {
            plan.push((cur, next));
            layout.swap_phys(cur, next);
            cur = next;
        }
        Some(())
    };
    for v in order {
        match occupant[v] {
            Some(q) => {
                let cur = layout.phys_of(q).expect("complete layout");
                if cur != v {
                    walk(cur, v, &mut plan, &mut layout, &done)?;
                }
            }
            None => {
                if layout.logical_at(v).is_some() {
                    // Route the nearest hole in the unsettled region here;
                    // holes are interchangeable and at least one remains
                    // whenever an empty-designated vertex is occupied.
                    let hole = nearest_hole(cm, v, &layout, &done)?;
                    walk(hole, v, &mut plan, &mut layout, &done)?;
                }
            }
        }
        done[v] = true;
    }
    Some(plan)
}

/// The unsettled vertex nearest to `from` (BFS) holding no logical qubit.
fn nearest_hole(cm: &CouplingMap, from: usize, layout: &Layout, done: &[bool]) -> Option<usize> {
    let mut seen = vec![false; cm.num_qubits()];
    let mut queue = std::collections::VecDeque::from([from]);
    seen[from] = true;
    while let Some(v) = queue.pop_front() {
        if layout.logical_at(v).is_none() && !done[v] {
            return Some(v);
        }
        for w in cm.neighbors(v) {
            if !seen[w] && !done[w] {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    None
}

/// One attempt at a freeze-as-you-go plan; `None` when a pair is walled
/// off by already-frozen qubits.
fn plan_in_order(
    layout: &Layout,
    pairs: &[(usize, usize)],
    order: &[usize],
    cm: &CouplingMap,
) -> Option<Vec<(usize, usize)>> {
    let m = cm.num_qubits();
    let mut layout = layout.clone();
    let mut frozen = vec![false; m];
    let mut plan = Vec::new();

    for &idx in order {
        let (c, t) = pairs[idx];
        let pt = layout.phys_of(t).expect("complete layout");
        let mut pc = layout.phys_of(c).expect("complete layout");
        if !cm.connected_either(pc, pt) {
            // Shortest pc→pt path through unfrozen qubits only.
            let path = bfs_avoiding(cm, pc, pt, &frozen)?;
            for &next in &path[1..] {
                if cm.connected_either(pc, pt) {
                    break;
                }
                plan.push((pc, next));
                layout.swap_phys(pc, next);
                pc = next;
            }
        }
        frozen[pc] = true;
        frozen[pt] = true;
    }
    Some(plan)
}

/// Shortest path `from → to` in the undirected coupling graph whose
/// interior vertices avoid `frozen` qubits.
fn bfs_avoiding(cm: &CouplingMap, from: usize, to: usize, frozen: &[bool]) -> Option<Vec<usize>> {
    if frozen[from] || frozen[to] {
        return None;
    }
    let m = cm.num_qubits();
    let mut prev: Vec<Option<usize>> = vec![None; m];
    let mut seen = vec![false; m];
    let mut queue = std::collections::VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        if v == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for w in cm.neighbors(v) {
            if !seen[w] && (!frozen[w] || w == to) {
                seen[w] = true;
                prev[w] = Some(v);
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn routes_distant_pair_on_a_line() {
        let cm = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = NaiveMapper::new().map(&c, &cm).unwrap();
        // Distance 4 needs 3 swaps to become adjacent.
        assert_eq!(r.swaps, 3);
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
    }

    #[test]
    fn already_adjacent_needs_nothing() {
        let cm = devices::linear(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let r = NaiveMapper::new().map(&c, &cm).unwrap();
        assert_eq!(r.swaps, 0);
        assert_eq!(r.added_gates, 0);
    }

    #[test]
    fn paper_example_is_legal_and_above_minimum() {
        let cm = devices::ibm_qx4();
        let r = NaiveMapper::new().map(&paper_example(), &cm).unwrap();
        assert!(r.added_gates >= 4, "cannot beat the exact minimum");
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
    }

    #[test]
    fn disconnected_device_is_unroutable() {
        let cm = qxmap_arch::CouplingMap::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        assert!(matches!(
            NaiveMapper::new().map(&c, &cm),
            Err(HeuristicError::Unroutable)
        ));
    }

    #[test]
    fn interleaved_disjoint_pairs_terminate() {
        // Regression: the old whole-layer stepping could ping-pong between
        // two disjoint pairs forever and report Unroutable.
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(4);
        c.cx(2, 1);
        c.cx(1, 2);
        c.cx(1, 2);
        c.cx(3, 0);
        c.cx(3, 0);
        let r = NaiveMapper::new().map(&c, &cm).unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
    }

    #[test]
    fn assigned_plan_routes_tokens_out_of_pockets() {
        // Tree 0-1, 1-2, 2-3, 2-4: vertex 4 is a pocket behind vertex 2.
        // Whatever hosts get picked, every starting arrangement of two
        // disjoint pairs must settle — a fixed deepest-first order could
        // wall a token off behind an already-settled vertex.
        let cm = qxmap_arch::CouplingMap::from_edges(
            5,
            [
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (2, 4),
                (4, 2),
            ],
        )
        .unwrap();
        let dist = cm.distance_matrix();
        let pairs = [(0, 1), (2, 3)];
        // All placements of 4 logical qubits onto 5 vertices.
        for perm in 0..120 {
            let mut avail: Vec<usize> = (0..5).collect();
            let mut image = Vec::new();
            let mut p = perm;
            for k in (2..=5).rev() {
                image.push(avail.remove(p % k));
                p /= k;
            }
            let mut layout = Layout::new(4, 5);
            for (q, &v) in image.iter().take(4).enumerate() {
                layout.assign(q, v).unwrap();
            }
            let plan = assigned_plan(&layout, &pairs, &cm, &dist)
                .unwrap_or_else(|| panic!("walled off for image {image:?}"));
            let mut l = layout.clone();
            for (a, b) in plan {
                assert!(cm.connected_either(a, b));
                l.swap_phys(a, b);
            }
            for (c, t) in pairs {
                assert!(
                    cm.connected_either(l.phys_of(c).unwrap(), l.phys_of(t).unwrap()),
                    "pair ({c},{t}) not adjacent for image {image:?}"
                );
            }
        }
    }

    #[test]
    fn layer_plan_freezes_settled_pairs() {
        let cm = devices::ibm_qx4();
        let layout = Layout::identity(4, 5);
        let pairs = [(2, 1), (3, 0)];
        let dist = cm.distance_matrix();
        let plan = shortest_path_plan(&layout, &pairs, &cm, &dist).unwrap();
        let mut l = layout.clone();
        for (a, b) in plan {
            assert!(cm.connected_either(a, b), "plans must use coupling edges");
            l.swap_phys(a, b);
        }
        for (c, t) in pairs {
            let pc = l.phys_of(c).unwrap();
            let pt = l.phys_of(t).unwrap();
            assert!(cm.connected_either(pc, pt), "pair ({c},{t}) not adjacent");
        }
    }
}
