//! # qxmap-heuristic
//!
//! Heuristic qubit mappers — the comparison baselines of the paper's
//! evaluation:
//!
//! * [`StochasticSwapMapper`] — a reimplementation of the algorithm class
//!   behind IBM Qiskit 0.4.x's `swap_mapper` (reference \[12\] of the
//!   paper): layer-by-layer randomized greedy SWAP insertion driven by a
//!   perturbed distance matrix, best of several trials. Like the
//!   original, it is probabilistic; Table 1 reports the minimum over 5
//!   runs.
//! * [`AStarMapper`] — an A*-search per-layer mapper in the spirit of
//!   Zulehner, Paler & Wille (reference \[22\]).
//! * [`SabreMapper`] — a SABRE-style lookahead mapper with reverse-pass
//!   layout seeding (Li, Ding & Xie, reference \[13\]).
//! * [`NaiveMapper`] — shortest-path SWAP chains per gate with no
//!   lookahead; a floor baseline.
//!
//! All mappers implement [`Mapper`], produce hardware-legal circuits
//! (validated against the coupling map), and repair CNOT directions with
//! 4 H gates exactly like the exact mapper. Every mapper routes through
//! [`Mapper::map_model`]: distances come from the
//! [`qxmap_arch::DeviceModel`]'s precomputed tables (no per-call BFS) and
//! insertions are priced with its per-edge costs
//! ([`HeuristicResult::model_cost`]). A*, SABRE and the stochastic mapper
//! additionally observe wall-clock deadlines and cooperative stop flags
//! (`with_deadline` / `with_stop`), degrading to cheap deterministic
//! routing — never to invalid output — when a racing supervisor cancels
//! them.
//!
//! ```
//! use qxmap_arch::devices;
//! use qxmap_circuit::paper_example;
//! use qxmap_heuristic::{Mapper, StochasticSwapMapper};
//!
//! let mapper = StochasticSwapMapper::with_seed(7);
//! let result = mapper.map(&paper_example(), &devices::ibm_qx4())?;
//! // Heuristics can never beat the exact minimum of 4 (Example 7).
//! assert!(result.added_gates >= 4);
//! # Ok::<(), qxmap_heuristic::HeuristicError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod astar;
mod engine;
mod naive;
mod sabre;
mod stochastic;
mod traits;

pub use astar::AStarMapper;
pub use naive::NaiveMapper;
pub use sabre::SabreMapper;
pub use stochastic::StochasticSwapMapper;
pub use traits::{HeuristicError, HeuristicResult, Mapper, StopCheck};
