//! A*-search layer mapper in the spirit of Zulehner, Paler & Wille
//! (reference \[22\] of the paper).
//!
//! For each layer whose CNOT pairs are not all adjacent, searches the
//! space of SWAP sequences with A* over the model's *cost-weighted*
//! distances: `g` = summed SWAP cost applied so far, `h` = the estimate
//! `Σ max(0, wdist − max_swap)` over the layer's pairs. Per pair the
//! bound is a true lower bound (a SWAP of cost `w` shrinks a pair's
//! weighted distance by at most `w`, and an adjacent pair's weighted
//! distance never exceeds the dearest edge), but the *sum* can
//! overestimate when one SWAP serves two pairs at once — so plans are
//! near-minimal per layer, not guaranteed minimal, in exchange for a
//! much stronger search signal. Under uniform costs both scores are a
//! constant multiple of the classic swap-count formulation — identical
//! plans — while calibrated models steer the search around dear edges.
//! Deterministic, and typically cheaper per layer than the exact
//! symbolic method while much stronger than naive routing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use qxmap_arch::{DeviceModel, Layout};
use qxmap_circuit::Circuit;

use crate::engine::{all_adjacent, run_engine, LayerPlanner};
use crate::naive::shortest_path_plan;
use crate::traits::{HeuristicError, HeuristicResult, Mapper, StopCheck};

/// How often the A* expansion loop polls the deadline/stop flag.
const STOP_POLL_INTERVAL: usize = 256;

/// The A* layer mapper.
///
/// The mapper is deadline-aware: [`AStarMapper::with_deadline`] and
/// [`AStarMapper::with_stop`] are polled between layers and every few
/// hundred node expansions. When either fires, every remaining layer is
/// routed with the deterministic shortest-path fallback instead of the
/// search — the output stays a complete, hardware-legal circuit (quality
/// degrades, validity never does), and a losing racer on a huge device
/// winds down instead of running its search to completion.
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::paper_example;
/// use qxmap_heuristic::{AStarMapper, Mapper};
///
/// let r = AStarMapper::new().map(&paper_example(), &devices::ibm_qx4())?;
/// assert!(r.added_gates >= 4); // never beats the exact minimum
/// # Ok::<(), qxmap_heuristic::HeuristicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AStarMapper {
    node_limit: usize,
    deadline: Option<Duration>,
    stop: Option<Arc<AtomicBool>>,
}

impl AStarMapper {
    /// Default configuration (200 000 expanded nodes per layer).
    pub fn new() -> AStarMapper {
        AStarMapper {
            node_limit: 200_000,
            deadline: None,
            stop: None,
        }
    }

    /// Caps the number of expanded search nodes per layer; beyond it the
    /// mapper falls back to shortest-path routing for that layer.
    pub fn with_node_limit(mut self, node_limit: usize) -> AStarMapper {
        self.node_limit = node_limit.max(1);
        self
    }

    /// Caps the wall-clock time of one `map` call (measured from its
    /// entry). Once it fires, remaining layers route via the
    /// shortest-path fallback — valid output, bounded wind-down.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> AStarMapper {
        self.deadline = deadline;
        self
    }

    /// Attaches a cooperative stop flag (e.g. a racing supervisor's
    /// cancel handle, `qxmap_core::SolveControl::cancel_handle`), polled
    /// like the deadline.
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> AStarMapper {
        self.stop = Some(stop);
        self
    }
}

impl Default for AStarMapper {
    fn default() -> AStarMapper {
        AStarMapper::new()
    }
}

impl Mapper for AStarMapper {
    fn name(&self) -> &str {
        "A* layer search"
    }

    fn map_model(
        &self,
        circuit: &Circuit,
        model: &DeviceModel,
    ) -> Result<HeuristicResult, HeuristicError> {
        let mut planner = AStarPlanner {
            node_limit: self.node_limit,
            check: StopCheck::arm(self.deadline, self.stop.clone()),
        };
        run_engine(circuit, model, &mut planner)
    }
}

struct AStarPlanner {
    node_limit: usize,
    /// The shared deadline/stop wind-down signal, armed at `map` entry.
    check: StopCheck,
}

impl AStarPlanner {
    fn stopped(&self) -> bool {
        self.check.stopped()
    }
}

impl LayerPlanner for AStarPlanner {
    fn wound_down(&self) -> Option<&'static str> {
        self.check.cause()
    }

    fn plan(
        &mut self,
        layout: &Layout,
        pairs: &[(usize, usize)],
        model: &DeviceModel,
    ) -> Result<Vec<(usize, usize)>, HeuristicError> {
        let cm = model.coupling_map();
        let dist = model.hops();
        // A fired budget skips the search outright: the fallback is the
        // cheap, always-terminating wind-down path.
        if self.stopped() {
            return shortest_path_plan(layout, pairs, cm, dist);
        }
        let edges = cm.undirected_edges();
        // Cost-weighted search: `g` accumulates the model's per-pair SWAP
        // costs and `h` estimates the remaining cost — per pair,
        // `wdist − max_swap` is a true lower bound (a swap of cost `w`
        // shrinks a pair's weighted distance by at most `w`, and an
        // adjacent pair's weighted distance is at most the dearest edge),
        // though the sum over pairs can overestimate when one swap serves
        // two pairs (see the module docs). Under uniform costs both are a
        // constant multiple of the old swap-count scores (identical
        // expansions); on calibrated models the search steers around dear
        // edges like SABRE and the stochastic mapper do.
        let wdist = model.swap_distances();
        let max_swap = u64::from(model.stats().max_swap_cost);
        let h = |l: &Layout| -> u64 {
            pairs
                .iter()
                .map(|&(c, t)| {
                    let pc = l.phys_of(c).expect("complete layout");
                    let pt = l.phys_of(t).expect("complete layout");
                    wdist[pc][pt].saturating_sub(max_swap)
                })
                .fold(0u64, u64::saturating_add)
        };

        // Node key: the layout's logical→physical image.
        let key = |l: &Layout| -> Vec<usize> {
            (0..l.num_logical())
                .map(|q| l.phys_of(q).expect("complete layout"))
                .collect()
        };

        let mut open: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut nodes: Vec<(Layout, Vec<(usize, usize)>)> = Vec::new();
        let mut best_g: HashMap<Vec<usize>, u64> = HashMap::new();

        nodes.push((layout.clone(), Vec::new()));
        best_g.insert(key(layout), 0);
        open.push(Reverse((h(layout), 0, 0)));

        let mut expanded = 0usize;
        while let Some(Reverse((_f, g, id))) = open.pop() {
            let (l, path) = nodes[id as usize].clone();
            if all_adjacent(&l, pairs, cm) {
                return Ok(path);
            }
            expanded += 1;
            if expanded > self.node_limit {
                break;
            }
            // Deadline/race-cancel observance inside the expansion loop:
            // on huge generated devices a single layer can dominate the
            // run, so a losing racer must not wait for the next layer
            // boundary to wind down.
            if expanded.is_multiple_of(STOP_POLL_INTERVAL) && self.stopped() {
                break;
            }
            if best_g.get(&key(&l)).copied().unwrap_or(u64::MAX) < g {
                continue; // stale entry
            }
            for &(a, b) in &edges {
                let mut nl = l.clone();
                nl.swap_phys(a, b);
                let nk = key(&nl);
                let ng = g + u64::from(model.swap_cost(a, b).expect("coupling edge"));
                if best_g.get(&nk).copied().unwrap_or(u64::MAX) <= ng {
                    continue;
                }
                best_g.insert(nk, ng);
                let mut np = path.clone();
                np.push((a, b));
                let f = ng.saturating_add(h(&nl));
                nodes.push((nl, np));
                open.push(Reverse((f, ng, (nodes.len() - 1) as u64)));
            }
        }
        // Node budget exhausted: degrade gracefully.
        shortest_path_plan(layout, pairs, cm, dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveMapper;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn astar_steers_around_calibrated_dear_edges() {
        // Diamond 0—1—3 / 0—2—3 (bidirectional), with the {0,1} SWAP
        // calibrated dear: both one-swap routes make the pair adjacent,
        // so a swap-count search ties — the weighted search must take
        // the cheap route via p2 (cost 3), not the dear one (cost 100).
        use qxmap_arch::{CouplingMap, DeviceModel};
        let cm = CouplingMap::from_edges(
            4,
            [
                (0, 1),
                (1, 0),
                (1, 3),
                (3, 1),
                (0, 2),
                (2, 0),
                (2, 3),
                (3, 2),
            ],
        )
        .unwrap();
        let model = DeviceModel::new(cm).with_swap_cost(0, 1, 100);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let r = AStarMapper::new().map_model(&c, &model).unwrap();
        assert_eq!(r.swaps, 1);
        assert_eq!(r.model_cost, 3, "routed via the cheap edge");
    }

    #[test]
    fn astar_is_deterministic() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let a = AStarMapper::new().map(&c, &cm).unwrap();
        let b = AStarMapper::new().map(&c, &cm).unwrap();
        assert_eq!(a.mapped, b.mapped);
    }

    #[test]
    fn astar_no_worse_than_naive_on_lines() {
        let cm = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        c.cx(0, 3);
        c.cx(1, 4);
        let astar = AStarMapper::new().map(&c, &cm).unwrap();
        let naive = NaiveMapper::new().map(&c, &cm).unwrap();
        assert!(
            astar.swaps <= naive.swaps,
            "{} > {}",
            astar.swaps,
            naive.swaps
        );
    }

    #[test]
    fn astar_finds_minimal_swaps_for_single_distant_pair() {
        let cm = devices::linear(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let r = AStarMapper::new().map(&c, &cm).unwrap();
        assert_eq!(r.swaps, 2, "distance 3 pair needs exactly 2 swaps");
    }

    #[test]
    fn outputs_are_legal() {
        let cm = devices::ibm_qx4();
        let r = AStarMapper::new().map(&paper_example(), &cm).unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        assert!(r.added_gates >= 4);
    }

    #[test]
    fn node_limit_falls_back() {
        let cm = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = AStarMapper::new().with_node_limit(1).map(&c, &cm).unwrap();
        // Still legal, possibly more swaps.
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
    }

    #[test]
    fn stop_flag_and_deadline_degrade_not_invalidate() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        use std::time::Duration;

        let cm = devices::linear(6);
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.cx(1, 4);
        c.cx(0, 3);
        // A pre-raised stop flag makes every layer take the shortest-path
        // fallback — the result must still be complete and legal.
        let flag = Arc::new(AtomicBool::new(true));
        let stopped = AStarMapper::new()
            .with_stop(Arc::clone(&flag))
            .map(&c, &cm)
            .unwrap();
        for (pc, pt) in stopped.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        assert_eq!(
            stopped.mapped.cnot_skeleton().len() as u32,
            3 * stopped.swaps + 3
        );
        // An expired deadline behaves the same way.
        let timed = AStarMapper::new()
            .with_deadline(Some(Duration::ZERO))
            .map(&c, &cm)
            .unwrap();
        for (pc, pt) in timed.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        // A lowered flag restores the full deterministic search.
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        let resumed = AStarMapper::new().with_stop(flag).map(&c, &cm).unwrap();
        let reference = AStarMapper::new().map(&c, &cm).unwrap();
        assert_eq!(resumed.mapped, reference.mapped);
    }

    #[test]
    fn model_cost_matches_paper_accounting_on_qx4() {
        let cm = devices::ibm_qx4();
        let r = AStarMapper::new().map(&paper_example(), &cm).unwrap();
        assert_eq!(
            r.model_cost,
            7 * u64::from(r.swaps) + 4 * u64::from(r.reversals)
        );
        assert_eq!(r.model_cost, r.added_gates);
    }
}
