//! A*-search layer mapper in the spirit of Zulehner, Paler & Wille
//! (reference \[22\] of the paper).
//!
//! For each layer whose CNOT pairs are not all adjacent, searches the
//! space of SWAP sequences with A*: `g` = SWAPs applied so far, `h` =
//! an admissible estimate `Σ (dist − 1)` over the layer's pairs (each
//! SWAP reduces any pair's distance by at most 1 and only on one pair at
//! a time in the bound's worst case). Deterministic, and typically
//! cheaper per layer than the exact symbolic method while much stronger
//! than naive routing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use qxmap_arch::{CouplingMap, Layout};
use qxmap_circuit::Circuit;

use crate::engine::{all_adjacent, run_engine, LayerPlanner};
use crate::naive::shortest_path_plan;
use crate::traits::{HeuristicError, HeuristicResult, Mapper};

/// The A* layer mapper.
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::paper_example;
/// use qxmap_heuristic::{AStarMapper, Mapper};
///
/// let r = AStarMapper::new().map(&paper_example(), &devices::ibm_qx4())?;
/// assert!(r.added_gates >= 4); // never beats the exact minimum
/// # Ok::<(), qxmap_heuristic::HeuristicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AStarMapper {
    node_limit: usize,
}

impl AStarMapper {
    /// Default configuration (200 000 expanded nodes per layer).
    pub fn new() -> AStarMapper {
        AStarMapper {
            node_limit: 200_000,
        }
    }

    /// Caps the number of expanded search nodes per layer; beyond it the
    /// mapper falls back to shortest-path routing for that layer.
    pub fn with_node_limit(mut self, node_limit: usize) -> AStarMapper {
        self.node_limit = node_limit.max(1);
        self
    }
}

impl Default for AStarMapper {
    fn default() -> AStarMapper {
        AStarMapper::new()
    }
}

impl Mapper for AStarMapper {
    fn name(&self) -> &str {
        "A* layer search"
    }

    fn map(&self, circuit: &Circuit, cm: &CouplingMap) -> Result<HeuristicResult, HeuristicError> {
        let mut planner = AStarPlanner {
            node_limit: self.node_limit,
        };
        run_engine(circuit, cm, &mut planner)
    }
}

struct AStarPlanner {
    node_limit: usize,
}

impl LayerPlanner for AStarPlanner {
    fn plan(
        &mut self,
        layout: &Layout,
        pairs: &[(usize, usize)],
        cm: &CouplingMap,
        dist: &[Vec<usize>],
    ) -> Result<Vec<(usize, usize)>, HeuristicError> {
        let edges = cm.undirected_edges();
        let h = |l: &Layout| -> usize {
            pairs
                .iter()
                .map(|&(c, t)| {
                    let pc = l.phys_of(c).expect("complete layout");
                    let pt = l.phys_of(t).expect("complete layout");
                    dist[pc][pt].saturating_sub(1)
                })
                .sum()
        };

        // Node key: the layout's logical→physical image.
        let key = |l: &Layout| -> Vec<usize> {
            (0..l.num_logical())
                .map(|q| l.phys_of(q).expect("complete layout"))
                .collect()
        };

        let mut open: BinaryHeap<Reverse<(usize, usize, u64)>> = BinaryHeap::new();
        let mut nodes: Vec<(Layout, Vec<(usize, usize)>)> = Vec::new();
        let mut best_g: HashMap<Vec<usize>, usize> = HashMap::new();

        nodes.push((layout.clone(), Vec::new()));
        best_g.insert(key(layout), 0);
        open.push(Reverse((h(layout), 0, 0)));

        let mut expanded = 0usize;
        while let Some(Reverse((_f, g, id))) = open.pop() {
            let (l, path) = nodes[id as usize].clone();
            if all_adjacent(&l, pairs, cm) {
                return Ok(path);
            }
            expanded += 1;
            if expanded > self.node_limit {
                break;
            }
            if best_g.get(&key(&l)).copied().unwrap_or(usize::MAX) < g {
                continue; // stale entry
            }
            for &(a, b) in &edges {
                let mut nl = l.clone();
                nl.swap_phys(a, b);
                let nk = key(&nl);
                let ng = g + 1;
                if best_g.get(&nk).copied().unwrap_or(usize::MAX) <= ng {
                    continue;
                }
                best_g.insert(nk, ng);
                let mut np = path.clone();
                np.push((a, b));
                let f = ng + h(&nl);
                nodes.push((nl, np));
                open.push(Reverse((f, ng, (nodes.len() - 1) as u64)));
            }
        }
        // Node budget exhausted: degrade gracefully.
        shortest_path_plan(layout, pairs, cm, dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveMapper;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn astar_is_deterministic() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let a = AStarMapper::new().map(&c, &cm).unwrap();
        let b = AStarMapper::new().map(&c, &cm).unwrap();
        assert_eq!(a.mapped, b.mapped);
    }

    #[test]
    fn astar_no_worse_than_naive_on_lines() {
        let cm = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        c.cx(0, 3);
        c.cx(1, 4);
        let astar = AStarMapper::new().map(&c, &cm).unwrap();
        let naive = NaiveMapper::new().map(&c, &cm).unwrap();
        assert!(
            astar.swaps <= naive.swaps,
            "{} > {}",
            astar.swaps,
            naive.swaps
        );
    }

    #[test]
    fn astar_finds_minimal_swaps_for_single_distant_pair() {
        let cm = devices::linear(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let r = AStarMapper::new().map(&c, &cm).unwrap();
        assert_eq!(r.swaps, 2, "distance 3 pair needs exactly 2 swaps");
    }

    #[test]
    fn outputs_are_legal() {
        let cm = devices::ibm_qx4();
        let r = AStarMapper::new().map(&paper_example(), &cm).unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        assert!(r.added_gates >= 4);
    }

    #[test]
    fn node_limit_falls_back() {
        let cm = devices::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = AStarMapper::new().with_node_limit(1).map(&c, &cm).unwrap();
        // Still legal, possibly more swaps.
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
    }
}
