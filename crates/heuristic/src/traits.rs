//! The mapper abstraction shared by all baselines.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qxmap_arch::{CouplingMap, DeviceModel, Layout};
use qxmap_circuit::Circuit;

/// Errors common to the heuristic mappers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeuristicError {
    /// More logical than physical qubits.
    TooManyQubits {
        /// Logical qubits required.
        logical: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The device graph cannot route the circuit (disconnected).
    Unroutable,
}

impl fmt::Display for HeuristicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeuristicError::TooManyQubits { logical, physical } => {
                qxmap_arch::errors::fmt_too_many_qubits(f, *logical, *physical)
            }
            HeuristicError::Unroutable => {
                write!(f, "the coupling graph cannot route the circuit")
            }
        }
    }
}

impl Error for HeuristicError {}

/// Outcome of a heuristic mapping.
#[derive(Debug, Clone)]
pub struct HeuristicResult {
    /// The hardware-legal output circuit.
    pub mapped: Circuit,
    /// Logical→physical layout before the first gate.
    pub initial_layout: Layout,
    /// Logical→physical layout after the last gate.
    pub final_layout: Layout,
    /// Gates added relative to the (SWAP-decomposed) input.
    pub added_gates: u64,
    /// SWAP operations inserted.
    pub swaps: u32,
    /// Direction-reversed CNOTs.
    pub reversals: u32,
    /// The insertions priced under the run's [`DeviceModel`] — the sum of
    /// each inserted SWAP's per-edge cost and each reversal's per-edge
    /// surcharge. Equals `7·swaps + 4·reversals` under the paper's
    /// uniform default; calibration overrides shift it without changing
    /// the gate counts.
    pub model_cost: u64,
    /// Wall-clock mapping time.
    pub runtime: Duration,
    /// Why the run wound down early, if it did ([`StopCheck::cause`]
    /// read at result construction): `"deadline"` when the wall-clock
    /// budget fired, `"cancelled"` when a racing supervisor's stop flag
    /// did. `None` for runs that completed at full quality — the label
    /// race timelines attach to degraded racers.
    pub wound_down: Option<&'static str>,
}

impl HeuristicResult {
    /// Total operation count of the mapped circuit (Table 1's `c`).
    pub fn mapped_cost(&self) -> usize {
        self.mapped.original_cost()
    }
}

/// The cooperative wind-down signal shared by the deadline-aware
/// mappers: a wall-clock cutoff plus an optional external stop flag
/// (e.g. a racing supervisor's cancel handle), polled together. One
/// home for the predicate keeps every planner's wind-down behavior in
/// step.
#[derive(Debug, Clone, Default)]
pub struct StopCheck {
    cutoff: Option<Instant>,
    stop: Option<Arc<AtomicBool>>,
}

impl StopCheck {
    /// Arms the check at a `map` call's entry: the deadline counts from
    /// now, and either signal may be absent (an unarmed check never
    /// stops).
    pub fn arm(deadline: Option<Duration>, stop: Option<Arc<AtomicBool>>) -> StopCheck {
        StopCheck {
            cutoff: deadline.map(|d| Instant::now() + d),
            stop,
        }
    }

    /// Whether the deadline or the external stop flag asks the search to
    /// wind down.
    pub fn stopped(&self) -> bool {
        self.cause().is_some()
    }

    /// Which signal asks the search to wind down right now, as a stable
    /// label: `"cancelled"` (the external stop flag — reported first,
    /// since a supervisor's cancel is deliberate) or `"deadline"`.
    /// `None` while the search may keep going.
    pub fn cause(&self) -> Option<&'static str> {
        if self
            .stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
        {
            return Some("cancelled");
        }
        if self.cutoff.is_some_and(|c| Instant::now() >= c) {
            return Some("deadline");
        }
        None
    }
}

/// A qubit mapper: places logical qubits on a device and inserts
/// SWAP / H repairs until every CNOT is coupling-legal.
pub trait Mapper {
    /// Short human-readable name.
    fn name(&self) -> &str;

    /// Maps `circuit` onto the device described by `model`, reading
    /// adjacency and distances from the model's precomputed tables
    /// (instead of re-running BFS per call) and pricing insertions with
    /// its per-edge costs ([`HeuristicResult::model_cost`]).
    ///
    /// # Errors
    ///
    /// Returns [`HeuristicError`] when the instance cannot be mapped.
    fn map_model(
        &self,
        circuit: &Circuit,
        model: &DeviceModel,
    ) -> Result<HeuristicResult, HeuristicError>;

    /// Convenience wrapper over [`Mapper::map_model`] that prices `cm`
    /// with the hardware-derived default model ([`DeviceModel::new`]).
    /// Callers mapping against one device repeatedly should build the
    /// model once and use [`Mapper::map_model`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`HeuristicError`] when the instance cannot be mapped.
    fn map(&self, circuit: &Circuit, cm: &CouplingMap) -> Result<HeuristicResult, HeuristicError> {
        self.map_model(circuit, &DeviceModel::new(cm.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = HeuristicError::TooManyQubits {
            logical: 7,
            physical: 5,
        };
        assert!(e.to_string().contains('7'));
        assert!(HeuristicError::Unroutable.to_string().contains("route"));
    }
}
