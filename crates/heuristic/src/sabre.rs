//! A SABRE-style swap mapper (Li, Ding & Xie, "Tackling the Qubit Mapping
//! Problem for NISQ-Era Quantum Devices" — reference \[13\] of the paper).
//!
//! Three ingredients distinguish SABRE from the older stochastic mapper:
//!
//! 1. **Front-layer routing**: instead of fixing whole layers, maintain
//!    the set of CNOTs whose predecessors are all executed; any member
//!    that is adjacent executes immediately.
//! 2. **Lookahead scoring**: candidate SWAPs are scored on the front
//!    layer *plus* a discounted window of upcoming CNOTs.
//! 3. **Reverse-pass initial layout**: map the reversed circuit starting
//!    from a trivial layout and reuse the resulting final layout as the
//!    forward pass's initial layout (one round trip refines the seed).
//!
//! The output is assembled with the same routing primitives (SWAP
//! decomposition, 4-H reversal) as every other mapper in the workspace,
//! so costs are directly comparable.

use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qxmap_arch::{route, DeviceModel, DeviceStats, Layout};
use qxmap_circuit::{Circuit, Dag, Gate};

use crate::traits::{HeuristicError, HeuristicResult, Mapper, StopCheck};

/// The SABRE-style mapper.
///
/// The mapper is deadline-aware: [`SabreMapper::with_deadline`] and
/// [`SabreMapper::with_stop`] are polled at every routing step. Once a
/// budget fires, the scored lookahead search is replaced by plain
/// shortest-path stepping toward the first blocked pair (and a pending
/// reverse seeding pass is skipped), so a losing racer on a huge device
/// winds down quickly while still emitting a complete, hardware-legal
/// circuit.
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::paper_example;
/// use qxmap_heuristic::{Mapper, SabreMapper};
///
/// let r = SabreMapper::new().map(&paper_example(), &devices::ibm_qx4())?;
/// assert!(r.added_gates >= 4); // can never beat the exact minimum
/// # Ok::<(), qxmap_heuristic::HeuristicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SabreMapper {
    lookahead: usize,
    lookahead_weight: f64,
    decay: f64,
    deadline: Option<Duration>,
    stop: Option<Arc<AtomicBool>>,
}

impl SabreMapper {
    /// Default configuration (lookahead window 20, weight 0.5, decay
    /// increment 0.001 — the reference implementation's classic values).
    pub fn new() -> SabreMapper {
        SabreMapper {
            lookahead: 20,
            lookahead_weight: 0.5,
            decay: 0.001,
            deadline: None,
            stop: None,
        }
    }

    /// Overrides the lookahead window size.
    pub fn with_lookahead(mut self, lookahead: usize) -> SabreMapper {
        self.lookahead = lookahead;
        self
    }

    /// The lookahead window the classic default of 20 scales to on a
    /// device with these statistics — the same signals (and the same
    /// shape: halve on tiny uniform devices, double per signal, cap at
    /// 4×) that already scale the portfolio's stochastic trial counts:
    ///
    /// * diameter ≤ 2 without cost skew: SWAP choices barely differ, a
    ///   deep scored window is wasted work — halve it;
    /// * cost skew ≥ 2 (calibrated devices): upcoming gates decide
    ///   whether a dear edge is worth crossing — double it;
    /// * diameter ≥ 6 (wide devices): routes span many steps, so the
    ///   front layer alone is myopic — double it.
    ///
    /// The result is a pure function of the device model, so engines
    /// applying it stay safely cacheable by (circuit, device) keys.
    pub fn scaled_lookahead(stats: &DeviceStats) -> usize {
        const BASE: usize = 20;
        let skewed = stats.cost_skew() >= 2.0;
        let wide = stats.diameter >= 6;
        if stats.diameter <= 2 && !skewed {
            return BASE / 2;
        }
        let factor = match (skewed, wide) {
            (true, true) => 4,
            (true, false) | (false, true) => 2,
            (false, false) => 1,
        };
        BASE * factor
    }

    /// Builder form of [`SabreMapper::scaled_lookahead`]: reads the
    /// statistics off `model` and sizes the lookahead window to it.
    pub fn with_scaled_lookahead(self, model: &DeviceModel) -> SabreMapper {
        let lookahead = SabreMapper::scaled_lookahead(model.stats());
        self.with_lookahead(lookahead)
    }

    /// Caps the wall-clock time of one `map` call (measured from its
    /// entry). Once it fires, the run degrades to cheap shortest-path
    /// stepping — valid output, bounded wind-down.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> SabreMapper {
        self.deadline = deadline;
        self
    }

    /// Attaches a cooperative stop flag (e.g. a racing supervisor's
    /// cancel handle, `qxmap_core::SolveControl::cancel_handle`), polled
    /// like the deadline.
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> SabreMapper {
        self.stop = Some(stop);
        self
    }
}

impl Default for SabreMapper {
    fn default() -> SabreMapper {
        SabreMapper::new()
    }
}

impl Mapper for SabreMapper {
    fn name(&self) -> &str {
        "SABRE-style lookahead"
    }

    fn map_model(
        &self,
        circuit: &Circuit,
        model: &DeviceModel,
    ) -> Result<HeuristicResult, HeuristicError> {
        let start = Instant::now();
        let cm = model.coupling_map();
        let n = circuit.num_qubits();
        let m = cm.num_qubits();
        if n > m {
            return Err(HeuristicError::TooManyQubits {
                logical: n,
                physical: m,
            });
        }
        let circuit = circuit.decompose_swaps();
        if !cm.is_connected() && circuit.num_cnots() > 0 {
            return Err(HeuristicError::Unroutable);
        }
        let check = StopCheck::arm(self.deadline, self.stop.clone());

        // Reverse pass seeds the forward pass's initial layout. Only the
        // CNOT structure matters for routing, so measurements/barriers are
        // dropped and gate kinds kept as-is. A budget that already fired
        // skips the seeding round trip entirely (wind-down path).
        let initial = if check.stopped() {
            Layout::identity(n, m)
        } else {
            let mut reversed = Circuit::new(n);
            for g in circuit.gates().iter().rev() {
                match g {
                    Gate::One { .. } | Gate::Cnot { .. } => reversed.push(g.clone()),
                    _ => {}
                }
            }
            let seed = Layout::identity(n, m);
            let (_, reverse_final, ..) = self.route(&reversed, model, &check, seed)?;
            reverse_final
        };

        let (out, final_layout, swaps, reversals, model_cost) =
            self.route(&circuit, model, &check, initial.clone())?;
        let added = (out.original_cost() - circuit.original_cost()) as u64;
        Ok(HeuristicResult {
            mapped: out,
            initial_layout: initial,
            final_layout,
            added_gates: added,
            swaps,
            reversals,
            model_cost,
            runtime: start.elapsed(),
            wound_down: check.cause(),
        })
    }
}

impl SabreMapper {
    /// One routing pass; returns (circuit, final layout, swaps,
    /// reversals, model cost).
    fn route(
        &self,
        circuit: &Circuit,
        model: &DeviceModel,
        check: &StopCheck,
        mut layout: Layout,
    ) -> Result<(Circuit, Layout, u32, u32, u64), HeuristicError> {
        let cm = model.coupling_map();
        let dist = model.hops();
        // Scoring reads the cost-weighted distances: under uniform costs
        // every entry is a constant multiple of the hop count (identical
        // choices), while calibrated models steer lookahead toward cheap
        // edges. Termination logic (the wind-down stepping below) stays
        // on hops, whose strict decrease is the progress guarantee.
        let wdist = model.swap_distances();
        let dag = Dag::new(circuit);
        let gates = circuit.gates();
        let mut remaining_preds: Vec<usize> = (0..gates.len())
            .map(|g| dag.node(g).predecessors.len())
            .collect();
        let mut front: VecDeque<usize> = dag.roots().into();
        let mut out = Circuit::with_clbits(cm.num_qubits(), circuit.num_clbits());
        let mut swaps = 0u32;
        let mut reversals = 0u32;
        let mut model_cost = 0u64;
        let mut decay = vec![1.0f64; cm.num_qubits()];
        let edges = cm.undirected_edges();
        // Safety valve: strictly more swaps than any solvable instance needs.
        let mut stuck_guard = 0usize;
        let stuck_limit = 10 * (gates.len() + 1) * cm.num_qubits();

        while !front.is_empty() {
            // Execute every front gate that is executable right now.
            let mut progressed = false;
            let mut next_front: VecDeque<usize> = VecDeque::new();
            while let Some(g) = front.pop_front() {
                let executable = match &gates[g] {
                    Gate::Cnot { control, target } => {
                        let pc = layout.phys_of(*control).expect("complete");
                        let pt = layout.phys_of(*target).expect("complete");
                        cm.connected_either(pc, pt)
                    }
                    _ => true,
                };
                if executable {
                    progressed = true;
                    match &gates[g] {
                        Gate::Cnot { control, target } => {
                            let pc = layout.phys_of(*control).expect("complete");
                            let pt = layout.phys_of(*target).expect("complete");
                            let emitted = route::emit_cnot(&mut out, cm, pc, pt).expect("adjacent");
                            if emitted > 1 {
                                reversals += 1;
                            }
                            model_cost += model.execution_overhead(pc, pt).expect("adjacent pair");
                        }
                        Gate::One { kind, qubit } => {
                            let p = layout.phys_of(*qubit).expect("complete");
                            out.one(*kind, p);
                        }
                        Gate::Barrier(qs) => {
                            let mapped: Vec<usize> = qs
                                .iter()
                                .map(|&q| layout.phys_of(q).expect("complete"))
                                .collect();
                            out.push(Gate::Barrier(mapped));
                        }
                        Gate::Measure { qubit, clbit } => {
                            let p = layout.phys_of(*qubit).expect("complete");
                            out.measure(p, *clbit);
                        }
                        Gate::Swap { .. } => unreachable!("decomposed"),
                    }
                    for &s in &dag.node(g).successors {
                        remaining_preds[s] -= 1;
                        if remaining_preds[s] == 0 {
                            next_front.push_back(s);
                        }
                    }
                } else {
                    next_front.push_back(g);
                }
            }
            front = next_front;
            if front.is_empty() {
                break;
            }
            if progressed {
                decay.iter_mut().for_each(|d| *d = 1.0);
                continue;
            }

            // All front gates blocked: choose the best SWAP.
            let front_pairs: Vec<(usize, usize)> = front
                .iter()
                .filter_map(|&g| match gates[g] {
                    Gate::Cnot { control, target } => Some((control, target)),
                    _ => None,
                })
                .collect();

            // Deadline/race-cancel wind-down: once a budget fires, skip
            // the scored lookahead over every edge and instead step the
            // first blocked pair's control one hop along a shortest path
            // to its target — the naive routing move, which strictly
            // decreases that pair's distance, so the pass provably
            // terminates while doing O(degree) work per step.
            if check.stopped() {
                let &(c, t) = front_pairs.first().expect("blocked front has a CNOT");
                let pc = layout.phys_of(c).expect("complete");
                let pt = layout.phys_of(t).expect("complete");
                let next = cm
                    .neighbors(pc)
                    .into_iter()
                    .filter(|&v| dist[v][pt] < dist[pc][pt])
                    .min_by_key(|&v| dist[v][pt])
                    .ok_or(HeuristicError::Unroutable)?;
                route::emit_swap(&mut out, cm, pc, next).expect("neighbor edge");
                layout.swap_phys(pc, next);
                swaps += 1;
                model_cost += u64::from(model.swap_cost(pc, next).expect("edge"));
                continue;
            }
            let look_pairs = self.lookahead_pairs(&dag, gates, &front, &remaining_preds);

            let mut best: Option<((usize, usize), f64)> = None;
            for &(a, b) in &edges {
                layout.swap_phys(a, b);
                let f_cost: f64 = front_pairs
                    .iter()
                    .map(|&(c, t)| {
                        let pc = layout.phys_of(c).expect("complete");
                        let pt = layout.phys_of(t).expect("complete");
                        wdist[pc][pt] as f64
                    })
                    .sum();
                let l_cost: f64 = if look_pairs.is_empty() {
                    0.0
                } else {
                    look_pairs
                        .iter()
                        .map(|&(c, t)| {
                            let pc = layout.phys_of(c).expect("complete");
                            let pt = layout.phys_of(t).expect("complete");
                            wdist[pc][pt] as f64
                        })
                        .sum::<f64>()
                        / look_pairs.len() as f64
                };
                layout.swap_phys(a, b);
                let score = decay[a].max(decay[b])
                    * (f_cost / front_pairs.len().max(1) as f64 + self.lookahead_weight * l_cost);
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some(((a, b), score));
                }
            }
            let ((a, b), _) = best.ok_or(HeuristicError::Unroutable)?;
            route::emit_swap(&mut out, cm, a, b).expect("edge swap");
            layout.swap_phys(a, b);
            swaps += 1;
            model_cost += u64::from(model.swap_cost(a, b).expect("edge"));
            decay[a] += self.decay;
            decay[b] += self.decay;

            stuck_guard += 1;
            if stuck_guard > stuck_limit {
                return Err(HeuristicError::Unroutable);
            }
        }
        Ok((out, layout, swaps, reversals, model_cost))
    }

    /// The next `lookahead` CNOTs beyond the front (by gate index order).
    fn lookahead_pairs(
        &self,
        dag: &Dag,
        gates: &[Gate],
        front: &VecDeque<usize>,
        remaining_preds: &[usize],
    ) -> Vec<(usize, usize)> {
        let _ = dag;
        let in_front = |g: usize| front.contains(&g);
        let mut out = Vec::new();
        for g in 0..gates.len() {
            if out.len() >= self.lookahead {
                break;
            }
            // Not yet executed (has remaining preds or sits in the front),
            // and not a front member itself.
            if in_front(g) {
                continue;
            }
            if remaining_preds[g] == 0 {
                continue; // already executed
            }
            if let Gate::Cnot { control, target } = gates[g] {
                out.push((control, target));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveMapper;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn lookahead_scales_with_device_statistics() {
        // Tiny uniform device: half the classic window.
        let qx4 = DeviceModel::paper(devices::ibm_qx4());
        assert_eq!(SabreMapper::scaled_lookahead(qx4.stats()), 10);
        // Wide device (diameter ≥ 6): doubled.
        let wide = DeviceModel::paper(devices::linear(10));
        assert!(wide.stats().diameter >= 6);
        assert_eq!(SabreMapper::scaled_lookahead(wide.stats()), 40);
        // Wide *and* skewed (calibrated edge at 3× the floor): capped 4×.
        let skewed = DeviceModel::paper(devices::linear(10)).with_swap_cost(0, 1, 21);
        assert!(skewed.stats().cost_skew() >= 2.0);
        assert_eq!(SabreMapper::scaled_lookahead(skewed.stats()), 80);
        // The builder wires the scaled value through.
        let mapper = SabreMapper::new().with_scaled_lookahead(&wide);
        assert_eq!(mapper.lookahead, 40);
    }

    #[test]
    fn sabre_is_deterministic() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let a = SabreMapper::new().map(&c, &cm).unwrap();
        let b = SabreMapper::new().map(&c, &cm).unwrap();
        assert_eq!(a.mapped, b.mapped);
    }

    #[test]
    fn outputs_are_legal_and_accounted() {
        let cm = devices::ibm_qx4();
        let r = SabreMapper::new().map(&paper_example(), &cm).unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        assert_eq!(
            r.added_gates,
            7 * u64::from(r.swaps) + 4 * u64::from(r.reversals)
        );
        assert!(r.added_gates >= 4);
    }

    #[test]
    fn reverse_pass_layout_is_used() {
        // The initial layout generally differs from the identity after the
        // reverse pass on an asymmetric circuit.
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        c.cx(0, 3);
        c.cx(0, 3);
        let r = SabreMapper::new().map(&c, &cm).unwrap();
        // (0,3) are distance-2 under the identity; a decent seed avoids
        // swapping three times.
        assert!(
            r.swaps <= 2,
            "seeded layout should cut swaps, got {}",
            r.swaps
        );
    }

    #[test]
    fn lookahead_handles_long_circuits() {
        let cm = devices::ibm_qx4();
        let c = qxmap_circuit::Circuit::new(5);
        let mut c = c;
        for i in 0..30 {
            c.cx(i % 5, (i + 2) % 5);
        }
        let r = SabreMapper::new().map(&c, &cm).unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        let naive = NaiveMapper::new().map(&c, &cm).unwrap();
        // SABRE should not be drastically worse than naive.
        assert!(r.swaps <= naive.swaps * 2 + 5);
    }

    #[test]
    fn single_qubit_circuits_need_nothing() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(3);
        c.h(0).t(2);
        let r = SabreMapper::new().map(&c, &cm).unwrap();
        assert_eq!(r.added_gates, 0);
    }

    #[test]
    fn too_many_qubits_is_reported() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        assert!(matches!(
            SabreMapper::new().map(&c, &cm),
            Err(HeuristicError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn stop_flag_and_deadline_degrade_not_invalidate() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        use std::time::Duration;

        let cm = devices::linear(6);
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.cx(1, 4);
        c.cx(0, 3);
        // A pre-raised stop flag: no reverse seeding pass, shortest-path
        // stepping only — still a complete, coupling-legal circuit.
        let flag = Arc::new(AtomicBool::new(true));
        let stopped = SabreMapper::new()
            .with_stop(Arc::clone(&flag))
            .map(&c, &cm)
            .unwrap();
        for (pc, pt) in stopped.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        // An expired deadline behaves the same way.
        let timed = SabreMapper::new()
            .with_deadline(Some(Duration::ZERO))
            .map(&c, &cm)
            .unwrap();
        for (pc, pt) in timed.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt));
        }
        assert_eq!(stopped.mapped, timed.mapped, "both wind-down paths agree");
        // A lowered flag restores the full scored search.
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        let resumed = SabreMapper::new().with_stop(flag).map(&c, &cm).unwrap();
        let reference = SabreMapper::new().map(&c, &cm).unwrap();
        assert_eq!(resumed.mapped, reference.mapped);
    }

    #[test]
    fn model_cost_matches_paper_accounting_on_qx4() {
        let cm = devices::ibm_qx4();
        let r = SabreMapper::new().map(&paper_example(), &cm).unwrap();
        assert_eq!(
            r.model_cost,
            7 * u64::from(r.swaps) + 4 * u64::from(r.reversals)
        );
        assert_eq!(r.model_cost, r.added_gates);
    }
}
